//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-harness subset this workspace uses — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock loop. Each benchmark warms up briefly,
//! then runs `sample_size` samples and prints mean / min / max per
//! iteration to stdout. No statistics, baselines, or HTML reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `new("scheme", "dagon_area")` displays as `scheme/dagon_area`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function}/{parameter}") }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to the closure given to `bench_function`; drives the timed loop.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample, after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: at least one run, up to ~100 ms
        let warm_start = Instant::now();
        let mut warm_runs = 0u32;
        while warm_runs == 0
            || (warm_start.elapsed() < Duration::from_millis(100) && warm_runs < 10)
        {
            black_box(routine());
            warm_runs += 1;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.results.push(t.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        self.report(&id.to_string(), &b.results);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        self.report(&id.to_string(), &b.results);
        self
    }

    fn report(&mut self, id: &str, results: &[Duration]) {
        let _ = &self.criterion; // group lifetime ties reports to the runner
        if results.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let min = results.iter().min().copied().unwrap_or_default();
        let max = results.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {} (min {}, max {}, n={})",
            self.name,
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            results.len()
        );
    }

    /// Ends the group (no-op in this stub; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("bench", f);
        self
    }

    /// Parses CLI configuration (accepted and ignored in this stub).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3, "routine must run at least sample_size times");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("square", 7usize), &7usize, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
