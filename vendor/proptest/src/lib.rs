//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / select strategies,
//! the `proptest!`, `prop_assert!` and `prop_assert_eq!` macros, and
//! `ProptestConfig::with_cases`. Sampling is fully deterministic: each
//! test case draws from an RNG seeded by the hash of the test name and
//! the case index, so failures reproduce exactly on re-run. There is no
//! shrinking — a failing case reports its inputs via the panic message of
//! the underlying assertion.

use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the test name, used to derive per-test seeds.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategies over explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy drawing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Draws uniformly from `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

/// Runner configuration types.
pub mod test_runner {
    /// Per-block configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure kind reported by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion inside the test body failed.
        Fail(String),
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function runs `config.cases` deterministic cases; assertions use
/// the `prop_assert*` macros (plain panicking asserts in this stub).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::from_seed(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                let ($($arg,)+) = {
                    use $crate::Strategy as _;
                    strategies.generate(&mut rng)
                };
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds after mapping.
        #[test]
        fn mapped_ranges_in_bounds(v in (2usize..7, 1u64..100).prop_map(|(a, b)| a + b as usize)) {
            prop_assert!((3..107).contains(&v));
        }

        /// Select draws only from the given set.
        #[test]
        fn select_draws_members(k in prop::sample::select(vec![0.0, 0.5, 1.0])) {
            prop_assert!(k == 0.0 || k == 0.5 || k == 1.0, "unexpected {}", k);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::from_seed(crate::seed_for("t", 3));
        let mut b = crate::TestRng::from_seed(crate::seed_for("t", 3));
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
