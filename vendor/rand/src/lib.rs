//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the small subset of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across runs and
//! platforms, which is all the workspace's seeded tests and benchmark
//! generators require. Streams differ from upstream `rand`, so seeds
//! produce different (but stable) values than the real crate would.
//!
//! Integer ranges are sampled as `next_u64() % span`, which carries a
//! modulo bias of at most `span / 2^64` — negligible for the small spans
//! used in test/bench data generation, but unlike upstream's rejection
//! sampling. Swapping this stub back for the real `rand` crate will
//! change every seeded stream; expect seed-sensitive tests to need
//! re-examination when that happens.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // the full domain of the type
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from a half-open or inclusive range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the deterministic standard generator of this stub.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
