//! # casyn — Congestion-Aware Logic Synthesis
//!
//! A from-scratch Rust implementation of *Congestion-Aware Logic
//! Synthesis* (Pandini, Pileggi, Strojwas — DATE 2002): a technology
//! mapper whose dynamic-programming tree covering blends cell area with an
//! incremental wirelength term, `COST(m, v) = AREA(m, v) + K · WIRE(m, v)`,
//! over a placed technology-independent netlist — together with every
//! substrate the experiments need (logic optimizer, placer, global router,
//! static timing analysis, cell library).
//!
//! This facade crate re-exports the full stack:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`netlist`] | `casyn-netlist` | SOPs, Boolean networks, subject graphs, mapped netlists, PLA I/O, benchmark generators |
//! | [`logic`] | `casyn-logic` | kernel/cube extraction, NAND2/INV decomposition |
//! | [`library`] | `casyn-library` | cell + pattern model, the synthetic 0.18 µm library |
//! | [`place`] | `casyn-place` | layout image, min-cut placement, legalization |
//! | [`route`] | `casyn-route` | capacitated global routing, congestion maps |
//! | [`timing`] | `casyn-timing` | static timing analysis |
//! | [`core`] | `casyn-core` | DAG partitioning, matching, congestion-aware covering |
//! | [`flow`] | `casyn-flow` | end-to-end flows, K sweeps, batch runner, the Fig. 3 methodology |
//! | [`exec`] | `casyn-exec` | deterministic work-stealing pool, cancellation, deadlines |
//! | [`obs`] | `casyn-obs` | metrics registry, stage tracing, telemetry JSON |
//! | [`serve`] | `casyn-serve` | HTTP job service with a content-addressed artifact cache |
//!
//! # Quickstart
//!
//! ```
//! use casyn::netlist::bench::{random_pla, PlaGenConfig};
//! use casyn::flow::{FlowOptions, congestion_flow};
//!
//! let pla = random_pla(&PlaGenConfig { terms: 24, ..Default::default() });
//! let opts = FlowOptions::default();
//! let result = congestion_flow(&pla.to_network(), 0.001, &opts).unwrap();
//! println!("mapped {} cells, {} routing violations",
//!          result.netlist.num_cells(), result.route.violations);
//! ```

pub use casyn_core as core;
pub use casyn_exec as exec;
pub use casyn_flow as flow;
pub use casyn_library as library;
pub use casyn_logic as logic;
pub use casyn_netlist as netlist;
pub use casyn_obs as obs;
pub use casyn_place as place;
pub use casyn_route as route;
pub use casyn_serve as serve;
pub use casyn_timing as timing;

/// One-import convenience for application code.
///
/// ```
/// use casyn::prelude::*;
///
/// let pla = random_pla(&PlaGenConfig { terms: 16, ..Default::default() });
/// let result = congestion_flow(&pla.to_network(), 0.5, &FlowOptions::default()).unwrap();
/// assert!(result.num_cells > 0);
/// ```
pub mod prelude {
    pub use casyn_core::{map, CostKind, MapOptions, MapResult, PartitionScheme};
    pub use casyn_flow::{
        congestion_flow, dagon_flow, k_sweep, prepare, run_methodology, sis_flow, FlowError,
        FlowErrorKind, FlowOptions, FlowResult, Prepared, Stage,
    };
    pub use casyn_library::{corelib018, Library};
    pub use casyn_logic::{decompose, optimize, OptimizeOptions};
    pub use casyn_netlist::bench::{random_pla, PlaGenConfig};
    pub use casyn_netlist::{MappedNetlist, Network, Pla, Point, SubjectGraph};
    pub use casyn_place::{place_subject, Floorplan, PlacerOptions};
    pub use casyn_route::{route_mapped, RouteConfig};
    pub use casyn_timing::{analyze, analyze_routed, TimingConfig};
}
