//! Pattern trees: NAND2/INV trees over input pins.
//!
//! Every library cell is expressed as one or more pattern trees. A tree's
//! leaves are the cell's input pins, each appearing exactly once; internal
//! vertices are two-input NANDs and inverters — the same base functions as
//! the subject graph, so matching is purely structural.

use std::fmt;

/// A NAND2/INV tree whose leaves are cell input pins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTree {
    /// Input pin with the given index.
    Leaf(u8),
    /// Inverter.
    Inv(Box<PatternTree>),
    /// Two-input NAND.
    Nand(Box<PatternTree>, Box<PatternTree>),
}

impl PatternTree {
    /// Leaf pattern for pin `pin`.
    pub fn leaf(pin: u8) -> Self {
        PatternTree::Leaf(pin)
    }

    /// Inverter over `t`.
    pub fn inv(t: PatternTree) -> Self {
        PatternTree::Inv(Box::new(t))
    }

    /// Two-input NAND over `a` and `b`.
    pub fn nand(a: PatternTree, b: PatternTree) -> Self {
        PatternTree::Nand(Box::new(a), Box::new(b))
    }

    /// AND as `inv(nand(a, b))`.
    pub fn and(a: PatternTree, b: PatternTree) -> Self {
        Self::inv(Self::nand(a, b))
    }

    /// OR as `nand(inv(a), inv(b))`.
    pub fn or(a: PatternTree, b: PatternTree) -> Self {
        Self::nand(Self::inv(a), Self::inv(b))
    }

    /// Number of internal base gates (NANDs + inverters) in the pattern.
    /// This is the number of subject-graph gates a match covers.
    pub fn num_gates(&self) -> usize {
        match self {
            PatternTree::Leaf(_) => 0,
            PatternTree::Inv(t) => 1 + t.num_gates(),
            PatternTree::Nand(a, b) => 1 + a.num_gates() + b.num_gates(),
        }
    }

    /// The number of distinct pins referenced, assuming pins are numbered
    /// densely from zero.
    pub fn num_pins(&self) -> usize {
        self.max_pin().map_or(0, |p| p as usize + 1)
    }

    fn max_pin(&self) -> Option<u8> {
        match self {
            PatternTree::Leaf(p) => Some(*p),
            PatternTree::Inv(t) => t.max_pin(),
            PatternTree::Nand(a, b) => match (a.max_pin(), b.max_pin()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
        }
    }

    /// Collects pin indices in leaf order (left to right).
    pub fn pins_in_order(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.collect_pins(&mut out);
        out
    }

    fn collect_pins(&self, out: &mut Vec<u8>) {
        match self {
            PatternTree::Leaf(p) => out.push(*p),
            PatternTree::Inv(t) => t.collect_pins(out),
            PatternTree::Nand(a, b) => {
                a.collect_pins(out);
                b.collect_pins(out);
            }
        }
    }

    /// True when every pin in `0..num_pins()` appears exactly once — a
    /// requirement for tree patterns.
    pub fn is_linear(&self) -> bool {
        let mut pins = self.pins_in_order();
        pins.sort_unstable();
        pins.iter().enumerate().all(|(i, p)| *p as usize == i)
    }

    /// Evaluates the pattern on pin values.
    ///
    /// # Panics
    ///
    /// Panics if a leaf index is out of range of `pins`.
    pub fn eval(&self, pins: &[bool]) -> bool {
        match self {
            PatternTree::Leaf(p) => pins[*p as usize],
            PatternTree::Inv(t) => !t.eval(pins),
            PatternTree::Nand(a, b) => !(a.eval(pins) && b.eval(pins)),
        }
    }

    /// Logic depth of the pattern (base gates on the longest path).
    pub fn depth(&self) -> usize {
        match self {
            PatternTree::Leaf(_) => 0,
            PatternTree::Inv(t) => 1 + t.depth(),
            PatternTree::Nand(a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

impl fmt::Display for PatternTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTree::Leaf(p) => write!(f, "p{p}"),
            PatternTree::Inv(t) => write!(f, "!({t})"),
            PatternTree::Nand(a, b) => write!(f, "nand({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PatternTree as P;

    #[test]
    fn and_or_helpers_compute_expected_truth_tables() {
        let and = P::and(P::leaf(0), P::leaf(1));
        let or = P::or(P::leaf(0), P::leaf(1));
        for m in 0..4u32 {
            let a = m & 1 == 1;
            let b = m & 2 == 2;
            assert_eq!(and.eval(&[a, b]), a && b);
            assert_eq!(or.eval(&[a, b]), a || b);
        }
    }

    #[test]
    fn gate_and_pin_counts() {
        let aoi21 = P::inv(P::nand(P::nand(P::leaf(0), P::leaf(1)), P::inv(P::leaf(2))));
        assert_eq!(aoi21.num_gates(), 4);
        assert_eq!(aoi21.num_pins(), 3);
        assert_eq!(aoi21.depth(), 3);
        assert!(aoi21.is_linear());
    }

    #[test]
    fn aoi21_truth_table() {
        // AOI21 = !(ab + c)
        let aoi21 = P::inv(P::nand(P::nand(P::leaf(0), P::leaf(1)), P::inv(P::leaf(2))));
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = m & 2 == 2;
            let c = m & 4 == 4;
            assert_eq!(aoi21.eval(&[a, b, c]), !((a && b) || c), "at {m:03b}");
        }
    }

    #[test]
    fn nonlinear_pattern_detected() {
        // pin 0 appears twice
        let t = P::nand(P::leaf(0), P::leaf(0));
        assert!(!t.is_linear());
        // pin gap: 0 and 2 without 1
        let t = P::nand(P::leaf(0), P::leaf(2));
        assert!(!t.is_linear());
    }

    #[test]
    fn display_is_readable() {
        let t = P::nand(P::inv(P::leaf(0)), P::leaf(1));
        assert_eq!(format!("{t}"), "nand(!(p0), p1)");
    }
}
