//! Cells and libraries.

use crate::pattern::PatternTree;
use crate::{ROW_HEIGHT, SITE_AREA};
use std::fmt;

/// One library cell master.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Master name (e.g. `ND2`).
    pub name: String,
    /// Footprint area in square micrometres.
    pub area: f64,
    /// Footprint width in micrometres (`area / ROW_HEIGHT`).
    pub width: f64,
    /// Number of input pins.
    pub num_pins: usize,
    /// Input pin capacitance in picofarads (identical for all pins of the
    /// master in this model).
    pub pin_cap: f64,
    /// Intrinsic delay in nanoseconds.
    pub intrinsic: f64,
    /// Drive resistance in ns/pF: `delay = intrinsic + drive_res × load`.
    pub drive_res: f64,
    /// Pattern trees in NAND2/INV form. The first is the canonical
    /// function; all patterns of one cell must be logically equivalent.
    pub patterns: Vec<PatternTree>,
    /// True for sequential masters (flip-flops): excluded from
    /// technology-mapping pattern matching; their `patterns[0]` describes
    /// the combinational D→Q view used for single-cycle simulation.
    pub sequential: bool,
    /// Clock-to-output delay in nanoseconds (sequential cells only).
    pub clk_to_q: f64,
    /// Setup requirement at the data pin in nanoseconds (sequential cells
    /// only).
    pub setup: f64,
}

impl Cell {
    /// Builds a cell from `sites` placement sites of area and a list of
    /// equivalent patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty, a pattern is not a linear tree, or
    /// the patterns disagree on pin count or truth table (checked
    /// exhaustively; pins are at most 8 in practice).
    pub fn new(
        name: impl Into<String>,
        sites: f64,
        pin_cap: f64,
        intrinsic: f64,
        drive_res: f64,
        patterns: Vec<PatternTree>,
    ) -> Self {
        assert!(!patterns.is_empty(), "cell needs at least one pattern");
        let num_pins = patterns[0].num_pins();
        for p in &patterns {
            assert!(p.is_linear(), "pattern must use each pin exactly once: {p}");
            assert_eq!(p.num_pins(), num_pins, "patterns disagree on pin count");
        }
        assert!(num_pins <= 16, "too many pins for truth-table verification");
        for m in 0..(1u32 << num_pins) {
            let pins: Vec<bool> = (0..num_pins).map(|i| m >> i & 1 == 1).collect();
            let v0 = patterns[0].eval(&pins);
            for p in &patterns[1..] {
                assert_eq!(p.eval(&pins), v0, "patterns of one cell must be equivalent");
            }
        }
        let area = sites * SITE_AREA;
        Cell {
            name: name.into(),
            area,
            width: area / ROW_HEIGHT,
            num_pins,
            pin_cap,
            intrinsic,
            drive_res,
            patterns,
            sequential: false,
            clk_to_q: 0.0,
            setup: 0.0,
        }
    }

    /// Builds a sequential (D flip-flop) master. The single data pin's
    /// combinational view is the identity function (`Q = D` after a
    /// clock edge), used for cycle-by-cycle simulation; the mapper never
    /// matches sequential masters.
    pub fn new_dff(
        name: impl Into<String>,
        sites: f64,
        pin_cap: f64,
        clk_to_q: f64,
        setup: f64,
        drive_res: f64,
    ) -> Self {
        let mut c = Cell::new(
            name,
            sites,
            pin_cap,
            clk_to_q,
            drive_res,
            vec![PatternTree::inv(PatternTree::inv(PatternTree::leaf(0)))],
        );
        c.sequential = true;
        c.clk_to_q = clk_to_q;
        c.setup = setup;
        c
    }

    /// Evaluates the cell function on pin values.
    pub fn eval(&self, pins: &[bool]) -> bool {
        self.patterns[0].eval(pins)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pins, {:.3} um^2)", self.name, self.num_pins, self.area)
    }
}

/// An ordered collection of cell masters.
#[derive(Debug, Clone, Default)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Library { name: name.into(), cells: Vec::new() }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell and returns its index (the id stored in mapped
    /// netlists).
    pub fn push(&mut self, cell: Cell) -> u32 {
        let id = self.cells.len() as u32;
        self.cells.push(cell);
        id
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: u32) -> &Cell {
        &self.cells[id as usize]
    }

    /// Looks a cell up by name.
    pub fn find(&self, name: &str) -> Option<u32> {
        self.cells.iter().position(|c| c.name == name).map(|i| i as u32)
    }

    /// Evaluates cell `id` on pin values — the closure shape expected by
    /// [`casyn_netlist::mapped::MappedNetlist::simulate_outputs_with`].
    pub fn eval_cell(&self, id: u32, pins: &[bool]) -> bool {
        self.cell(id).eval(pins)
    }

    /// The inverter: the smallest single-pin cell. Mapping requires one.
    ///
    /// # Panics
    ///
    /// Panics if the library has no inverter.
    pub fn inverter(&self) -> u32 {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.num_pins == 1 && !c.eval(&[true]) && c.eval(&[false]))
            .min_by(|a, b| a.1.area.total_cmp(&b.1.area))
            .map(|(i, _)| i as u32)
            .expect("library must contain an inverter")
    }

    /// The smallest sequential (flip-flop) master, if any.
    pub fn dff(&self) -> Option<u32> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.sequential)
            .min_by(|a, b| a.1.area.total_cmp(&b.1.area))
            .map(|(i, _)| i as u32)
    }

    /// The two-input NAND with the smallest area.
    ///
    /// # Panics
    ///
    /// Panics if the library has no NAND2.
    pub fn nand2(&self) -> u32 {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.num_pins == 2
                    && c.eval(&[false, false])
                    && c.eval(&[true, false])
                    && c.eval(&[false, true])
                    && !c.eval(&[true, true])
            })
            .min_by(|a, b| a.1.area.total_cmp(&b.1.area))
            .map(|(i, _)| i as u32)
            .expect("library must contain a two-input NAND")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PatternTree as P;

    fn inv_cell() -> Cell {
        Cell::new("IV", 2.0, 0.003, 0.03, 2.0, vec![P::inv(P::leaf(0))])
    }

    fn nand2_cell() -> Cell {
        Cell::new("ND2", 3.0, 0.004, 0.05, 2.2, vec![P::nand(P::leaf(0), P::leaf(1))])
    }

    #[test]
    fn cell_area_and_width() {
        let c = inv_cell();
        assert!((c.area - 8.192).abs() < 1e-9);
        assert!((c.width - 1.28).abs() < 1e-9);
        assert_eq!(c.num_pins, 1);
    }

    #[test]
    #[should_panic(expected = "equivalent")]
    fn inconsistent_patterns_rejected() {
        Cell::new("BAD", 2.0, 0.003, 0.03, 2.0, vec![P::inv(P::leaf(0)), P::leaf(0)]);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn nonlinear_pattern_rejected() {
        Cell::new("BAD", 2.0, 0.003, 0.03, 2.0, vec![P::nand(P::leaf(0), P::leaf(0))]);
    }

    #[test]
    fn dff_master() {
        let dff = Cell::new_dff("DFF", 8.0, 0.004, 0.25, 0.15, 1.5);
        assert!(dff.sequential);
        assert_eq!(dff.num_pins, 1);
        assert!(dff.eval(&[true]));
        assert!(!dff.eval(&[false]));
        assert!((dff.clk_to_q - 0.25).abs() < 1e-12);
        let mut lib = Library::new("t");
        assert_eq!(lib.dff(), None);
        let id = lib.push(dff);
        assert_eq!(lib.dff(), Some(id));
    }

    #[test]
    fn library_lookup_and_classification() {
        let mut lib = Library::new("test");
        let iv = lib.push(inv_cell());
        let nd = lib.push(nand2_cell());
        assert_eq!(lib.find("IV"), Some(iv));
        assert_eq!(lib.find("ND2"), Some(nd));
        assert_eq!(lib.find("XX"), None);
        assert_eq!(lib.inverter(), iv);
        assert_eq!(lib.nand2(), nd);
        assert!(lib.eval_cell(iv, &[false]));
        assert!(!lib.eval_cell(nd, &[true, true]));
    }

    #[test]
    #[should_panic(expected = "inverter")]
    fn missing_inverter_panics() {
        let mut lib = Library::new("test");
        lib.push(nand2_cell());
        lib.inverter();
    }
}
