//! Standard-cell library model for technology mapping.
//!
//! A [`Cell`] is described by one or more [`PatternTree`]s: NAND2/INV
//! trees whose leaves are the cell's input pins. The mapper matches these
//! patterns against subject-graph trees (DAGON-style) and the first
//! pattern doubles as the cell's logic function for simulation and
//! equivalence checking.
//!
//! [`corelib018`] builds the synthetic 0.18 µm-class library standing in
//! for STMicroelectronics' proprietary CORELIB8DHS 2.0 used in the paper.
//! Areas are multiples of one placement site (0.64 µm × 6.4 µm =
//! 4.096 µm²), chosen so the worked example of the paper's Figure 1
//! reproduces exactly: `ND3 + AOI21 + 2×IV = 53.248 µm²` and
//! `2×OR2 + 2×ND2 + IV = 65.536 µm²`.

pub mod cell;
pub mod corelib;
pub mod pattern;

pub use cell::{Cell, Library};
pub use corelib::corelib018;
pub use pattern::PatternTree;

/// Standard-cell row height in micrometres.
pub const ROW_HEIGHT: f64 = 6.4;
/// Placement site width in micrometres.
pub const SITE_WIDTH: f64 = 0.64;
/// Area of one placement site in square micrometres.
pub const SITE_AREA: f64 = ROW_HEIGHT * SITE_WIDTH;
/// Nominal footprint, in sites, of one technology-independent base gate
/// (NAND2 or INV) on the layout image used for the companion placement.
/// The paper notes base gates "essentially have the same size".
pub const BASE_GATE_SITES: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_area_is_figure1_unit() {
        // 53.248 and 65.536 um^2 from Figure 1 are 13 and 16 sites
        assert!((SITE_AREA - 4.096).abs() < 1e-12);
        assert!((13.0 * SITE_AREA - 53.248).abs() < 1e-9);
        assert!((16.0 * SITE_AREA - 65.536).abs() < 1e-9);
    }
}
