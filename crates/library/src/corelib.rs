//! The built-in synthetic 0.18 µm-class library.
//!
//! Stands in for STMicroelectronics' CORELIB8DHS 2.0 (proprietary). Cell
//! areas are integer numbers of placement sites tuned so the paper's
//! Figure 1 example reproduces exactly; timing parameters are typical
//! 0.18 µm values for a linear `intrinsic + drive_res × load` model.
//!
//! XOR/XNOR masters are deliberately absent: their NAND2/INV forms use an
//! input pin twice, so a tree-covering mapper (DAGON and this
//! reimplementation alike) can never match them on a subject *tree*.

use crate::cell::{Cell, Library};
use crate::pattern::PatternTree as P;
use casyn_obs as obs;

fn l(pin: u8) -> P {
    P::leaf(pin)
}

/// Builds the `corelib018` library: inverters/buffers, NAND2–4, NOR2–3,
/// AND2–3, OR2–3, AOI/OAI 21 and 22, AO21/OA21.
pub fn corelib018() -> Library {
    let mut lib = Library::new("corelib018");
    // name, sites, pin_cap (pF), intrinsic (ns), drive_res (ns/pF), patterns
    lib.push(Cell::new("IV", 2.0, 0.003, 0.04, 1.8, vec![P::inv(l(0))]));
    lib.push(Cell::new("IVD2", 3.0, 0.005, 0.05, 0.9, vec![P::inv(l(0))]));
    lib.push(Cell::new("BUF", 3.0, 0.003, 0.10, 0.8, vec![P::inv(P::inv(l(0)))]));
    lib.push(Cell::new("ND2", 3.0, 0.004, 0.07, 2.0, vec![P::nand(l(0), l(1))]));
    lib.push(Cell::new(
        "ND3",
        4.0,
        0.0045,
        0.09,
        2.2,
        vec![P::nand(l(0), P::inv(P::nand(l(1), l(2))))],
    ));
    lib.push(Cell::new(
        "ND4",
        5.0,
        0.005,
        0.12,
        2.4,
        vec![
            P::nand(P::inv(P::nand(l(0), l(1))), P::inv(P::nand(l(2), l(3)))),
            P::nand(l(0), P::inv(P::nand(l(1), P::inv(P::nand(l(2), l(3)))))),
        ],
    ));
    lib.push(Cell::new(
        "NR2",
        3.0,
        0.004,
        0.08,
        2.4,
        vec![P::inv(P::nand(P::inv(l(0)), P::inv(l(1))))],
    ));
    lib.push(Cell::new(
        "NR3",
        4.0,
        0.0045,
        0.11,
        2.8,
        vec![P::inv(P::nand(P::inv(l(0)), P::inv(P::nand(P::inv(l(1)), P::inv(l(2))))))],
    ));
    lib.push(Cell::new("AN2", 4.0, 0.0035, 0.12, 1.6, vec![P::and(l(0), l(1))]));
    lib.push(Cell::new(
        "AN3",
        5.0,
        0.004,
        0.14,
        1.6,
        vec![P::inv(P::nand(l(0), P::inv(P::nand(l(1), l(2)))))],
    ));
    lib.push(Cell::new("OR2", 4.0, 0.0035, 0.13, 1.6, vec![P::or(l(0), l(1))]));
    lib.push(Cell::new(
        "OR3",
        5.0,
        0.004,
        0.16,
        1.6,
        vec![P::nand(P::inv(l(0)), P::inv(P::or(l(1), l(2))))],
    ));
    lib.push(Cell::new(
        "AOI21",
        5.0,
        0.0045,
        0.10,
        2.5,
        vec![P::inv(P::nand(P::nand(l(0), l(1)), P::inv(l(2))))],
    ));
    lib.push(Cell::new(
        "AOI22",
        6.0,
        0.005,
        0.12,
        2.7,
        vec![P::inv(P::nand(P::nand(l(0), l(1)), P::nand(l(2), l(3))))],
    ));
    lib.push(Cell::new(
        "OAI21",
        5.0,
        0.0045,
        0.10,
        2.5,
        vec![P::nand(P::nand(P::inv(l(0)), P::inv(l(1))), l(2))],
    ));
    lib.push(Cell::new(
        "OAI22",
        6.0,
        0.005,
        0.12,
        2.7,
        vec![P::nand(P::nand(P::inv(l(0)), P::inv(l(1))), P::nand(P::inv(l(2)), P::inv(l(3))))],
    ));
    lib.push(Cell::new(
        "AO21",
        6.0,
        0.004,
        0.15,
        1.7,
        vec![P::nand(P::nand(l(0), l(1)), P::inv(l(2)))],
    ));
    lib.push(Cell::new_dff("DFF", 8.0, 0.004, 0.28, 0.15, 1.6));
    lib.push(Cell::new(
        "OA21",
        6.0,
        0.004,
        0.15,
        1.7,
        vec![P::inv(P::nand(P::nand(P::inv(l(0)), P::inv(l(1))), l(2)))],
    ));
    if obs::enabled() {
        obs::counter_add("library.cells", lib.cells().len() as u64);
        obs::counter_add(
            "library.patterns",
            lib.cells().iter().map(|c| c.patterns.len() as u64).sum(),
        );
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_cell_areas() {
        let lib = corelib018();
        let area = |n: &str| lib.cell(lib.find(n).unwrap()).area;
        // Solution 1 of Figure 1: ND3 + AOI21 + 2 inverters = 53.248 um^2
        let sol1 = area("ND3") + area("AOI21") + 2.0 * area("IV");
        assert!((sol1 - 53.248).abs() < 1e-9, "sol1 = {sol1}");
        // Solution 2: 2×OR2 + 2×ND2 + 1 inverter = 65.536 um^2
        let sol2 = 2.0 * area("OR2") + 2.0 * area("ND2") + area("IV");
        assert!((sol2 - 65.536).abs() < 1e-9, "sol2 = {sol2}");
    }

    #[test]
    fn expected_truth_tables() {
        let lib = corelib018();
        let eval = |n: &str, pins: &[bool]| lib.eval_cell(lib.find(n).unwrap(), pins);
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = m & 2 == 2;
            let c = m & 4 == 4;
            assert_eq!(eval("ND3", &[a, b, c]), !(a && b && c));
            assert_eq!(eval("NR3", &[a, b, c]), !(a || b || c));
            assert_eq!(eval("AN3", &[a, b, c]), a && b && c);
            assert_eq!(eval("OR3", &[a, b, c]), a || b || c);
            assert_eq!(eval("AOI21", &[a, b, c]), !((a && b) || c));
            assert_eq!(eval("OAI21", &[a, b, c]), !((a || b) && c));
            assert_eq!(eval("AO21", &[a, b, c]), (a && b) || c);
            assert_eq!(eval("OA21", &[a, b, c]), (a || b) && c);
        }
        for m in 0..16u32 {
            let pins: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            let (a, b, c, d) = (pins[0], pins[1], pins[2], pins[3]);
            assert_eq!(eval("ND4", &pins), !(a && b && c && d));
            assert_eq!(eval("AOI22", &pins), !((a && b) || (c && d)));
            assert_eq!(eval("OAI22", &pins), !((a || b) && (c || d)));
        }
    }

    #[test]
    fn inverter_and_nand2_classification() {
        let lib = corelib018();
        assert_eq!(lib.cell(lib.inverter()).name, "IV");
        assert_eq!(lib.cell(lib.nand2()).name, "ND2");
        assert_eq!(lib.cell(lib.dff().expect("corelib has a DFF")).name, "DFF");
    }

    #[test]
    fn all_cells_have_verified_patterns() {
        // Cell::new verifies pattern equivalence; building succeeds.
        let lib = corelib018();
        assert_eq!(lib.cells().len(), 19);
        assert_eq!(lib.name(), "corelib018");
        for c in lib.cells() {
            assert!(c.area > 0.0 && c.width > 0.0);
            assert!(c.num_pins >= 1 && c.num_pins <= 4);
        }
    }
}
