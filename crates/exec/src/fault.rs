//! Deterministic seeded fault injection.
//!
//! A [`FaultPlan`] schedules faults by *stage name*, *kind* and
//! *nth occurrence*: `"map:panic:1"` panics the first time the map stage
//! arms the plan, `"route:corrupt:2"` corrupts the second routing run.
//! Because the trigger is an occurrence count — not wall-clock or
//! randomness — the same plan reproduces the same failure on every run,
//! which is what makes crash reproducer bundles and retry tests
//! deterministic.
//!
//! Occurrence counters live behind an `Arc`, so clones of a plan share
//! them: a retry loop that re-runs a job with the same (cloned) plan sees
//! the counter keep growing, which is how "fail on attempt 1, succeed on
//! attempt 2" scenarios are expressed. Use [`FaultPlan::fresh`] to get an
//! independent copy with zeroed counters (one per batch job).

use casyn_obs as obs;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the stage boundary (exercises panic isolation/retry).
    Panic,
    /// Report an injected stage-deadline error (a typed, non-panicking
    /// failure).
    Deadline,
    /// Corrupt the stage's intermediate result so the stage-boundary
    /// invariant checker has something real to catch.
    Corrupt,
    /// Cut a durable write short mid-record (the classic power-loss
    /// artifact); injected through the `casyn-flow::durable` seam.
    TornWrite,
    /// Fail a durable write with an out-of-space I/O error.
    DiskFull,
    /// Drop a network connection before the response is written
    /// (injected through the serve connection handler).
    ConnDrop,
}

impl FaultKind {
    /// The spec-string token for this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Deadline => "deadline",
            FaultKind::Corrupt => "corrupt",
            FaultKind::TornWrite => "torn_write",
            FaultKind::DiskFull => "disk_full",
            FaultKind::ConnDrop => "conn_drop",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "deadline" => Some(FaultKind::Deadline),
            "corrupt" => Some(FaultKind::Corrupt),
            "torn_write" => Some(FaultKind::TornWrite),
            "disk_full" => Some(FaultKind::DiskFull),
            "conn_drop" => Some(FaultKind::ConnDrop),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: fire `kind` the `nth` time `stage` arms the plan
/// (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Stage name the fault is bound to (the injector matches it against
    /// the stage arming the plan; unknown names simply never fire).
    pub stage: String,
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// Which occurrence of the stage triggers the fault (1 = first).
    pub nth: u32,
}

/// A deterministic fault-injection schedule plus its occurrence state.
///
/// Cloning shares the occurrence counters (see the module docs); use
/// [`FaultPlan::fresh`] for an isolated copy.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Arc<Vec<FaultSpec>>,
    seed: u64,
    counts: Arc<Mutex<HashMap<String, u32>>>,
}

impl FaultPlan {
    /// Parses a plan from its spec string: comma-separated
    /// `stage:kind[:nth]` items (nth defaults to 1) plus an optional
    /// `seed=N`, e.g. `"map:panic:1,route:corrupt:2,seed=42"`. The seed
    /// steers *which* element a corrupt fault damages, not *whether* a
    /// fault fires.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        let mut seed = 0u64;
        for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(v) = item.strip_prefix("seed=") {
                seed = v.parse().map_err(|e| format!("fault plan: bad seed {v:?}: {e}"))?;
                continue;
            }
            let parts: Vec<&str> = item.split(':').collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!(
                    "fault plan: {item:?} is not stage:kind[:nth] (e.g. \"map:panic:1\")"
                ));
            }
            let kind = FaultKind::parse(parts[1]).ok_or(format!(
                "fault plan: unknown kind {:?} (expected panic, deadline, corrupt, \
                 torn_write, disk_full or conn_drop)",
                parts[1]
            ))?;
            let nth: u32 = match parts.get(2) {
                None => 1,
                Some(v) => v.parse().map_err(|e| format!("fault plan: bad nth {v:?}: {e}"))?,
            };
            if nth == 0 {
                return Err("fault plan: nth is 1-based, 0 never fires".into());
            }
            specs.push(FaultSpec { stage: parts[0].to_string(), kind, nth });
        }
        if specs.is_empty() {
            return Err("fault plan: no faults specified".into());
        }
        Ok(FaultPlan { specs: Arc::new(specs), seed, counts: Arc::default() })
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The corruption seed (`seed=N` in the spec string; 0 by default).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// An independent copy with the same schedule and seed but zeroed
    /// occurrence counters.
    pub fn fresh(&self) -> FaultPlan {
        FaultPlan { specs: Arc::clone(&self.specs), seed: self.seed, counts: Arc::default() }
    }

    /// Records one occurrence of `stage` and returns the fault scheduled
    /// for exactly this occurrence, if any. Does **not** raise the fault —
    /// see [`FaultPlan::fire`].
    pub fn arm(&self, stage: &str) -> Option<FaultKind> {
        if self.specs.is_empty() {
            return None;
        }
        let mut counts = match self.counts.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let n = counts.entry(stage.to_string()).or_insert(0);
        *n += 1;
        let n = *n;
        self.specs.iter().find(|s| s.stage == stage && s.nth == n).map(|s| s.kind)
    }

    /// [`FaultPlan::arm`], raising the fault where this crate can:
    /// a scheduled [`FaultKind::Panic`] panics right here (with a message
    /// naming the stage), while `Deadline` and `Corrupt` are returned for
    /// the caller to apply at its own layer. Every fired fault is counted
    /// under the `fault.injected` metric.
    pub fn fire(&self, stage: &str) -> Option<FaultKind> {
        let kind = self.arm(stage)?;
        if obs::enabled() {
            obs::counter_add("fault.injected", 1);
            obs::counter_add(&format!("fault.{}", kind.name()), 1);
        }
        obs::log::warn(&format!("fault: injecting {kind} at stage {stage}"));
        if kind == FaultKind::Panic {
            panic!("injected fault: panic at stage {stage}");
        }
        Some(kind)
    }
}

impl fmt::Display for FaultPlan {
    /// The canonical spec string; `FaultPlan::parse(&plan.to_string())`
    /// round-trips the schedule (counters are not part of the spec).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}:{}:{}", s.stage, s.kind, s.nth)?;
        }
        if self.seed != 0 {
            write!(f, ",seed={}", self.seed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("map:panic:1, route:corrupt:2 ,seed=42").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(
            p.specs(),
            &[
                FaultSpec { stage: "map".into(), kind: FaultKind::Panic, nth: 1 },
                FaultSpec { stage: "route".into(), kind: FaultKind::Corrupt, nth: 2 },
            ]
        );
    }

    #[test]
    fn parse_defaults_nth_to_one() {
        let p = FaultPlan::parse("sta:deadline").unwrap();
        assert_eq!(
            p.specs(),
            &[FaultSpec { stage: "sta".into(), kind: FaultKind::Deadline, nth: 1 }]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("map").is_err());
        assert!(FaultPlan::parse("map:explode").is_err());
        assert!(FaultPlan::parse("map:panic:0").is_err());
        assert!(FaultPlan::parse("map:panic:x").is_err());
        assert!(FaultPlan::parse("seed=abc,map:panic").is_err());
        assert!(FaultPlan::parse("seed=1").is_err(), "a bare seed schedules nothing");
    }

    #[test]
    fn arm_fires_on_exact_occurrence_only() {
        let p = FaultPlan::parse("route:corrupt:2").unwrap();
        assert_eq!(p.arm("route"), None);
        assert_eq!(p.arm("map"), None, "other stages do not consume route occurrences");
        assert_eq!(p.arm("route"), Some(FaultKind::Corrupt));
        assert_eq!(p.arm("route"), None, "nth is exact, not at-least");
    }

    #[test]
    fn clones_share_counters_but_fresh_does_not() {
        let p = FaultPlan::parse("map:panic:2").unwrap();
        let clone = p.clone();
        assert_eq!(clone.arm("map"), None);
        assert_eq!(p.arm("map"), Some(FaultKind::Panic), "clone consumed occurrence 1");
        let fresh = p.fresh();
        assert_eq!(fresh.arm("map"), None, "fresh copy restarts the count");
        assert_eq!(fresh.arm("map"), Some(FaultKind::Panic));
    }

    #[test]
    fn fire_panics_with_stage_in_message() {
        let p = FaultPlan::parse("map:panic:1").unwrap();
        let err = std::panic::catch_unwind(|| {
            p.fire("map");
        })
        .unwrap_err();
        let msg = crate::panic_message(err.as_ref());
        assert!(msg.contains("injected fault") && msg.contains("map"), "got: {msg}");
    }

    #[test]
    fn display_round_trips() {
        let p = FaultPlan::parse("map:panic:1,route:corrupt:2,seed=7").unwrap();
        let q = FaultPlan::parse(&p.to_string()).unwrap();
        assert_eq!(p.specs(), q.specs());
        assert_eq!(p.seed(), q.seed());
    }

    #[test]
    fn io_fault_kinds_parse_and_round_trip() {
        let p = FaultPlan::parse("wal:torn_write:2,cache:disk_full,conn:conn_drop:3").unwrap();
        assert_eq!(
            p.specs(),
            &[
                FaultSpec { stage: "wal".into(), kind: FaultKind::TornWrite, nth: 2 },
                FaultSpec { stage: "cache".into(), kind: FaultKind::DiskFull, nth: 1 },
                FaultSpec { stage: "conn".into(), kind: FaultKind::ConnDrop, nth: 3 },
            ]
        );
        let q = FaultPlan::parse(&p.to_string()).unwrap();
        assert_eq!(p.specs(), q.specs());
        // I/O kinds fire as returned values, never as panics
        assert_eq!(p.arm("cache"), Some(FaultKind::DiskFull));
        assert_eq!(p.fire("conn"), None, "nth 3 on the first conn occurrence");
    }
}
