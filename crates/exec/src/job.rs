//! Job-level robustness primitives: typed errors, cancellation tokens and
//! per-job deadlines.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's closure panicked; the payload message is preserved. The
    /// panic is confined to the job — sibling jobs and the pool itself
    /// keep running.
    Panicked(String),
    /// The job's [`CancelToken`] was cancelled before the job started.
    Cancelled,
    /// The job's deadline elapsed before the job started (it spent too
    /// long queued behind other work).
    Deadline,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Deadline => write!(f, "job deadline exceeded"),
        }
    }
}

impl std::error::Error for JobError {}

/// A shared cancellation flag. Cloning is cheap (one `Arc`); cancelling
/// through any clone is visible to all. The pool checks the token when a
/// job is claimed: already-running jobs finish (work here is not
/// preemptible), not-yet-started jobs report [`JobError::Cancelled`].
/// Long-running jobs may poll [`CancelToken::is_cancelled`] themselves to
/// bail out cooperatively.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every job carrying this token.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Per-job execution constraints for [`crate::Pool::try_par_map`].
#[derive(Debug, Clone, Default)]
pub struct JobOptions {
    /// When set, the job is skipped with [`JobError::Cancelled`] if the
    /// token is cancelled before the job starts.
    pub cancel: Option<CancelToken>,
    /// When set, the job is skipped with [`JobError::Deadline`] if it has
    /// not *started* within this duration of the batch being submitted.
    /// Running jobs are never interrupted.
    pub deadline: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
    }

    #[test]
    fn job_error_displays_reason() {
        assert_eq!(JobError::Panicked("boom".into()).to_string(), "job panicked: boom");
        assert_eq!(JobError::Cancelled.to_string(), "job cancelled");
        assert_eq!(JobError::Deadline.to_string(), "job deadline exceeded");
    }
}
