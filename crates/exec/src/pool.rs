//! The scoped work-stealing thread pool.
//!
//! Scheduling: jobs are indexed `0..n` in input order. Each worker is
//! seeded with one job, the remainder queue in a shared injector; a
//! worker claims from its own deque first, then pulls a fair share of the
//! injector into its deque, and only steals from a sibling's tail once
//! the injector is dry. Because every job writes its result into its own
//! input-indexed slot, the output order — and, for pure job functions,
//! the output *values* — are identical to the serial path no matter how
//! the jobs interleave.

use crate::job::{JobError, JobOptions};
use casyn_obs as obs;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// How many injector jobs a worker may pull into its local deque per
/// claim, beyond the one it runs immediately.
const MAX_INJECTOR_BATCH: usize = 8;

/// A work-stealing thread pool handle. Creating a pool is free — worker
/// threads are scoped to each `par_map` call (jobs may borrow stack
/// data), so an idle pool holds no OS resources.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool that runs up to `workers` jobs concurrently (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> Self {
        Pool { workers: workers.max(1) }
    }

    /// A single-worker pool: every `par_map` runs inline on the calling
    /// thread, byte-for-byte the serial path.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// Worker count from the environment: the `CASYN_JOBS` variable when
    /// set to a positive integer, else `available_parallelism`, else 1.
    pub fn from_env() -> Self {
        let fallback = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Pool::new(resolve_jobs(std::env::var("CASYN_JOBS").ok().as_deref(), fallback))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on the pool. Results are returned in input
    /// order; a panicking job propagates the panic (after every other job
    /// has finished) — use [`Pool::try_par_map`] to keep panics as typed
    /// errors instead.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_par_map(items, &JobOptions::default(), f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(JobError::Panicked(msg)) => panic!("par_map job panicked: {msg}"),
                Err(e) => unreachable!("par_map job failed without cancel/deadline: {e}"),
            })
            .collect()
    }

    /// [`Pool::par_map`] with job-level robustness: every job gets the
    /// same [`JobOptions`], and each result slot is either the job's
    /// return value or the typed [`JobError`] that kept it from running
    /// to completion.
    pub fn try_par_map<T, R, F>(
        &self,
        items: &[T],
        opts: &JobOptions,
        f: F,
    ) -> Vec<Result<R, JobError>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_par_map_with(items, |_| opts.clone(), f)
    }

    /// [`Pool::try_par_map`] with per-job options: `per_job(i)` supplies
    /// the [`JobOptions`] for `items[i]` (distinct deadlines, shared or
    /// separate cancel tokens).
    pub fn try_par_map_with<T, R, F, O>(
        &self,
        items: &[T],
        per_job: O,
        f: F,
    ) -> Vec<Result<R, JobError>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        O: Fn(usize) -> JobOptions + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let start = Instant::now();
        let w = self.workers.min(n);

        // One job-execution body shared by the serial and parallel paths:
        // claim-time cancellation/deadline checks, then panic-isolated
        // execution with per-worker accounting.
        let run_one = |idx: usize, st: &mut WorkerStats| -> Result<R, JobError> {
            let jo = per_job(idx);
            if jo.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                st.cancelled += 1;
                return Err(JobError::Cancelled);
            }
            if jo.deadline.is_some_and(|d| start.elapsed() > d) {
                st.deadline += 1;
                return Err(JobError::Deadline);
            }
            let t0 = Instant::now();
            let mut job_span = obs::trace::span("exec.job");
            job_span.attr_num("idx", idx as f64);
            let out = catch_unwind(AssertUnwindSafe(|| f(&items[idx])));
            drop(job_span);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            st.busy_ms += ms;
            obs::hist_record("exec.job_ms", ms);
            match out {
                Ok(v) => {
                    st.completed += 1;
                    Ok(v)
                }
                Err(p) => {
                    st.panicked += 1;
                    Err(JobError::Panicked(panic_message(p.as_ref())))
                }
            }
        };

        if w <= 1 {
            let mut st = WorkerStats::default();
            let out = (0..n).map(|i| run_one(i, &mut st)).collect();
            flush_stats(1, &[st]);
            return out;
        }

        let slots: Vec<Mutex<Option<Result<R, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // seed one job per worker; the rest flow through the injector
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..w).map(|wid| Mutex::new(VecDeque::from([wid]))).collect();
        let injector = Mutex::new((w..n).collect::<VecDeque<usize>>());
        let stats: Vec<Mutex<WorkerStats>> =
            (0..w).map(|_| Mutex::new(WorkerStats::default())).collect();

        thread::scope(|s| {
            for wid in 0..w {
                let (slots, deques, injector, stats) = (&slots, &deques, &injector, &stats);
                let run_one = &run_one;
                s.spawn(move || {
                    // name the track before the first span so every job
                    // this worker runs lands on the `w{wid}` timeline
                    obs::trace::set_thread_label(&format!("w{wid}"));
                    let mut st = WorkerStats::default();
                    while let Some(idx) = claim(wid, deques, injector, &mut st) {
                        let res = run_one(idx, &mut st);
                        *slots[idx].lock().unwrap() = Some(res);
                    }
                    *stats[wid].lock().unwrap() = st;
                });
            }
        });

        let final_stats: Vec<WorkerStats> =
            stats.into_iter().map(|m| m.into_inner().unwrap()).collect();
        flush_stats(w, &final_stats);
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every claimed job stores a result"))
            .collect()
    }
}

impl Default for Pool {
    /// [`Pool::from_env`].
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Claims the next job index for `wid`: own deque head, then an injector
/// pull (taking a fair extra share into the local deque), then a steal
/// from a sibling's tail. `None` means no claimable work remains — jobs
/// never spawn jobs, so the worker can retire.
fn claim(
    wid: usize,
    deques: &[Mutex<VecDeque<usize>>],
    injector: &Mutex<VecDeque<usize>>,
    st: &mut WorkerStats,
) -> Option<usize> {
    if let Some(i) = deques[wid].lock().unwrap().pop_front() {
        return Some(i);
    }
    {
        let mut inj = injector.lock().unwrap();
        if obs::enabled() {
            obs::hist_record("exec.queue_depth", inj.len() as f64);
        }
        if let Some(first) = inj.pop_front() {
            let batch = (inj.len() / deques.len()).min(MAX_INJECTOR_BATCH);
            if batch > 0 {
                let mut dq = deques[wid].lock().unwrap();
                for _ in 0..batch {
                    match inj.pop_front() {
                        Some(j) => dq.push_back(j),
                        None => break,
                    }
                }
            }
            return Some(first);
        }
    }
    for off in 1..deques.len() {
        let victim = (wid + off) % deques.len();
        if let Some(j) = deques[victim].lock().unwrap().pop_back() {
            st.steals += 1;
            return Some(j);
        }
    }
    None
}

/// Per-worker accounting, flushed into `casyn-obs` once per `par_map`.
#[derive(Debug, Default, Clone)]
struct WorkerStats {
    steals: u64,
    completed: u64,
    panicked: u64,
    cancelled: u64,
    deadline: u64,
    busy_ms: f64,
}

fn flush_stats(workers: usize, stats: &[WorkerStats]) {
    if !obs::enabled() {
        return;
    }
    obs::gauge_set("exec.pool_workers", workers as f64);
    let mut steals = 0;
    let mut completed = 0;
    for (wid, st) in stats.iter().enumerate() {
        obs::gauge_set(&format!("exec.worker.{wid}.busy_ms"), st.busy_ms);
        obs::hist_record("exec.worker_busy_ms", st.busy_ms);
        steals += st.steals;
        completed += st.completed;
        if st.panicked > 0 {
            obs::counter_add("exec.jobs_panicked", st.panicked);
        }
        if st.cancelled > 0 {
            obs::counter_add("exec.jobs_cancelled", st.cancelled);
        }
        if st.deadline > 0 {
            obs::counter_add("exec.jobs_deadline", st.deadline);
        }
    }
    obs::counter_add("exec.steals", steals);
    obs::counter_add("exec.jobs_completed", completed);
}

/// Extracts a human-readable message from a panic payload (the `&str` or
/// `String` passed to `panic!`), for surfacing caught panics as typed
/// errors outside the pool as well.
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Worker-count resolution behind [`Pool::from_env`], split out pure for
/// testing: a positive integer in `env` wins, anything else falls back.
fn resolve_jobs(env: Option<&str>, fallback: usize) -> usize {
    match env.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CancelToken;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn par_map_results_are_input_ordered_and_complete() {
        let _guard = pool_test_lock();
        for workers in [1, 2, 4, 8] {
            let pool = Pool::new(workers);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.par_map(&items, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_is_ordered_under_skewed_job_durations() {
        let _guard = pool_test_lock();
        // early jobs are the slowest, so late jobs finish first — the
        // output must still be input-ordered
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..24).collect();
        let out = pool.par_map(&items, |&x| {
            thread::sleep(Duration::from_millis((24 - x) % 6));
            x + 1
        });
        assert_eq!(out, (1..=24).collect::<Vec<u64>>());
    }

    #[test]
    fn all_workers_participate() {
        let _guard = pool_test_lock();
        let pool = Pool::new(3);
        let seen = Mutex::new(std::collections::HashSet::new());
        let items: Vec<u64> = (0..48).collect();
        pool.par_map(&items, |_| {
            thread::sleep(Duration::from_millis(1));
            seen.lock().unwrap().insert(thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread to run jobs");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = pool_test_lock();
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |&x| x * 2), vec![14]);
    }

    #[test]
    fn panicking_job_yields_typed_error_and_siblings_complete() {
        let _guard = pool_test_lock();
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let out = pool.try_par_map(&items, &JobOptions::default(), |&i| {
            if i == 5 {
                panic!("injected failure in job {i}");
            }
            i * 10
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert_eq!(*r, Err(JobError::Panicked("injected failure in job 5".into())));
            } else {
                assert_eq!(*r, Ok(i * 10), "sibling job {i} must complete");
            }
        }
    }

    #[test]
    fn par_map_propagates_panics() {
        let _guard = pool_test_lock();
        let pool = Pool::new(2);
        let items = [0u8, 1];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 1 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn pre_cancelled_token_skips_every_job() {
        let _guard = pool_test_lock();
        let token = CancelToken::new();
        token.cancel();
        let opts = JobOptions { cancel: Some(token), ..Default::default() };
        let ran = AtomicUsize::new(0);
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..8).collect();
        let out = pool.try_par_map(&items, &opts, |&x| {
            ran.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert!(out.iter().all(|r| *r == Err(JobError::Cancelled)));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancelling_mid_run_stops_unstarted_jobs() {
        let _guard = pool_test_lock();
        let token = CancelToken::new();
        let opts = JobOptions { cancel: Some(token.clone()), ..Default::default() };
        let pool = Pool::new(2);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.try_par_map(&items, &opts, |&i| {
            if i == 0 {
                token.cancel();
            } else {
                thread::sleep(Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out[0], Ok(0), "the cancelling job itself completes");
        let cancelled = out.iter().filter(|r| **r == Err(JobError::Cancelled)).count();
        assert!(cancelled >= 1, "jobs claimed after cancellation must be skipped");
        // no job is lost: every slot is either a result or Cancelled
        for (i, r) in out.iter().enumerate() {
            assert!(matches!(r, Ok(v) if *v == i) || *r == Err(JobError::Cancelled));
        }
    }

    #[test]
    fn queued_job_past_its_deadline_reports_deadline() {
        let _guard = pool_test_lock();
        // one worker: job 0 blocks the queue for 40 ms, job 1's 5 ms
        // deadline expires before it starts
        let pool = Pool::serial();
        let items = [0usize, 1];
        let out = pool.try_par_map_with(
            &items,
            |i| JobOptions {
                deadline: (i == 1).then(|| Duration::from_millis(5)),
                ..Default::default()
            },
            |&i| {
                if i == 0 {
                    thread::sleep(Duration::from_millis(40));
                }
                i
            },
        );
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Err(JobError::Deadline));
    }

    #[test]
    fn deadline_expires_while_queued_behind_busy_workers() {
        let _guard = pool_test_lock();
        // two workers busy for 40 ms each; the third job's 5 ms deadline
        // has passed by the time a worker frees up
        let pool = Pool::new(2);
        let items = [0usize, 1, 2];
        let out = pool.try_par_map_with(
            &items,
            |i| JobOptions {
                deadline: (i == 2).then(|| Duration::from_millis(5)),
                ..Default::default()
            },
            |&i| {
                if i < 2 {
                    thread::sleep(Duration::from_millis(40));
                }
                i
            },
        );
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Ok(1));
        assert_eq!(out[2], Err(JobError::Deadline));
    }

    #[test]
    fn pool_reports_exec_metrics_when_enabled() {
        let _guard = pool_test_lock();
        obs::set_enabled(true);
        obs::reset();
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..32).collect();
        let out = pool.try_par_map(&items, &JobOptions::default(), |&x| {
            thread::sleep(Duration::from_micros(200));
            if x == 9 {
                panic!("metric probe");
            }
            x
        });
        let snap = obs::snapshot();
        obs::set_enabled(false);
        assert_eq!(snap.counter("exec.jobs_completed"), Some(31));
        assert_eq!(snap.counter("exec.jobs_panicked"), Some(1));
        assert_eq!(snap.gauge("exec.pool_workers"), Some(3.0));
        assert!(snap.counter("exec.steals").is_some());
        assert!(snap.histogram("exec.queue_depth").is_some());
        assert!(snap.histogram("exec.job_ms").is_some_and(|h| h.count == 32));
        assert!(snap.histogram("exec.worker_busy_ms").is_some_and(|h| h.count == 3));
        assert!(snap.gauge("exec.worker.0.busy_ms").is_some());
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 31);
    }

    #[test]
    fn resolve_jobs_prefers_valid_env() {
        assert_eq!(resolve_jobs(Some("6"), 2), 6);
        assert_eq!(resolve_jobs(Some(" 3 "), 2), 3);
        assert_eq!(resolve_jobs(Some("0"), 2), 2);
        assert_eq!(resolve_jobs(Some("-4"), 2), 2);
        assert_eq!(resolve_jobs(Some("lots"), 2), 2);
        assert_eq!(resolve_jobs(None, 5), 5);
        assert_eq!(resolve_jobs(None, 0), 1);
    }

    #[test]
    fn new_clamps_to_one_worker() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::serial().workers(), 1);
    }

    /// Serializes every pool-running test: the metrics test enables the
    /// global obs registry, and any pool flushing concurrently during
    /// that window would pollute its exact counter assertions.
    fn pool_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
