//! casyn-exec — the deterministic parallel execution engine of the casyn
//! stack.
//!
//! The paper's methodology re-runs the full map→route flow at 14 K values
//! over one shared placement; every run is independent, so the sweep is
//! embarrassingly parallel. This crate provides the machinery to exploit
//! that without giving up reproducibility:
//!
//! * [`Pool`] — a scoped work-stealing thread pool (std-only:
//!   `std::thread::scope` workers with per-worker deques fed by a shared
//!   injector). Jobs may borrow stack data; no `'static` bounds.
//! * [`Pool::par_map`] — parallel map with **deterministic, input-ordered
//!   results**: each job writes into its own slot, so the output is
//!   bit-identical to the serial `items.iter().map(f)` regardless of
//!   worker count or scheduling.
//! * Job-level robustness — [`CancelToken`]s stop not-yet-started jobs,
//!   per-job deadlines fail jobs that spent too long in the queue, and a
//!   panicking job is isolated with `catch_unwind` and surfaced as
//!   [`JobError::Panicked`] instead of tearing down the process
//!   ([`Pool::try_par_map`] / [`Pool::try_par_map_with`]).
//!
//! The pool reports into [`casyn_obs`] when metric collection is enabled:
//! `exec.steals`, `exec.queue_depth` (histogram of depth at each claim),
//! `exec.jobs_completed` / `exec.jobs_panicked` / `exec.jobs_cancelled` /
//! `exec.jobs_deadline`, a per-job `exec.job_ms` histogram, the
//! cross-worker `exec.worker_busy_ms` histogram, and per-worker
//! `exec.worker.<i>.busy_ms` gauges.
//!
//! Worker count resolution: [`Pool::from_env`] honours the `CASYN_JOBS`
//! environment variable and falls back to
//! `std::thread::available_parallelism`.

pub mod fault;
mod job;
mod pool;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use job::{CancelToken, JobError, JobOptions};
pub use pool::{panic_message, Pool};
