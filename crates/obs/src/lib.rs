//! casyn-obs — the observability layer of the casyn synthesis pipeline.
//!
//! Dependency-free metrics, tracing, and export plumbing shared by every
//! stage (optimize → decompose → place → partition → map → route → STA):
//!
//! - a thread-safe global [`Registry`] of counters, gauges, and log-scale
//!   histograms keyed `stage.metric` (e.g. `route.iterations`,
//!   `map.matches_tried`, `place.fm_passes`);
//! - [`StageTimer`] / [`span!`] for wall-clock scoping;
//! - [`trace`]: a hierarchical, thread-aware span tree with Chrome
//!   trace-event and `casyn.trace.v1` sinks;
//! - [`alloc`]: per-process heap accounting via a counting global
//!   allocator (the default-on `alloc-track` feature);
//! - leveled stderr logging controlled by the `CASYN_LOG` env var or
//!   [`log::set_level`] (the CLI's `--trace` flag);
//! - a tiny [`json`] writer used by the telemetry exporters.
//!
//! Collection is off by default: every record call checks one relaxed
//! atomic and returns immediately when disabled, so instrumented hot
//! paths (match enumeration, maze expansion) pay only a branch. Stages
//! additionally batch counts locally and flush once per unit of work.

pub mod alloc;
pub mod json;
pub mod log;
pub mod prom;
mod registry;
pub mod timeseries;
pub mod trace;

pub use registry::{
    counter_add, delta, enabled, gauge_set, global, hist_record, reset, set_enabled, snapshot,
    Histogram, MetricValue, Registry, Snapshot, HIST_BUCKETS,
};
pub use timeseries::SeriesStore;

/// The counting allocator measuring every workspace crate (the
/// `alloc-track` feature, on by default). See [`alloc`].
#[cfg(feature = "alloc-track")]
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

use std::time::Instant;

/// Wall-clock timer for one pipeline stage.
///
/// Always runs (timers are too cheap to gate); the caller decides what to
/// do with the elapsed time — typically storing it in a
/// `FlowTelemetry` stage record and, when metrics are enabled, a gauge.
#[derive(Debug)]
pub struct StageTimer {
    stage: &'static str,
    start: Instant,
}

impl StageTimer {
    /// Starts timing `stage`.
    pub fn start(stage: &'static str) -> Self {
        log::trace(&format!("stage {stage}: start"));
        StageTimer { stage, start: Instant::now() }
    }

    /// The stage name this timer was started with.
    pub fn stage(&self) -> &'static str {
        self.stage
    }

    /// Elapsed milliseconds so far, without consuming the timer.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Stops the timer, records `<stage>.wall_ms` (last-run gauge) and
    /// `<stage>.wall_ms_hist` (lifetime histogram, the source of the
    /// windowed per-stage percentiles in [`timeseries`]) when metrics
    /// are enabled, and returns the elapsed milliseconds.
    pub fn finish(self) -> f64 {
        let ms = self.elapsed_ms();
        log::debug(&format!("stage {}: {:.3} ms", self.stage, ms));
        if enabled() {
            gauge_set(&format!("{}.wall_ms", self.stage), ms);
            hist_record(&format!("{}.wall_ms_hist", self.stage), ms);
        }
        ms
    }
}

/// A scoped counter batch: accumulates locally, flushes to the global
/// registry on drop. The pattern hot call-sites use to avoid per-event
/// locking.
#[derive(Debug, Default)]
pub struct Span {
    entries: Vec<(String, u64)>,
}

impl Span {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the batched counter `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 += n;
        } else {
            self.entries.push((key.to_string(), n));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !enabled() {
            return;
        }
        for (key, n) in self.entries.drain(..) {
            counter_add(&key, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_reports_positive_elapsed() {
        let t = StageTimer::start("test_stage");
        assert_eq!(t.stage(), "test_stage");
        let ms = t.finish();
        assert!(ms >= 0.0);
    }

    #[test]
    fn span_flushes_only_when_enabled() {
        let _guard = crate::registry::test_lock();
        let key = "span_test.flush_gated";
        set_enabled(false);
        {
            let mut s = Span::new();
            s.add(key, 5);
        }
        assert!(!snapshot().metrics.contains_key(key));
        set_enabled(true);
        {
            let mut s = Span::new();
            s.add(key, 2);
            s.add(key, 3);
        }
        let snap = snapshot();
        assert_eq!(snap.counter(key), Some(5));
        set_enabled(false);
    }
}
