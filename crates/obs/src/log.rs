//! Leveled stderr logging for the pipeline.
//!
//! The level comes from the `CASYN_LOG` environment variable
//! (`error|warn|info|debug|trace`, default `warn`) and can be raised at
//! runtime with [`set_level`] — the CLI's `--trace` flag maps to
//! [`Level::Debug`]. Emission is a single relaxed atomic compare on the
//! fast path; formatting only happens for records that will print.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Stage-level progress.
    Info = 3,
    /// Per-stage detail (timings, counts).
    Debug = 4,
    /// Inner-loop detail; very verbose.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses a `CASYN_LOG`-style name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

// 0 = uninitialized (read CASYN_LOG on first use)
static LEVEL: AtomicU8 = AtomicU8::new(0);
static ENV_LEVEL: OnceLock<u8> = OnceLock::new();

fn env_level() -> u8 {
    *ENV_LEVEL.get_or_init(|| {
        std::env::var("CASYN_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .map(|l| l as u8)
            .unwrap_or(Level::Warn as u8)
    })
}

/// The current log level.
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == 0 {
        let from_env = env_level();
        LEVEL.store(from_env, Ordering::Relaxed);
        Level::from_u8(from_env)
    } else {
        Level::from_u8(v)
    }
}

/// Overrides the log level (e.g. from the CLI's `--trace` flag). Only
/// raises verbosity past what `CASYN_LOG` selected; it never silences an
/// explicitly requested env level.
pub fn set_level(l: Level) {
    let current = level();
    if l > current {
        LEVEL.store(l as u8, Ordering::Relaxed);
    }
}

/// Whether a record at `l` would be emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Emits `msg` to stderr when `l` is enabled. Prefer the level-named
/// helpers, which let the caller skip formatting entirely.
///
/// Each line carries elapsed milliseconds since the trace epoch and the
/// thread's track label (`main`, `w0`, …) so interleaved `--jobs N`
/// output stays attributable:
/// `[casyn INFO +12.3ms w1] stage route: start`.
pub fn emit(l: Level, msg: &str) {
    if enabled(l) {
        eprintln!(
            "[casyn {} +{:.1}ms {}] {}",
            l.tag(),
            crate::trace::elapsed_ms(),
            crate::trace::thread_label(),
            msg
        );
    }
}

/// Logs at [`Level::Error`].
pub fn error(msg: &str) {
    emit(Level::Error, msg)
}

/// Logs at [`Level::Warn`].
pub fn warn(msg: &str) {
    emit(Level::Warn, msg)
}

/// Logs at [`Level::Info`].
pub fn info(msg: &str) {
    emit(Level::Info, msg)
}

/// Logs at [`Level::Debug`].
pub fn debug(msg: &str) {
    emit(Level::Debug, msg)
}

/// Logs at [`Level::Trace`].
pub fn trace(msg: &str) {
    emit(Level::Trace, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse(" TRACE "), Some(Level::Trace));
        assert_eq!(Level::parse("Warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn set_level_only_raises() {
        let base = level();
        set_level(Level::Trace);
        assert_eq!(level(), Level::Trace);
        set_level(Level::Error);
        assert_eq!(level(), Level::Trace, "set_level must not lower verbosity");
        // restore for other tests as far as the monotonic API allows
        assert!(base <= level());
    }

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
        assert!(enabled(Level::Error));
    }
}
