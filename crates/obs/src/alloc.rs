//! Per-process heap accounting via a counting global allocator.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and keeps four relaxed
//! atomics: bytes allocated, bytes freed, bytes currently live, and the
//! high-water mark of live bytes. The `alloc-track` feature (on by
//! default) registers it as the `#[global_allocator]` from this crate's
//! root, so every crate in the workspace is measured. With the feature
//! off the readers below all return 0 and the wrapper is never installed.
//!
//! The counters are process-global: under concurrent flows (`--jobs N`)
//! a stage's delta includes allocations made by sibling jobs that ran in
//! the same window, so per-stage attribution is exact only for serial
//! runs. That is the same caveat the metrics registry already documents,
//! and it is why the perf gate measures serially.
//!
//! Cost when idle: three relaxed fetch-adds per alloc/free (plus a CAS
//! loop on a new peak). There is no enable check — an atomic branch would
//! cost as much as the add — but the counters never allocate, never lock,
//! and never touch the registry, so the wrapper is safe to keep installed
//! for the life of the process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts bytes through to [`System`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

fn on_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOCATED.fetch_add(bytes, Ordering::Relaxed);
    let live = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_free(bytes: usize) {
    let bytes = bytes as u64;
    FREED.fetch_add(bytes, Ordering::Relaxed);
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the counters
// are plain atomics and never allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_alloc(new_size);
            on_free(layout.size());
        }
        p
    }
}

/// Total bytes allocated since process start (monotone).
pub fn allocated_bytes() -> u64 {
    if cfg!(feature = "alloc-track") {
        ALLOCATED.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Total bytes freed since process start (monotone).
pub fn freed_bytes() -> u64 {
    if cfg!(feature = "alloc-track") {
        FREED.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Bytes currently live on the heap.
pub fn current_bytes() -> u64 {
    if cfg!(feature = "alloc-track") {
        CURRENT.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// High-water mark of live bytes since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    if cfg!(feature = "alloc-track") {
        PEAK.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Rebases the high-water mark to the current live size, so the next
/// read of [`peak_bytes`] reports the peak of the window that starts
/// now. Racy under concurrent allocation (a peak hit between the load
/// and the store is lost); callers treat windowed peaks as telemetry,
/// not ground truth.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
#[cfg(feature = "alloc-track")]
mod tests {
    use super::*;

    #[test]
    fn counters_grow_with_allocation() {
        let before = allocated_bytes();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = allocated_bytes();
        assert!(after >= before + (1 << 16), "allocation not counted: {before} -> {after}");
        drop(v);
        assert!(freed_bytes() > 0);
        assert!(allocated_bytes() >= freed_bytes());
    }

    #[test]
    fn peak_tracks_high_water_and_rebases() {
        reset_peak();
        let base = peak_bytes();
        let v: Vec<u8> = vec![0; 1 << 20];
        assert!(peak_bytes() >= base + (1 << 20));
        drop(v);
        let high = peak_bytes();
        reset_peak();
        // after rebasing, peak restarts from the (smaller) live size
        assert!(peak_bytes() <= high);
    }
}
