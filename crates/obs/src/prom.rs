//! Prometheus / OpenMetrics text exposition for registry snapshots.
//!
//! Renders a [`Snapshot`] (plus, optionally, windowed summaries from a
//! [`SeriesStore`]) in the Prometheus text format, version 0.0.4:
//! `# HELP` / `# TYPE` headers, one family per metric, samples sorted
//! deterministically. Registry keys use the internal `stage.metric`
//! convention; exposition names are the sanitized form prefixed with
//! `casyn_` (`route.iterations` → `casyn_route_iterations_total`).
//!
//! A few families get canonical shapes instead of the mechanical
//! translation, because dashboards key on them:
//!
//! - `serve.jobs_done/failed/cancelled` fold into one
//!   `casyn_jobs_total{status="..."}` counter family;
//! - `serve.cache_hits` becomes `casyn_cache_hits_total`;
//! - every `<stage>.wall_ms_hist` histogram folds into one
//!   `casyn_stage_wall_ms{stage="..."}` histogram family with
//!   cumulative `le` buckets at the log₂ bounds.
//!
//! When a series store is supplied, window summaries ride along as
//! window-labelled gauges: `casyn_<name>_rate{window="1m"}` for
//! counters and `casyn_stage_wall_ms_p95{stage,window}` for stage
//! histograms, so a scrape sees both lifetime totals and the live view.

use crate::json::fmt_f64;
use crate::registry::{Histogram, MetricValue, Snapshot};
use crate::timeseries::{SeriesStore, WINDOWS};
use std::fmt::Write as _;

/// Suffix marking per-stage wall-clock histograms (fed by
/// [`StageTimer`](crate::StageTimer)).
pub const STAGE_WALL_SUFFIX: &str = ".wall_ms_hist";

/// A registry key as an exposition-safe name: `[a-zA-Z0-9_]` survives,
/// everything else becomes `_`, and a leading digit gains a `_` prefix.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

struct Family {
    name: String,
    kind: &'static str,
    help: String,
    samples: Vec<String>,
}

struct Renderer {
    families: Vec<Family>,
}

impl Renderer {
    fn new() -> Self {
        Renderer { families: Vec::new() }
    }

    fn family(&mut self, name: &str, kind: &'static str, help: &str) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            samples: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn sample(&mut self, family: &str, kind: &'static str, help: &str, labels: &str, v: f64) {
        let name = family.to_string();
        let f = self.family(&name, kind, help);
        f.samples.push(format!("{name}{labels} {}", fmt_f64(v)));
    }

    /// A full Prometheus histogram: cumulative `le` buckets at the log₂
    /// bounds (up to the highest populated bucket), `+Inf`, `_sum`,
    /// `_count`. `labels` is the rendered label set without braces
    /// (e.g. `stage="route"`), empty for none.
    fn histogram(&mut self, family: &str, help: &str, labels: &str, h: &Histogram) {
        let name = family.to_string();
        let mut lines = Vec::new();
        let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
            cum += c;
            let (_, hi) = Histogram::bucket_bounds(i);
            lines.push(format!("{name}_bucket{} {cum}", with_label(labels, "le", &fmt_f64(hi))));
        }
        lines.push(format!("{name}_bucket{} {}", with_label(labels, "le", "+Inf"), h.count));
        let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        lines.push(format!("{name}_sum{braces} {}", fmt_f64(h.sum)));
        lines.push(format!("{name}_count{braces} {}", h.count));
        let f = self.family(&name, "histogram", help);
        f.samples.extend(lines);
    }

    fn render(mut self) -> String {
        self.families.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for s in &f.samples {
                let _ = writeln!(out, "{s}");
            }
        }
        out
    }
}

/// Appends `key="value"` to a rendered label set and wraps it in braces.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{{{labels},{key}=\"{value}\"}}")
    }
}

/// The canonical family a registry key belongs to, when it has one:
/// `(family, kind, help, labels)`.
fn canonical(key: &str) -> Option<(&'static str, &'static str, &'static str, String)> {
    let jobs = |status: &str| {
        Some((
            "casyn_jobs_total",
            "counter",
            "Jobs finished, by terminal status.",
            format!("status=\"{status}\""),
        ))
    };
    match key {
        "serve.jobs_done" => jobs("done"),
        "serve.jobs_failed" => jobs("failed"),
        "serve.jobs_cancelled" => jobs("cancelled"),
        "serve.cache_hits" => Some((
            "casyn_cache_hits_total",
            "counter",
            "Submissions served from the artifact cache.",
            String::new(),
        )),
        _ => None,
    }
}

/// The stage name when `key` is a per-stage wall-clock histogram.
fn stage_of(key: &str) -> Option<&str> {
    key.strip_suffix(STAGE_WALL_SUFFIX)
}

/// Renders `snap` in the Prometheus text exposition format. With a
/// `store`, windowed summary gauges (rates and stage percentiles) are
/// appended, labelled by window; `now_s` is the store's current second.
pub fn render(snap: &Snapshot, store: Option<(&SeriesStore, u64)>) -> String {
    let mut r = Renderer::new();
    for (key, v) in &snap.metrics {
        match v {
            MetricValue::Counter(n) => {
                if let Some((fam, kind, help, labels)) = canonical(key) {
                    let braces = format!("{{{labels}}}");
                    let braces = if labels.is_empty() { String::new() } else { braces };
                    r.sample(fam, kind, help, &braces, *n as f64);
                } else {
                    r.sample(
                        &format!("casyn_{}_total", sanitize(key)),
                        "counter",
                        &format!("Lifetime count of `{key}`."),
                        "",
                        *n as f64,
                    );
                }
            }
            MetricValue::Gauge(g) => {
                r.sample(
                    &format!("casyn_{}", sanitize(key)),
                    "gauge",
                    &format!("Current value of `{key}`."),
                    "",
                    *g,
                );
            }
            MetricValue::Histogram(h) => {
                if let Some(stage) = stage_of(key) {
                    r.histogram(
                        "casyn_stage_wall_ms",
                        "Per-stage wall-clock milliseconds.",
                        &format!("stage=\"{stage}\""),
                        h,
                    );
                } else {
                    r.histogram(
                        &format!("casyn_{}", sanitize(key)),
                        &format!("Distribution of `{key}`."),
                        "",
                        h,
                    );
                }
            }
        }
    }
    if let Some((store, now_s)) = store {
        render_windows(&mut r, snap, store, now_s);
    }
    r.render()
}

/// Window-labelled live summaries: per-counter rates and per-stage
/// windowed percentiles, as gauges (they are recomputed every scrape).
fn render_windows(r: &mut Renderer, snap: &Snapshot, store: &SeriesStore, now_s: u64) {
    for (key, v) in &snap.metrics {
        match v {
            MetricValue::Counter(_) => {
                let fam = format!("casyn_{}_rate", sanitize(key));
                for (secs, label) in WINDOWS {
                    let delta = store.counter_delta(now_s, secs, key);
                    r.sample(
                        &fam,
                        "gauge",
                        &format!("Per-second rate of `{key}` over the labelled window."),
                        &with_label("", "window", label),
                        delta as f64 / secs as f64,
                    );
                }
            }
            MetricValue::Histogram(_) => {
                let Some(stage) = stage_of(key) else { continue };
                for (secs, label) in WINDOWS {
                    let Some(h) = store.hist_window(now_s, secs, key) else { continue };
                    for (p, suffix) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        r.sample(
                            &format!("casyn_stage_wall_ms_{suffix}"),
                            "gauge",
                            "Windowed stage wall-clock percentile (ms).",
                            &format!("{{stage=\"{stage}\",window=\"{label}\"}}"),
                            h.percentile(p),
                        );
                    }
                }
            }
            MetricValue::Gauge(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn sanitize_maps_keys_to_exposition_names() {
        assert_eq!(sanitize("route.iterations"), "route_iterations");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn canonical_families_and_types_are_emitted() {
        let reg = Registry::new();
        reg.counter_add("serve.jobs_done", 5);
        reg.counter_add("serve.jobs_failed", 1);
        reg.counter_add("serve.cache_hits", 3);
        reg.counter_add("route.iterations", 42);
        reg.gauge_set("serve.queue_depth", 2.0);
        let text = render(&reg.snapshot(), None);
        assert!(text.contains("# TYPE casyn_jobs_total counter"), "{text}");
        assert!(text.contains("casyn_jobs_total{status=\"done\"} 5"), "{text}");
        assert!(text.contains("casyn_jobs_total{status=\"failed\"} 1"), "{text}");
        assert!(text.contains("# TYPE casyn_cache_hits_total counter"), "{text}");
        assert!(text.contains("casyn_cache_hits_total 3"), "{text}");
        assert!(text.contains("casyn_route_iterations_total 42"), "{text}");
        assert!(text.contains("# TYPE casyn_serve_queue_depth gauge"), "{text}");
        assert!(text.contains("casyn_serve_queue_depth 2"), "{text}");
        // exactly one TYPE line per family even with three statuses
        assert_eq!(text.matches("# TYPE casyn_jobs_total").count(), 1, "{text}");
    }

    #[test]
    fn stage_histograms_expose_cumulative_le_buckets() {
        let reg = Registry::new();
        for v in [0.5, 3.0, 3.5, 12.0] {
            reg.hist_record("route.wall_ms_hist", v);
        }
        let text = render(&reg.snapshot(), None);
        assert!(text.contains("# TYPE casyn_stage_wall_ms histogram"), "{text}");
        // cumulative: le=1 sees one sample, le=4 three, le=16 all four
        assert!(text.contains("casyn_stage_wall_ms_bucket{stage=\"route\",le=\"1\"} 1"), "{text}");
        assert!(text.contains("casyn_stage_wall_ms_bucket{stage=\"route\",le=\"4\"} 3"), "{text}");
        assert!(text.contains("casyn_stage_wall_ms_bucket{stage=\"route\",le=\"16\"} 4"), "{text}");
        assert!(
            text.contains("casyn_stage_wall_ms_bucket{stage=\"route\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("casyn_stage_wall_ms_sum{stage=\"route\"} 19"), "{text}");
        assert!(text.contains("casyn_stage_wall_ms_count{stage=\"route\"} 4"), "{text}");
    }

    #[test]
    fn window_summaries_are_window_labelled_gauges() {
        use crate::timeseries::SeriesStore;
        let reg = Registry::new();
        let ts = SeriesStore::new();
        ts.observe(0, &reg.snapshot());
        reg.counter_add("serve.submitted", 20);
        reg.hist_record("route.wall_ms_hist", 8.0);
        ts.observe(10, &reg.snapshot());
        let text = render(&reg.snapshot(), Some((&ts, 10)));
        assert!(text.contains("# TYPE casyn_serve_submitted_rate gauge"), "{text}");
        assert!(text.contains("casyn_serve_submitted_rate{window=\"10s\"} 2"), "{text}");
        assert!(
            text.contains("casyn_stage_wall_ms_p95{stage=\"route\",window=\"1m\"} 8"),
            "{text}"
        );
    }

    #[test]
    fn exposition_lines_are_well_formed() {
        let reg = Registry::new();
        reg.counter_add("serve.jobs_done", 1);
        reg.hist_record("place.wall_ms_hist", 2.0);
        reg.gauge_set("serve.live_bytes", 1024.0);
        for line in render(&reg.snapshot(), None).lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has value");
            assert!(!name_labels.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value in: {line}");
            let name = name_labels.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name in: {line}"
            );
            assert!(name.starts_with("casyn_"), "unprefixed family: {line}");
        }
    }
}
