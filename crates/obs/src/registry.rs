//! The metrics registry: named counters, gauges, and log-scale
//! histograms behind one global instance.
//!
//! Keys follow the `stage.metric` convention (`map.matches_tried`,
//! `route.overflow`). The global registry is disabled by default; the
//! free functions check the flag with one relaxed atomic load and return
//! immediately, which keeps instrumented hot paths within noise when
//! telemetry is off. [`Registry`] is also constructible directly so unit
//! tests can exercise isolated instances.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two histogram buckets (covers 1 .. 2^62).
pub const HIST_BUCKETS: usize = 63;

/// A log-scale histogram: bucket `i` counts values in `[2^(i-1), 2^i)`,
/// with bucket 0 counting values below 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Per-bucket counts, log2-scaled.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram. Public so callers that already hold raw
    /// samples (loadgen latencies, windowed merges) can reuse the same
    /// bucket/percentile math instead of reimplementing it.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v < 1.0 {
            return 0;
        }
        ((v.log2().floor() as usize) + 1).min(HIST_BUCKETS - 1)
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The value range bucket `i` covers: `[0, 1)` for bucket 0,
    /// `[2^(i-1), 2^i)` above.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, 1.0)
        } else {
            (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
        }
    }

    /// Estimates the `p`-quantile (`p` in `[0, 1]`) from the log2
    /// buckets by linear interpolation inside the bucket the rank falls
    /// in, clamped to the observed `[min, max]`. Exact to within one
    /// bucket width — good enough to tell p50 from a p99 tail, which is
    /// what the telemetry table needs. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Degenerate observed range: a single distinct value has nothing
        // to interpolate (every quantile IS that value), and NaN-only
        // input never tightens the seed bounds (min stays +inf above
        // max at -inf), which would make the clamp below panic.
        if self.min >= self.max {
            return if self.min.is_finite() { self.min } else { 0.0 };
        }
        let target = p.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Median estimate (see [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Log-scale distribution of recorded values.
    Histogram(Histogram),
}

impl MetricValue {
    /// The metric as a single representative number (counter value, gauge
    /// value, or histogram mean) for table/JSON summaries.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(n) => *n as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean(),
        }
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The value of counter `key`, if present and a counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value of gauge `key`, if present and a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `key`, if present and a histogram.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.metrics.get(key) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Metrics changed or added since `earlier`: counters become the
    /// difference, gauges and histograms the current value. Used to
    /// attribute global-registry activity to one pipeline stage. A
    /// counter that went backwards means the registry was reset after
    /// `earlier`; the post-reset value is reported rather than dropping
    /// the key, so resets don't silently zero out stage attribution.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = BTreeMap::new();
        for (k, v) in &self.metrics {
            match (v, earlier.metrics.get(k)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    if now > then {
                        out.insert(k.clone(), MetricValue::Counter(now - then));
                    } else if now < then {
                        out.insert(k.clone(), MetricValue::Counter(*now));
                    }
                }
                (v, old) => {
                    if old != Some(v) {
                        out.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        Snapshot { metrics: out }
    }
}

/// A named-metric store. One global instance backs the free functions;
/// tests may construct their own.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricValue>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key`, creating it at zero if absent.
    pub fn counter_add(&self, key: &str, n: u64) {
        let mut m = self.metrics.lock().unwrap();
        match m.get_mut(key) {
            Some(MetricValue::Counter(c)) => *c += n,
            _ => {
                m.insert(key.to_string(), MetricValue::Counter(n));
            }
        }
    }

    /// Sets gauge `key` to `v`.
    pub fn gauge_set(&self, key: &str, v: f64) {
        self.metrics.lock().unwrap().insert(key.to_string(), MetricValue::Gauge(v));
    }

    /// Records `v` into histogram `key`, creating it if absent.
    pub fn hist_record(&self, key: &str, v: f64) {
        let mut m = self.metrics.lock().unwrap();
        match m.get_mut(key) {
            Some(MetricValue::Histogram(h)) => h.record(v),
            _ => {
                let mut h = Histogram::new();
                h.record(v);
                m.insert(key.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Copies out every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { metrics: self.metrics.lock().unwrap().clone() }
    }

    /// Removes every metric.
    pub fn reset(&self) {
        self.metrics.lock().unwrap().clear();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry backing the free functions.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Turns global metric collection on or off (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global metric collection is on. Hot call-sites check this
/// before doing any work beyond the load itself.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to global counter `key` when collection is enabled.
#[inline]
pub fn counter_add(key: &str, n: u64) {
    if enabled() {
        global().counter_add(key, n);
    }
}

/// Sets global gauge `key` when collection is enabled.
#[inline]
pub fn gauge_set(key: &str, v: f64) {
    if enabled() {
        global().gauge_set(key, v);
    }
}

/// Records into global histogram `key` when collection is enabled.
#[inline]
pub fn hist_record(key: &str, v: f64) {
    if enabled() {
        global().hist_record(key, v);
    }
}

/// Snapshot of the global registry (works even while disabled).
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global registry.
pub fn reset() {
    global().reset()
}

/// Global metrics changed since `earlier` (see [`Snapshot::delta_since`]).
pub fn delta(earlier: &Snapshot) -> Snapshot {
    snapshot().delta_since(earlier)
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        reg.counter_add("t.hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("t.hits"), Some(threads * per_thread));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(0.5), 0);
        assert_eq!(Histogram::bucket_of(1.0), 1);
        assert_eq!(Histogram::bucket_of(1.9), 1);
        assert_eq!(Histogram::bucket_of(2.0), 2);
        assert_eq!(Histogram::bucket_of(3.99), 2);
        assert_eq!(Histogram::bucket_of(4.0), 3);
        assert_eq!(Histogram::bucket_of(1024.0), 11);

        let reg = Registry::new();
        for v in [0.2, 1.5, 1.7, 6.0, 6.5, 7.9, 1e300] {
            reg.hist_record("t.sizes", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("t.sizes").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 3);
        // out-of-range magnitudes clamp into the last bucket
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.min, 0.2);
        assert_eq!(h.max, 1e300);
    }

    #[test]
    fn percentiles_estimate_within_bucket_resolution() {
        let reg = Registry::new();
        // 100 values 1..=100: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99; the log2
        // buckets bound each estimate to its bucket's range.
        for v in 1..=100 {
            reg.hist_record("t.lat", v as f64);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("t.lat").unwrap();
        let p50 = h.p50();
        assert!((32.0..64.0).contains(&p50), "p50 {p50} outside its bucket");
        let p95 = h.p95();
        assert!((64.0..=100.0).contains(&p95), "p95 {p95} outside its bucket");
        let p99 = h.p99();
        assert!(p99 >= p95, "p99 {p99} below p95 {p95}");
        assert!(p99 <= 100.0, "p99 {p99} above observed max");

        // monotone in p, clamped to observed range
        assert!(h.percentile(0.0) >= h.min);
        assert_eq!(h.percentile(1.0), h.max);

        // empty histogram reports 0
        assert_eq!(Histogram::new().p50(), 0.0);

        // single value: every quantile is that value
        let reg = Registry::new();
        reg.hist_record("t.one", 7.0);
        let snap = reg.snapshot();
        let one = snap.histogram("t.one").unwrap();
        assert_eq!(one.p50(), 7.0);
        assert_eq!(one.p99(), 7.0);
    }

    #[test]
    fn percentile_empty_histogram_is_zero_at_every_p() {
        let h = Histogram::new();
        for p in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.percentile(p), 0.0, "empty histogram at p={p}");
        }
    }

    #[test]
    fn percentile_single_value_is_exact_not_interpolated() {
        // 7.3 sits mid-bucket (4, 8); naive interpolation would report
        // bucket positions like 4.0 or 6.0 instead of the value itself
        let reg = Registry::new();
        for _ in 0..10 {
            reg.hist_record("t.single", 7.3);
        }
        let h = reg.snapshot().histogram("t.single").unwrap().clone();
        for p in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(p), 7.3, "single-value histogram at p={p}");
        }
    }

    #[test]
    fn percentile_single_bucket_stays_inside_observed_range() {
        // 900, 950, 1000 all land in bucket (512, 1024): interpolation
        // must clamp to the observed [900, 1000], never report 512ish
        let reg = Registry::new();
        for v in [900.0, 950.0, 1000.0] {
            reg.hist_record("t.bucket", v);
        }
        let h = reg.snapshot().histogram("t.bucket").unwrap().clone();
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = h.percentile(p);
            assert!((900.0..=1000.0).contains(&v), "p={p} gave {v} outside [900, 1000]");
        }
    }

    #[test]
    fn percentile_survives_nan_records() {
        // NaN never tightens min/max; the quantile must not panic on the
        // inverted seed bounds and reports the empty-equivalent 0
        let reg = Registry::new();
        reg.hist_record("t.nan", f64::NAN);
        reg.hist_record("t.nan", f64::NAN);
        let h = reg.snapshot().histogram("t.nan").unwrap().clone();
        assert_eq!(h.count, 2);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn percentile_clamps_p_outside_unit_interval() {
        let reg = Registry::new();
        for v in 1..=32 {
            reg.hist_record("t.clamp", v as f64);
        }
        let h = reg.snapshot().histogram("t.clamp").unwrap().clone();
        assert_eq!(h.percentile(-0.5), h.percentile(0.0));
        assert_eq!(h.percentile(1.5), h.percentile(1.0));
        assert_eq!(h.percentile(1.5), h.max);
    }

    #[test]
    fn snapshot_reset_and_delta_semantics() {
        let reg = Registry::new();
        reg.counter_add("s.count", 3);
        reg.gauge_set("s.level", 2.5);
        let before = reg.snapshot();

        reg.counter_add("s.count", 4);
        reg.gauge_set("s.level", 9.0);
        reg.counter_add("s.other", 1);
        let after = reg.snapshot();

        let d = after.delta_since(&before);
        assert_eq!(d.counter("s.count"), Some(4));
        assert_eq!(d.gauge("s.level"), Some(9.0));
        assert_eq!(d.counter("s.other"), Some(1));

        // snapshots are independent copies
        reg.reset();
        assert!(reg.snapshot().metrics.is_empty());
        assert_eq!(after.counter("s.count"), Some(7));

        // unchanged metrics do not appear in a delta
        let same = after.delta_since(&after);
        assert!(same.metrics.is_empty());
    }

    #[test]
    fn delta_reports_post_reset_counter_instead_of_dropping_it() {
        let reg = Registry::new();
        reg.counter_add("r.count", 10);
        let before = reg.snapshot();

        reg.reset();
        reg.counter_add("r.count", 2);
        let d = reg.snapshot().delta_since(&before);
        assert_eq!(d.counter("r.count"), Some(2));
    }

    #[test]
    fn global_free_functions_respect_enable_flag() {
        let _guard = test_lock();
        set_enabled(false);
        counter_add("g.off", 1);
        hist_record("g.off_h", 1.0);
        let snap = snapshot();
        assert!(!snap.metrics.contains_key("g.off"));
        assert!(!snap.metrics.contains_key("g.off_h"));

        set_enabled(true);
        counter_add("g.on", 2);
        counter_add("g.on", 3);
        assert_eq!(snapshot().counter("g.on"), Some(5));
        set_enabled(false);
    }
}
