//! A minimal JSON writer (no parser, no external deps) used by the
//! telemetry and heatmap exporters.
//!
//! Values are built bottom-up with [`JsonValue`] and serialized with
//! [`JsonValue::to_string_pretty`]. Numbers serialize through
//! [`fmt_f64`], which keeps integers integral and never emits `NaN` or
//! `Infinity` (both invalid JSON — they become `null`).

use std::collections::BTreeMap;
use std::fmt::Write;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys print in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from an ordered key/value list.
    pub fn object(entries: Vec<(String, JsonValue)>) -> JsonValue {
        JsonValue::Object(entries)
    }

    /// An object from a sorted map.
    pub fn from_map(map: &BTreeMap<String, f64>) -> JsonValue {
        JsonValue::Object(map.iter().map(|(k, v)| (k.clone(), JsonValue::Number(*v))).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => out.push_str(&fmt_f64(*v)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a number as valid JSON: integers without a fraction,
/// non-finite values as `null`, everything else via shortest-roundtrip
/// float printing.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_valid_json() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-17.0), "-17");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structure_round_trips_by_eye() {
        let v = JsonValue::object(vec![
            ("name".into(), JsonValue::Str("route".into())),
            ("iters".into(), JsonValue::Number(4.0)),
            (
                "trajectory".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(10.0),
                    JsonValue::Number(2.0),
                    JsonValue::Number(0.0),
                ]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"route\""));
        assert!(s.contains("\"trajectory\": [\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }
}
