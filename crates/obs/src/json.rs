//! A minimal JSON value model (no external deps) used by the telemetry
//! and heatmap exporters, and — since the batch runner — by the CLI's
//! manifest reader.
//!
//! Values are built bottom-up with [`JsonValue`] and serialized with
//! [`JsonValue::to_string_pretty`]. Numbers serialize through
//! [`fmt_f64`], which keeps integers integral and never emits `NaN` or
//! `Infinity` (both invalid JSON — they become `null`).
//! [`JsonValue::parse`] is the matching recursive-descent reader; it
//! reports 1-based line/column positions in [`JsonParseError`].

use std::collections::BTreeMap;
use std::fmt::{self, Write};

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys print in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from an ordered key/value list.
    pub fn object(entries: Vec<(String, JsonValue)>) -> JsonValue {
        JsonValue::Object(entries)
    }

    /// Parses a JSON document (exactly one top-level value, trailing
    /// whitespace allowed) under [`JsonLimits::default`].
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        JsonValue::parse_with_limits(text, &JsonLimits::default())
    }

    /// Parses with explicit resource limits. Untrusted input (e.g. HTTP
    /// request bodies) should come through here with limits sized to the
    /// endpoint: the recursive-descent reader otherwise converts attacker
    /// nesting depth into native stack depth.
    pub fn parse_with_limits(text: &str, limits: &JsonLimits) -> Result<JsonValue, JsonParseError> {
        if text.len() > limits.max_bytes {
            return Err(JsonParseError {
                line: 1,
                col: 1,
                reason: format!(
                    "document of {} bytes exceeds the {}-byte limit",
                    text.len(),
                    limits.max_bytes
                ),
                kind: JsonErrorKind::TooLarge,
            });
        }
        let mut p =
            Parser { bytes: text.as_bytes(), pos: 0, depth: 0, max_depth: limits.max_depth };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// An object from a sorted map.
    pub fn from_map(map: &BTreeMap<String, f64>) -> JsonValue {
        JsonValue::Object(map.iter().map(|(k, v)| (k.clone(), JsonValue::Number(*v))).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no insignificant whitespace —
    /// the shape NDJSON streams and log lines need.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => out.push_str(&fmt_f64(*v)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => out.push_str(&fmt_f64(*v)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Resource limits for [`JsonValue::parse_with_limits`].
///
/// The defaults are generous enough for every document this workspace
/// produces (manifests, telemetry, ledgers, heatmaps) while still
/// bounding what a hostile document can cost: nesting depth becomes
/// native stack depth in the recursive-descent reader, and byte size
/// bounds allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonLimits {
    /// Maximum container nesting depth (`[[...]]` counts one level per
    /// bracket). Exceeding it yields [`JsonErrorKind::TooDeep`].
    pub max_depth: usize,
    /// Maximum document size in bytes, checked before parsing starts.
    /// Exceeding it yields [`JsonErrorKind::TooLarge`].
    pub max_bytes: usize,
}

impl Default for JsonLimits {
    fn default() -> Self {
        JsonLimits { max_depth: 128, max_bytes: 64 << 20 }
    }
}

/// Coarse classification of a [`JsonParseError`], so callers can map
/// resource-limit violations to different handling (e.g. HTTP 413)
/// than plain syntax errors (HTTP 400).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed JSON text.
    Syntax,
    /// Container nesting exceeded [`JsonLimits::max_depth`].
    TooDeep,
    /// Document exceeded [`JsonLimits::max_bytes`].
    TooLarge,
}

/// A JSON parse error with its 1-based position in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub reason: String,
    /// Syntax error or resource-limit violation.
    pub kind: JsonErrorKind,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at line {}, column {}: {}", self.line, self.col, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: &str) -> JsonParseError {
        self.error_kind(reason, JsonErrorKind::Syntax)
    }

    fn error_kind(&self, reason: &str, kind: JsonErrorKind) -> JsonParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonParseError { line, col, reason: reason.to_string(), kind }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object_body),
            Some(b'[') => self.nested(Parser::array_body),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        body: fn(&mut Self) -> Result<JsonValue, JsonParseError>,
    ) -> Result<JsonValue, JsonParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.error_kind(
                &format!("nesting exceeds the depth limit of {}", self.max_depth),
                JsonErrorKind::TooDeep,
            ));
        }
        let v = body(self);
        self.depth -= 1;
        v
    }

    fn object_body(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|_| self.error("expected a string object key"))?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array_body(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are out of scope for manifests;
                            // lone surrogates map to the replacement character
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged since the input is valid &str)
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Number(v)),
            _ => Err(self.error(&format!("invalid number '{text}'"))),
        }
    }
}

/// Formats a number as valid JSON: integers without a fraction,
/// non-finite values as `null`, everything else via shortest-roundtrip
/// float printing.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_valid_json() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-17.0), "-17");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::object(vec![
            ("name".into(), JsonValue::Str("route \"x\"\n".into())),
            ("count".into(), JsonValue::Number(4.0)),
            ("ratio".into(), JsonValue::Number(-2.75)),
            ("on".into(), JsonValue::Bool(true)),
            ("off".into(), JsonValue::Bool(false)),
            ("none".into(), JsonValue::Null),
            ("ks".into(), JsonValue::Array(vec![JsonValue::Number(0.0), JsonValue::Number(1e-4)])),
            ("empty_obj".into(), JsonValue::Object(vec![])),
            ("empty_arr".into(), JsonValue::Array(vec![])),
        ]);
        let parsed = JsonValue::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(parsed, v);
        // the compact writer round-trips to the same value, on one line
        let compact = v.to_string_compact();
        assert!(!compact.contains('\n'));
        assert_eq!(JsonValue::parse(&compact).unwrap(), v);
    }

    #[test]
    fn parse_accessors_walk_a_manifest() {
        let doc = JsonValue::parse(
            r#"{"jobs": [{"design": "a.pla", "ks": [0, 0.5], "optimize": true}]}"#,
        )
        .unwrap();
        let jobs = doc.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("design").unwrap().as_str(), Some("a.pla"));
        assert_eq!(jobs[0].get("optimize").unwrap().as_bool(), Some(true));
        let ks: Vec<f64> = jobs[0]
            .get("ks")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        assert_eq!(ks, vec![0.0, 0.5]);
        assert!(doc.get("missing").is_none());
        assert!(jobs[0].get("design").unwrap().as_f64().is_none());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = JsonValue::parse("{\n  \"a\": 1,\n  \"b\" 2\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("':'"), "{err}");

        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"k\": 1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("[1e999]").is_err(), "non-finite numbers are rejected");
        let err = JsonValue::parse("nope").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\ndA é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA é"));
        let u = JsonValue::parse("\"\\u0041\\u00e9\\t\"").unwrap();
        assert_eq!(u.as_str(), Some("Aé\t"));
    }

    #[test]
    fn malformed_escapes_are_syntax_errors() {
        for text in ["\"\\q\"", "\"\\u12\"", "\"\\u12zz\"", "\"\\", "\"\\u\""] {
            let err = JsonValue::parse(text).unwrap_err();
            assert_eq!(err.kind, JsonErrorKind::Syntax, "{text} -> {err}");
        }
        // a lone surrogate half is tolerated (maps to the replacement char)
        let v = JsonValue::parse("\"\\ud800\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        // 100k nested arrays would overflow the native stack without the
        // guard; the typed error fires at the configured depth instead.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep, "{err}");
        assert!(err.reason.contains("128"), "{err}");

        // mixed object/array nesting counts both container kinds
        let mixed = "{\"a\":".repeat(300) + "1" + &"}".repeat(300);
        let err = JsonValue::parse(&mixed).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);

        // nesting at the limit parses fine
        let limits = JsonLimits { max_depth: 8, max_bytes: usize::MAX };
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(JsonValue::parse_with_limits(&ok, &limits).is_ok());
        let over = "[".repeat(9) + &"]".repeat(9);
        let err = JsonValue::parse_with_limits(&over, &limits).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);
        assert!(err.reason.contains('8'), "{err}");
    }

    #[test]
    fn size_limit_rejects_oversized_documents() {
        let limits = JsonLimits { max_depth: 128, max_bytes: 16 };
        let err = JsonValue::parse_with_limits("[1, 2, 3, 4, 5, 6]", &limits).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooLarge, "{err}");
        assert!(err.reason.contains("16-byte"), "{err}");
        assert!(JsonValue::parse_with_limits("[1, 2, 3]", &limits).is_ok());
    }

    #[test]
    fn syntax_errors_are_typed_syntax() {
        for text in ["", "[1, 2,]", "nope", "{\"a\" 1}", "[1e999]"] {
            assert_eq!(JsonValue::parse(text).unwrap_err().kind, JsonErrorKind::Syntax, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips_by_eye() {
        let v = JsonValue::object(vec![
            ("name".into(), JsonValue::Str("route".into())),
            ("iters".into(), JsonValue::Number(4.0)),
            (
                "trajectory".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(10.0),
                    JsonValue::Number(2.0),
                    JsonValue::Number(0.0),
                ]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"route\""));
        assert!(s.contains("\"trajectory\": [\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }
}
