//! Windowed time-series metrics: ring buffers of per-second buckets
//! with rolling 10s/1m/5m summaries computed at read time.
//!
//! The cumulative [`Registry`](crate::Registry) answers "how much since
//! boot"; this module answers "how much *right now*". A
//! [`SeriesStore`] ingests registry snapshots once per second (the
//! caller supplies the second — a background sampler passes wall-clock
//! seconds, tests pass a deterministic counter) and keeps, per metric,
//! a ring of per-second buckets:
//!
//! - **counters** store the per-second *delta* (a reset mid-window is
//!   detected the same way [`Snapshot::delta_since`] does: the
//!   post-reset value becomes the delta instead of a huge underflow);
//! - **gauges** store the last value written that second;
//! - **histograms** store the per-second delta of the log₂ bucket
//!   array, so windowed percentiles can be computed at read time by
//!   merging the window's buckets into one [`Histogram`] — no raw
//!   samples are retained, which bounds memory at
//!   `O(keys × RING_SECS)` regardless of traffic.
//!
//! Everything is deterministic given the injected seconds: the same
//! sequence of `observe` calls produces bit-identical
//! [`SeriesStore::stats_json`] output, which is what the serve-layer
//! determinism tests pin.
//!
//! ## Window and bucket math
//!
//! A window of `w` seconds read at second `now` covers the inclusive
//! second range `[now - w + 1, now]` — the current (possibly still
//! filling) second is included so a scrape immediately after an event
//! sees it. Rates divide by the *nominal* window width `w`, not by the
//! number of populated buckets: a half-empty window reports a lower
//! rate, which is the honest reading during warm-up. Slots are stamped
//! with their absolute second; a ring slot whose stamp does not match
//! the second being read is stale (wrapped) and reads as empty.
//!
//! Windowed percentiles inherit the registry histogram's resolution:
//! exact to within one log₂ bucket, clamped to the merged min/max. The
//! per-second min/max of a histogram delta is approximated by the
//! source histogram's lifetime min/max at observe time (the registry
//! does not keep per-interval extremes); the clamp can therefore be up
//! to one bucket loose, never wrong by more.

use crate::json::JsonValue;
use crate::registry::{Histogram, MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Ring capacity in seconds: the longest window plus the current second.
pub const RING_SECS: usize = 301;

/// The rolling windows every summary reports: (seconds, label).
pub const WINDOWS: [(u64, &str); 3] = [(10, "10s"), (60, "1m"), (300, "5m")];

/// One second's worth of histogram activity (a delta of the cumulative
/// log₂ histogram).
#[derive(Debug, Clone, PartialEq)]
struct HistDelta {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl HistDelta {
    fn merge_into(&self, h: &mut Histogram) {
        h.count += self.count;
        h.sum += self.sum;
        h.min = h.min.min(self.min);
        h.max = h.max.max(self.max);
        for (b, d) in h.buckets.iter_mut().zip(&self.buckets) {
            *b += d;
        }
    }
}

/// Per-metric ring of per-second buckets. Slots are `(second, value)`
/// stamped with the absolute second so wrapped slots read as empty.
#[derive(Debug)]
enum Series {
    Counter(Vec<Option<(u64, u64)>>),
    Gauge(Vec<Option<(u64, f64)>>),
    Hist(Vec<Option<(u64, HistDelta)>>),
}

impl Series {
    fn empty_like(v: &MetricValue) -> Series {
        match v {
            MetricValue::Counter(_) => Series::Counter(vec![None; RING_SECS]),
            MetricValue::Gauge(_) => Series::Gauge(vec![None; RING_SECS]),
            MetricValue::Histogram(_) => Series::Hist(vec![None; RING_SECS]),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// The previous snapshot and its second, for delta computation.
    last: Option<(u64, Snapshot)>,
    series: BTreeMap<String, Series>,
}

/// A store of windowed per-second series, fed from registry snapshots.
///
/// Thread-safe; `observe` and the read methods may race freely (two
/// observes landing in the same second merge: counter deltas add,
/// gauges last-write-wins, histogram deltas merge).
#[derive(Debug, Default)]
pub struct SeriesStore {
    inner: Mutex<Inner>,
}

fn slot_idx(sec: u64) -> usize {
    (sec % RING_SECS as u64) as usize
}

impl SeriesStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one registry snapshot taken at second `now_s`.
    ///
    /// The first call establishes the delta baseline: counters and
    /// histograms record nothing (their lifetime total is not "activity
    /// this second"), gauges record their current value. A `now_s`
    /// earlier than the previous call (clock went backwards) is clamped
    /// to the previous second, so activity folds into the latest bucket
    /// instead of corrupting older ones.
    pub fn observe(&self, now_s: u64, snap: &Snapshot) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let now_s = match &g.last {
            Some((last_s, _)) if now_s < *last_s => *last_s,
            _ => now_s,
        };
        let first = g.last.is_none();
        let prev = g.last.take().map(|(_, s)| s);
        for (k, v) in &snap.metrics {
            let prev_v = prev.as_ref().and_then(|p| p.metrics.get(k));
            let series = g.series.entry(k.clone()).or_insert_with(|| Series::empty_like(v));
            match (v, series) {
                (MetricValue::Gauge(val), Series::Gauge(slots)) => {
                    slots[slot_idx(now_s)] = Some((now_s, *val));
                }
                (MetricValue::Counter(now), Series::Counter(slots)) => {
                    let delta = match prev_v {
                        Some(MetricValue::Counter(then)) => {
                            if now >= then {
                                now - then
                            } else {
                                *now // reset: report the post-reset value
                            }
                        }
                        // key born after the baseline: everything is new
                        _ if !first => *now,
                        _ => 0,
                    };
                    if delta > 0 {
                        let slot = &mut slots[slot_idx(now_s)];
                        match slot {
                            Some((sec, d)) if *sec == now_s => *d += delta,
                            _ => *slot = Some((now_s, delta)),
                        }
                    }
                }
                (MetricValue::Histogram(h), Series::Hist(slots)) => {
                    let d = match prev_v {
                        Some(MetricValue::Histogram(then)) => hist_delta(h, then),
                        _ if !first => hist_delta_all(h),
                        _ => None,
                    };
                    if let Some(d) = d {
                        let slot = &mut slots[slot_idx(now_s)];
                        match slot {
                            Some((sec, old)) if *sec == now_s => {
                                old.count += d.count;
                                old.sum += d.sum;
                                old.min = old.min.min(d.min);
                                old.max = old.max.max(d.max);
                                for (b, n) in old.buckets.iter_mut().zip(&d.buckets) {
                                    *b += n;
                                }
                            }
                            _ => *slot = Some((now_s, d)),
                        }
                    }
                }
                // a key that changed type mid-run: rebuild its ring
                (v, series) => *series = Series::empty_like(v),
            }
        }
        g.last = Some((now_s, snap.clone()));
    }

    /// Sum of counter deltas for `key` over the `secs`-second window
    /// ending at `now_s` (0 when the key is absent or the window empty).
    pub fn counter_delta(&self, now_s: u64, secs: u64, key: &str) -> u64 {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(Series::Counter(slots)) = g.series.get(key) else {
            return 0;
        };
        window_range(now_s, secs)
            .filter_map(|s| match slots[slot_idx(s)] {
                Some((sec, d)) if sec == s => Some(d),
                _ => None,
            })
            .sum()
    }

    /// The most recent gauge value for `key` within the window, if any.
    pub fn gauge_last(&self, now_s: u64, secs: u64, key: &str) -> Option<f64> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(Series::Gauge(slots)) = g.series.get(key) else {
            return None;
        };
        window_range(now_s, secs).rev().find_map(|s| match slots[slot_idx(s)] {
            Some((sec, v)) if sec == s => Some(v),
            _ => None,
        })
    }

    /// The window's histogram activity for `key`, merged into one
    /// [`Histogram`] (percentiles are then computed by the caller at
    /// read time). `None` when the key is absent or nothing was
    /// recorded in the window.
    pub fn hist_window(&self, now_s: u64, secs: u64, key: &str) -> Option<Histogram> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(Series::Hist(slots)) = g.series.get(key) else {
            return None;
        };
        let mut merged = Histogram::new();
        for s in window_range(now_s, secs) {
            if let Some((sec, d)) = &slots[slot_idx(s)] {
                if *sec == s {
                    d.merge_into(&mut merged);
                }
            }
        }
        (merged.count > 0).then_some(merged)
    }

    /// The last `n` per-second values for `key`, oldest first: counter
    /// and histogram series report per-second deltas/counts, gauges the
    /// value written that second. Seconds with no data — including the
    /// ones before the clock started, so the result is always exactly
    /// `n` long — read as 0: the shape a sparkline renderer wants.
    pub fn recent(&self, now_s: u64, n: usize, key: &str) -> Vec<f64> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(series) = g.series.get(key) else {
            return vec![0.0; n];
        };
        let mut vals = vec![0.0; n.saturating_sub(now_s as usize + 1)];
        vals.extend(window_range(now_s, n as u64).map(|s| match series {
            Series::Counter(slots) => match slots[slot_idx(s)] {
                Some((sec, d)) if sec == s => d as f64,
                _ => 0.0,
            },
            Series::Gauge(slots) => match slots[slot_idx(s)] {
                Some((sec, v)) if sec == s => v,
                _ => 0.0,
            },
            Series::Hist(slots) => match &slots[slot_idx(s)] {
                Some((sec, d)) if *sec == s => d.count as f64,
                _ => 0.0,
            },
        }));
        vals
    }

    /// The tracked metric names, sorted.
    pub fn keys(&self) -> Vec<String> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.series.keys().cloned().collect()
    }

    /// Summaries for every key over the standard [`WINDOWS`], as one
    /// JSON object per window label:
    ///
    /// - counters → `{"delta": n, "rate_per_s": n / window}`
    /// - gauges → `{"last": v, "min": lo, "max": hi}`
    /// - histograms → `{"count", "rate_per_s", "mean", "p50", "p95",
    ///   "p99"}` from the merged window buckets
    pub fn windows_json(&self, now_s: u64) -> JsonValue {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut windows = Vec::with_capacity(WINDOWS.len());
        for (secs, label) in WINDOWS {
            let mut entries: Vec<(String, JsonValue)> = Vec::new();
            for (key, series) in &g.series {
                let doc = match series {
                    Series::Counter(slots) => {
                        let delta: u64 = window_range(now_s, secs)
                            .filter_map(|s| match slots[slot_idx(s)] {
                                Some((sec, d)) if sec == s => Some(d),
                                _ => None,
                            })
                            .sum();
                        if delta == 0 {
                            continue;
                        }
                        JsonValue::object(vec![
                            ("delta".into(), JsonValue::Number(delta as f64)),
                            ("rate_per_s".into(), JsonValue::Number(delta as f64 / secs as f64)),
                        ])
                    }
                    Series::Gauge(slots) => {
                        let vals: Vec<f64> = window_range(now_s, secs)
                            .filter_map(|s| match slots[slot_idx(s)] {
                                Some((sec, v)) if sec == s => Some(v),
                                _ => None,
                            })
                            .collect();
                        let Some(&last) = vals.last() else { continue };
                        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        JsonValue::object(vec![
                            ("last".into(), JsonValue::Number(last)),
                            ("min".into(), JsonValue::Number(min)),
                            ("max".into(), JsonValue::Number(max)),
                        ])
                    }
                    Series::Hist(slots) => {
                        let mut merged = Histogram::new();
                        for s in window_range(now_s, secs) {
                            if let Some((sec, d)) = &slots[slot_idx(s)] {
                                if *sec == s {
                                    d.merge_into(&mut merged);
                                }
                            }
                        }
                        if merged.count == 0 {
                            continue;
                        }
                        JsonValue::object(vec![
                            ("count".into(), JsonValue::Number(merged.count as f64)),
                            (
                                "rate_per_s".into(),
                                JsonValue::Number(merged.count as f64 / secs as f64),
                            ),
                            ("mean".into(), JsonValue::Number(merged.mean())),
                            ("p50".into(), JsonValue::Number(merged.p50())),
                            ("p95".into(), JsonValue::Number(merged.p95())),
                            ("p99".into(), JsonValue::Number(merged.p99())),
                        ])
                    }
                };
                entries.push((key.clone(), doc));
            }
            windows.push((label.to_string(), JsonValue::object(entries)));
        }
        JsonValue::object(windows)
    }

    /// The whole store as one `casyn.stats.v1` document: per-window
    /// summaries plus the last `spark_len` per-second values of each
    /// `spark_keys` entry (for terminal sparklines). Deterministic
    /// given the injected seconds: identical `observe` sequences
    /// produce bit-identical output.
    pub fn stats_json(&self, now_s: u64, spark_keys: &[&str], spark_len: usize) -> JsonValue {
        let series = spark_keys
            .iter()
            .map(|k| {
                (
                    k.to_string(),
                    JsonValue::Array(
                        self.recent(now_s, spark_len, k)
                            .into_iter()
                            .map(JsonValue::Number)
                            .collect(),
                    ),
                )
            })
            .collect();
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.stats.v1".into())),
            ("now_s".into(), JsonValue::Number(now_s as f64)),
            ("windows".into(), self.windows_json(now_s)),
            ("series".into(), JsonValue::object(series)),
        ])
    }
}

/// The inclusive second range a window covers: `[now - w + 1, now]`,
/// clamped at second 0.
fn window_range(now_s: u64, secs: u64) -> std::ops::RangeInclusive<u64> {
    now_s.saturating_sub(secs.saturating_sub(1))..=now_s
}

/// The histogram activity between two cumulative snapshots. A bucket or
/// count that went backwards means the registry was reset; the current
/// histogram then *is* the delta (mirroring counter-reset semantics).
/// `None` when nothing was recorded in the interval.
fn hist_delta(now: &Histogram, then: &Histogram) -> Option<HistDelta> {
    if now.count < then.count || now.buckets.iter().zip(&then.buckets).any(|(n, t)| n < t) {
        return hist_delta_all(now);
    }
    if now.count == then.count {
        return None;
    }
    Some(HistDelta {
        count: now.count - then.count,
        sum: now.sum - then.sum,
        // lifetime extremes stand in for the interval's (see module docs)
        min: now.min,
        max: now.max,
        buckets: now.buckets.iter().zip(&then.buckets).map(|(n, t)| n - t).collect(),
    })
}

fn hist_delta_all(now: &Histogram) -> Option<HistDelta> {
    (now.count > 0).then(|| HistDelta {
        count: now.count,
        sum: now.sum,
        min: now.min,
        max: now.max,
        buckets: now.buckets.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap_counter(key: &str, v: u64) -> Snapshot {
        let r = Registry::new();
        r.counter_add(key, v);
        r.snapshot()
    }

    #[test]
    fn baseline_observe_records_no_counter_activity() {
        let ts = SeriesStore::new();
        ts.observe(100, &snap_counter("t.jobs", 1000));
        assert_eq!(ts.counter_delta(100, 10, "t.jobs"), 0, "lifetime total is not activity");
        ts.observe(101, &snap_counter("t.jobs", 1004));
        assert_eq!(ts.counter_delta(101, 10, "t.jobs"), 4);
        assert_eq!(ts.counter_delta(101, 1, "t.jobs"), 4, "delta landed in the latest second");
    }

    #[test]
    fn empty_window_reads_as_zero_everywhere() {
        let ts = SeriesStore::new();
        ts.observe(0, &snap_counter("t.jobs", 5));
        ts.observe(1, &snap_counter("t.jobs", 9));
        // a window far past the last activity sees nothing
        assert_eq!(ts.counter_delta(500, 10, "t.jobs"), 0);
        assert!(ts.hist_window(500, 10, "t.lat").is_none());
        assert_eq!(ts.gauge_last(500, 10, "t.depth"), None);
        assert_eq!(ts.recent(500, 5, "t.jobs"), vec![0.0; 5]);
        // and an unknown key is indistinguishable from an idle one
        assert_eq!(ts.counter_delta(1, 10, "no.such"), 0);
    }

    #[test]
    fn ring_wrap_around_invalidates_stale_slots() {
        let ts = SeriesStore::new();
        ts.observe(5, &snap_counter("t.jobs", 0));
        ts.observe(6, &snap_counter("t.jobs", 7));
        assert_eq!(ts.counter_delta(6, 10, "t.jobs"), 7);
        // second 6 + RING_SECS maps to the same slot; the stale stamp
        // must not leak into the new window
        let later = 6 + RING_SECS as u64;
        assert_eq!(ts.counter_delta(later, 10, "t.jobs"), 0);
        // writing at the wrapped second replaces the stale slot
        ts.observe(later, &snap_counter("t.jobs", 10));
        assert_eq!(ts.counter_delta(later, 10, "t.jobs"), 3);
    }

    #[test]
    fn clock_going_backwards_folds_into_latest_bucket() {
        let ts = SeriesStore::new();
        ts.observe(50, &snap_counter("t.jobs", 0));
        ts.observe(51, &snap_counter("t.jobs", 2));
        // the clock jumps back 20 s; the 3 new events must land in
        // second 51, not overwrite second 31
        ts.observe(31, &snap_counter("t.jobs", 5));
        assert_eq!(ts.counter_delta(51, 1, "t.jobs"), 5, "2 + 3 merged into second 51");
        assert_eq!(ts.counter_delta(31, 1, "t.jobs"), 0, "nothing was written into the past");
    }

    #[test]
    fn counter_reset_mid_window_reports_post_reset_value() {
        let ts = SeriesStore::new();
        ts.observe(10, &snap_counter("t.jobs", 100));
        ts.observe(11, &snap_counter("t.jobs", 110));
        // registry reset: the counter restarts from 0 and climbs to 4
        ts.observe(12, &snap_counter("t.jobs", 4));
        assert_eq!(ts.counter_delta(12, 10, "t.jobs"), 14, "10 before the reset + 4 after");
    }

    #[test]
    fn windowed_percentile_on_single_sample_is_exact() {
        let ts = SeriesStore::new();
        let r = Registry::new();
        ts.observe(0, &r.snapshot());
        r.hist_record("t.lat", 7.3); // mid-bucket: interpolation alone would miss it
        ts.observe(1, &r.snapshot());
        let h = ts.hist_window(1, 10, "t.lat").unwrap();
        assert_eq!(h.count, 1);
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(p), 7.3, "single-sample window at p={p}");
        }
    }

    #[test]
    fn windowed_histogram_merges_only_window_buckets() {
        let ts = SeriesStore::new();
        let r = Registry::new();
        ts.observe(0, &r.snapshot());
        // second 1: slow requests; second 100: fast ones
        for v in [900.0, 950.0, 1000.0] {
            r.hist_record("t.lat", v);
        }
        ts.observe(1, &r.snapshot());
        for v in [2.0, 3.0] {
            r.hist_record("t.lat", v);
        }
        ts.observe(100, &r.snapshot());
        // a 10 s window at second 100 must only see the fast samples
        let recent = ts.hist_window(100, 10, "t.lat").unwrap();
        assert_eq!(recent.count, 2);
        assert!(recent.p95() <= 4.0, "p95 {} leaked the old slow samples", recent.p95());
        // the 5m window still sees everything
        let all = ts.hist_window(100, 300, "t.lat").unwrap();
        assert_eq!(all.count, 5);
        assert!(all.p95() >= 512.0, "p95 {} lost the slow tail", all.p95());
    }

    #[test]
    fn gauge_window_reports_last_and_extremes() {
        let ts = SeriesStore::new();
        let gauge = |v: f64| {
            let r = Registry::new();
            r.gauge_set("t.depth", v);
            r.snapshot()
        };
        ts.observe(0, &gauge(5.0));
        ts.observe(1, &gauge(9.0));
        ts.observe(2, &gauge(7.0));
        assert_eq!(ts.gauge_last(2, 10, "t.depth"), Some(7.0));
        let doc = ts.windows_json(2).to_string_compact();
        assert!(doc.contains("\"t.depth\":{\"last\":7,\"min\":5,\"max\":9}"), "got {doc}");
    }

    #[test]
    fn stats_json_is_deterministic_for_identical_observe_sequences() {
        let run = || {
            let ts = SeriesStore::new();
            let r = Registry::new();
            r.counter_add("t.jobs", 1);
            r.gauge_set("t.depth", 4.0);
            ts.observe(0, &r.snapshot());
            r.counter_add("t.jobs", 3);
            r.hist_record("t.lat", 12.0);
            r.hist_record("t.lat", 48.0);
            ts.observe(1, &r.snapshot());
            r.counter_add("t.jobs", 2);
            ts.observe(2, &r.snapshot());
            ts.stats_json(2, &["t.jobs"], 30).to_string_compact()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "two identical runs with the injected clock must be bit-identical");
        assert!(a.contains("\"schema\":\"casyn.stats.v1\""));
        assert!(a.contains("\"10s\""));
        assert!(a.contains("\"5m\""));
        assert!(a.contains("\"t.lat\""));
    }

    #[test]
    fn recent_series_has_fixed_length_and_order() {
        let ts = SeriesStore::new();
        ts.observe(0, &snap_counter("t.jobs", 0));
        ts.observe(1, &snap_counter("t.jobs", 2));
        ts.observe(3, &snap_counter("t.jobs", 7));
        let s = ts.recent(3, 4, "t.jobs");
        assert_eq!(s, vec![0.0, 2.0, 0.0, 5.0], "oldest first, gaps read 0");
    }

    #[test]
    fn same_second_observes_merge() {
        let ts = SeriesStore::new();
        ts.observe(9, &snap_counter("t.jobs", 0));
        ts.observe(9, &snap_counter("t.jobs", 2));
        ts.observe(9, &snap_counter("t.jobs", 5));
        assert_eq!(ts.counter_delta(9, 1, "t.jobs"), 5);
    }
}
