//! Hierarchical, thread-aware span tracing.
//!
//! Where the metrics [`registry`](crate::registry) answers *how much*
//! (counts, distributions), this module answers *where the time went*:
//! every instrumented scope becomes a span with an id, a parent id, the
//! label of the thread it ran on, a start offset and duration relative
//! to a process-wide epoch, and free-form key=value attributes. Pool
//! workers label their threads (`w0`, `w1`, …) so each job lands on its
//! worker's track and steals and idle gaps are visible.
//!
//! Collection is designed around the pipeline's determinism contract:
//! spans observe the run, they never feed back into it. No span value is
//! ever read by flow code, timestamps live only in telemetry sinks, and
//! when tracing is disabled (the default) [`span`] returns an inert
//! guard after a single relaxed atomic load.
//!
//! Buffering is per-thread to keep the hot path lock-free-ish: each
//! thread appends finished events to a thread-local `Vec` and tracks its
//! open-span stack there; the global mutex is touched only when a buffer
//! flushes (buffer full with no open spans, thread exit, or
//! [`take_events`]). Scoped pool threads exit before their `par_map`
//! returns, so by the time a caller exports a trace every worker buffer
//! has drained.
//!
//! Two sinks: [`to_trace_json`] (the `casyn.trace.v1` schema, readable
//! back with [`JsonValue::parse`]) and [`to_chrome_trace`] (Chrome
//! trace-event format, loadable in chrome://tracing or Perfetto).

use crate::json::JsonValue;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// An attribute value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Numeric attribute (serialized via `fmt_f64`).
    Num(f64),
    /// String attribute.
    Str(String),
}

/// What kind of event a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scope with a duration.
    Span,
    /// A point-in-time marker (retry, fault, check failure).
    Instant,
}

/// One finished trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Unique event id (process-wide, starts at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Event name (`route.iter`, `exec.job`, …).
    pub name: String,
    /// Label of the thread that produced the event (`main`, `w0`, …).
    pub thread: String,
    /// Microseconds since the trace epoch.
    pub start_us: f64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: f64,
    /// Span or instant.
    pub kind: EventKind,
    /// key=value attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static COLLECTED: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Backstop flush threshold for threads holding a long-lived root span:
/// completed events are safe to ship at any time, the threshold just
/// bounds buffer growth. The primary flush point is every top-level
/// span close — thread teardown (and thus the TLS destructor) is NOT
/// ordered before `std::thread::scope` returns, so the last span on a
/// scoped worker must push its buffer out itself.
const FLUSH_AT: usize = 256;

/// The process-wide instant all trace timestamps are relative to.
/// Initialized on first use; [`elapsed_us`]/[`elapsed_ms`] are what the
/// log prefix and span timestamps share.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch.
pub fn elapsed_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Milliseconds since the trace epoch.
pub fn elapsed_ms() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e3
}

/// Turns span collection on or off (off by default). Enabling also pins
/// the epoch so the first span does not start at 0 microseconds minus
/// initialization cost.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Whether span collection is on.
#[inline]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

struct ThreadTrace {
    label: Option<String>,
    stack: Vec<u64>,
    buf: Vec<TraceEvent>,
}

impl ThreadTrace {
    const fn new() -> Self {
        ThreadTrace { label: None, stack: Vec::new(), buf: Vec::new() }
    }

    fn label(&mut self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let l = std::thread::current().name().unwrap_or("main").to_string();
        self.label = Some(l.clone());
        l
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        COLLECTED.lock().unwrap().append(&mut self.buf);
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadTrace> = const { RefCell::new(ThreadTrace::new()) };
}

/// Names the current thread's track (`w0`, `w1`, …). Pool workers call
/// this once at spawn; unnamed threads default to their std thread name
/// or `main`. The label also prefixes `CASYN_LOG` lines.
pub fn set_thread_label(label: &str) {
    TLS.with(|t| t.borrow_mut().label = Some(label.to_string()));
}

/// The current thread's track label (for the log prefix).
pub fn thread_label() -> String {
    TLS.with(|t| t.borrow_mut().label())
}

/// RAII guard for one span. Created by [`span`]; records the event into
/// the thread-local buffer when dropped. Inert (and free) when tracing
/// is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: f64,
    alloc_start: u64,
    attrs: Vec<(String, AttrValue)>,
    active: bool,
}

/// Opens a span named `name` on the current thread. The span closes
/// (and is recorded) when the returned guard drops; nested calls chain
/// parent ids through a per-thread stack, so guards must drop in LIFO
/// order — the natural shape for scoped instrumentation.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            parent: None,
            name: String::new(),
            start_us: 0.0,
            alloc_start: 0,
            attrs: Vec::new(),
            active: false,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = TLS.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied();
        t.stack.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        name: name.to_string(),
        start_us: elapsed_us(),
        alloc_start: crate::alloc::allocated_bytes(),
        attrs: Vec::new(),
        active: true,
    }
}

impl SpanGuard {
    /// Attaches a numeric attribute.
    pub fn attr_num(&mut self, key: &str, v: f64) {
        if self.active {
            self.attrs.push((key.to_string(), AttrValue::Num(v)));
        }
    }

    /// Attaches a string attribute.
    pub fn attr_str(&mut self, key: &str, v: &str) {
        if self.active {
            self.attrs.push((key.to_string(), AttrValue::Str(v.to_string())));
        }
    }

    /// This span's id (0 when tracing is disabled). Lets callers link
    /// related records; flow code never reads it.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_us = elapsed_us();
        let alloc_delta = crate::alloc::allocated_bytes().saturating_sub(self.alloc_start);
        if alloc_delta > 0 {
            self.attrs.push(("alloc_bytes".to_string(), AttrValue::Num(alloc_delta as f64)));
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // LIFO pop; tolerate out-of-order drops by removing this id
            // wherever it sits so the stack never wedges.
            if t.stack.last() == Some(&self.id) {
                t.stack.pop();
            } else if let Some(pos) = t.stack.iter().rposition(|&s| s == self.id) {
                t.stack.remove(pos);
            }
            let thread = t.label();
            t.buf.push(TraceEvent {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                thread,
                start_us: self.start_us,
                dur_us: (end_us - self.start_us).max(0.0),
                kind: EventKind::Span,
                attrs: std::mem::take(&mut self.attrs),
            });
            if t.stack.is_empty() || t.buf.len() >= FLUSH_AT {
                t.flush();
            }
        });
    }
}

/// Records a point-in-time marker (retry, injected fault, check
/// failure) under the current thread's open span, if any.
pub fn instant(name: &str, attrs: &[(&str, AttrValue)]) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let ts = elapsed_us();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied();
        let thread = t.label();
        t.buf.push(TraceEvent {
            id,
            parent,
            name: name.to_string(),
            thread,
            start_us: ts,
            dur_us: 0.0,
            kind: EventKind::Instant,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
        if t.stack.is_empty() {
            t.flush();
        }
    });
}

/// Drains every collected event: flushes the calling thread's buffer,
/// then swaps out the global collector. Events are returned sorted by
/// (start, id) so exports are stable. Worker threads flush on exit
/// (scoped threads join before their `par_map` returns), so calling
/// this after a parallel region sees the workers' events too.
pub fn take_events() -> Vec<TraceEvent> {
    TLS.with(|t| t.borrow_mut().flush());
    let mut events = std::mem::take(&mut *COLLECTED.lock().unwrap());
    events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
    events
}

/// Discards every collected event (including the calling thread's
/// buffer). Test isolation helper.
pub fn clear() {
    drop(take_events());
}

fn attrs_json(attrs: &[(String, AttrValue)]) -> JsonValue {
    JsonValue::Object(
        attrs
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    AttrValue::Num(n) => JsonValue::Number(*n),
                    AttrValue::Str(s) => JsonValue::Str(s.clone()),
                };
                (k.clone(), jv)
            })
            .collect(),
    )
}

/// Serializes events as the `casyn.trace.v1` document: a `schema` tag
/// plus an `events` array of `{type, id, parent, name, thread,
/// start_us, dur_us, attrs}` objects. Round-trips through
/// [`JsonValue::parse`].
pub fn to_trace_json(events: &[TraceEvent]) -> JsonValue {
    let items = events
        .iter()
        .map(|e| {
            JsonValue::object(vec![
                (
                    "type".into(),
                    JsonValue::Str(
                        match e.kind {
                            EventKind::Span => "span",
                            EventKind::Instant => "instant",
                        }
                        .into(),
                    ),
                ),
                ("id".into(), JsonValue::Number(e.id as f64)),
                (
                    "parent".into(),
                    match e.parent {
                        Some(p) => JsonValue::Number(p as f64),
                        None => JsonValue::Null,
                    },
                ),
                ("name".into(), JsonValue::Str(e.name.clone())),
                ("thread".into(), JsonValue::Str(e.thread.clone())),
                ("start_us".into(), JsonValue::Number(e.start_us)),
                ("dur_us".into(), JsonValue::Number(e.dur_us)),
                ("attrs".into(), attrs_json(&e.attrs)),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.trace.v1".into())),
        ("events".into(), JsonValue::Array(items)),
    ])
}

/// Serializes events in Chrome trace-event format: a bare JSON array of
/// `ph:"M"` thread-name metadata, `ph:"X"` complete events (`ts`/`dur`
/// in microseconds), and `ph:"i"` instants, loadable in chrome://tracing
/// and Perfetto. Thread ids are assigned by sorted label so the output
/// is stable across runs.
pub fn to_chrome_trace(events: &[TraceEvent]) -> JsonValue {
    let mut labels: Vec<&str> = events.iter().map(|e| e.thread.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    let tid_of = |thread: &str| -> f64 {
        (labels.iter().position(|l| *l == thread).map(|i| i + 1).unwrap_or(0)) as f64
    };
    let mut items: Vec<JsonValue> = labels
        .iter()
        .map(|label| {
            JsonValue::object(vec![
                ("name".into(), JsonValue::Str("thread_name".into())),
                ("ph".into(), JsonValue::Str("M".into())),
                ("pid".into(), JsonValue::Number(1.0)),
                ("tid".into(), JsonValue::Number(tid_of(label))),
                (
                    "args".into(),
                    JsonValue::object(vec![("name".into(), JsonValue::Str((*label).into()))]),
                ),
            ])
        })
        .collect();
    for e in events {
        let mut args = vec![("id".into(), JsonValue::Number(e.id as f64))];
        if let Some(p) = e.parent {
            args.push(("parent".into(), JsonValue::Number(p as f64)));
        }
        if let JsonValue::Object(entries) = attrs_json(&e.attrs) {
            args.extend(entries);
        }
        let mut fields = vec![
            ("name".into(), JsonValue::Str(e.name.clone())),
            ("cat".into(), JsonValue::Str("casyn".into())),
            (
                "ph".into(),
                JsonValue::Str(
                    match e.kind {
                        EventKind::Span => "X",
                        EventKind::Instant => "i",
                    }
                    .into(),
                ),
            ),
            ("ts".into(), JsonValue::Number(e.start_us)),
        ];
        if e.kind == EventKind::Span {
            fields.push(("dur".into(), JsonValue::Number(e.dur_us)));
        } else {
            fields.push(("s".into(), JsonValue::Str("t".into())));
        }
        fields.push(("pid".into(), JsonValue::Number(1.0)));
        fields.push(("tid".into(), JsonValue::Number(tid_of(&e.thread))));
        fields.push(("args".into(), JsonValue::object(args)));
        items.push(JsonValue::object(fields));
    }
    JsonValue::Array(items)
}

#[cfg(test)]
pub(crate) fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = trace_test_lock();
        set_enabled(false);
        clear();
        {
            let mut s = span("noop");
            s.attr_num("k", 1.0);
        }
        instant("noop.marker", &[]);
        assert!(take_events().is_empty());
    }

    #[test]
    fn nested_spans_chain_parents() {
        let _guard = trace_test_lock();
        set_enabled(true);
        clear();
        {
            let outer = span("outer");
            let outer_id = outer.id();
            {
                let mut inner = span("inner");
                assert_ne!(inner.id(), outer_id);
                inner.attr_str("what", "dp");
                instant("tick", &[("n", AttrValue::Num(3.0))]);
            }
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(tick.parent, Some(inner.id));
        assert_eq!(tick.kind, EventKind::Instant);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1e-6);
        assert!(inner.attrs.iter().any(|(k, v)| k == "what" && *v == AttrValue::Str("dp".into())));
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _guard = trace_test_lock();
        set_enabled(true);
        clear();
        std::thread::scope(|s| {
            for w in 0..2 {
                s.spawn(move || {
                    set_thread_label(&format!("test_w{w}"));
                    let _s = span("job");
                });
            }
        });
        set_enabled(false);
        let events = take_events();
        let mut threads: Vec<&str> =
            events.iter().filter(|e| e.name == "job").map(|e| e.thread.as_str()).collect();
        threads.sort_unstable();
        assert_eq!(threads, ["test_w0", "test_w1"]);
    }

    #[test]
    fn trace_json_round_trips() {
        let _guard = trace_test_lock();
        set_enabled(true);
        clear();
        {
            let mut s = span("stage");
            s.attr_num("k", 0.5);
        }
        set_enabled(false);
        let events = take_events();
        let doc = to_trace_json(&events);
        let parsed = JsonValue::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("casyn.trace.v1"));
        let arr = parsed.get("events").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("stage"));
        assert_eq!(arr[0].get("attrs").unwrap().get("k").unwrap().as_f64(), Some(0.5));
        assert_eq!(arr[0].get("parent"), Some(&JsonValue::Null));
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let _guard = trace_test_lock();
        set_enabled(true);
        clear();
        {
            let _s = span("flow");
            instant("fault", &[]);
        }
        set_enabled(false);
        let doc = to_chrome_trace(&take_events());
        let items = doc.as_array().unwrap();
        let meta: Vec<_> =
            items.iter().filter(|i| i.get("ph").and_then(|p| p.as_str()) == Some("M")).collect();
        assert_eq!(meta.len(), 1, "one thread_name metadata event per track");
        let complete = items
            .iter()
            .find(|i| i.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete event");
        assert!(complete.get("ts").unwrap().as_f64().is_some());
        assert!(complete.get("dur").unwrap().as_f64().is_some());
        assert!(complete.get("tid").unwrap().as_f64().is_some());
        assert_eq!(complete.get("pid").unwrap().as_f64(), Some(1.0));
        let inst = items
            .iter()
            .find(|i| i.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .expect("instant event");
        assert_eq!(inst.get("name").unwrap().as_str(), Some("fault"));
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
    }
}
