//! Two-level simplification — a light espresso-style pass.
//!
//! Before decomposition, each node's SOP is cleaned up with three
//! classic, semantics-preserving operations:
//!
//! * **single-cube containment** — drop cubes covered by another cube;
//! * **distance-1 merging** — `a·x + a·x̄ → a` (consensus when the two
//!   cubes differ in exactly one opposed literal and agree elsewhere);
//! * **literal expansion** — remove a literal when the expanded cube is
//!   still covered by the rest of the cover plus itself (checked by
//!   cofactor tautology on the cube's small support).
//!
//! This is not full espresso (no irredundant-cover LP, no essential-prime
//! extraction), but it removes the redundancy the synthetic generators
//! and extraction rewrites leave behind, and it is exact.

use casyn_netlist::network::{Network, NodeFunction};
use casyn_netlist::sop::{Cube, Polarity, Sop};

/// Options for [`simplify_network`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplifyOptions {
    /// Apply distance-1 cube merging.
    pub merge: bool,
    /// Apply literal expansion (cost: exhaustive check over each cube's
    /// support, capped at this many variables).
    pub expand_support_limit: usize,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        SimplifyOptions { merge: true, expand_support_limit: 12 }
    }
}

/// Simplifies one SOP; returns the literal count saved.
pub fn simplify_sop(sop: &mut Sop, opts: &SimplifyOptions) -> usize {
    let before = sop.literal_count();
    loop {
        let mut changed = sop.make_irredundant_scc() > 0;
        if opts.merge {
            changed |= merge_distance1(sop);
        }
        changed |= expand_literals(sop, opts.expand_support_limit);
        if !changed {
            break;
        }
    }
    before.saturating_sub(sop.literal_count())
}

/// Simplifies every logic node of a network in place; returns total
/// literals saved. The network function is preserved exactly (each
/// transformation is an equivalence on the node's local function).
pub fn simplify_network(net: &mut Network, opts: &SimplifyOptions) -> usize {
    let mut saved = 0;
    for id in net.node_ids().collect::<Vec<_>>() {
        if let NodeFunction::Logic { sop, .. } = net.node_mut(id) {
            saved += simplify_sop(sop, opts);
        }
    }
    saved
}

/// Merges cube pairs at Hamming distance one (same variables, exactly one
/// opposed literal): `a·x + a·x̄ = a`. Returns true when anything merged.
fn merge_distance1(sop: &mut Sop) -> bool {
    let n = sop.num_vars();
    let cubes = sop.cubes().to_vec();
    let mut merged: Vec<Cube> = Vec::new();
    let mut used = vec![false; cubes.len()];
    let mut changed = false;
    for i in 0..cubes.len() {
        if used[i] {
            continue;
        }
        let mut current = cubes[i].clone();
        for (j, cj) in cubes.iter().enumerate().skip(i + 1) {
            if used[j] {
                continue;
            }
            if let Some(m) = try_merge(&current, cj, n) {
                current = m;
                used[j] = true;
                changed = true;
            }
        }
        merged.push(current);
    }
    if changed {
        *sop = Sop::from_cubes(n, merged);
    }
    changed
}

/// If `a` and `b` agree on all variables except exactly one where they
/// hold opposed literals, returns the merged cube without that variable.
fn try_merge(a: &Cube, b: &Cube, n: usize) -> Option<Cube> {
    let mut opposed: Option<usize> = None;
    for v in 0..n {
        match (a.literal(v), b.literal(v)) {
            (x, y) if x == y => {}
            (Some(_), Some(_)) => {
                if opposed.is_some() {
                    return None; // two opposed variables
                }
                opposed = Some(v);
            }
            _ => return None, // present in one, absent in the other
        }
    }
    let v = opposed?;
    let mut m = a.clone();
    m.clear(v);
    Some(m)
}

/// Tries to drop each literal of each cube: the literal is removable when
/// the expanded cube is covered by the cover (checked exhaustively over
/// the union support of the cover restricted to the cube, bounded by
/// `support_limit`). Returns true when anything expanded.
fn expand_literals(sop: &mut Sop, support_limit: usize) -> bool {
    let n = sop.num_vars();
    // collect the support of the whole cover
    let mut support: Vec<usize> = Vec::new();
    for c in sop.cubes() {
        for (v, _) in c.literals() {
            if !support.contains(&v) {
                support.push(v);
            }
        }
    }
    if support.len() > support_limit {
        return false;
    }
    support.sort_unstable();
    let eval_on = |sop: &Sop, bits: u32, support: &[usize]| -> bool {
        let mut asg = vec![false; n];
        for (k, v) in support.iter().enumerate() {
            asg[*v] = bits >> k & 1 == 1;
        }
        sop.eval(&asg)
    };
    let mut changed = false;
    let mut cubes = sop.cubes().to_vec();
    for i in 0..cubes.len() {
        let lits: Vec<(usize, Polarity)> = cubes[i].literals().collect();
        for (v, _) in lits {
            let mut candidate = cubes[i].clone();
            candidate.clear(v);
            // the expansion is legal iff candidate ⊆ cover: check all
            // assignments of the support where candidate holds
            let trial = Sop::from_cubes(
                n,
                cubes
                    .iter()
                    .enumerate()
                    .map(|(j, c)| if j == i { candidate.clone() } else { c.clone() })
                    .collect(),
            );
            let mut legal = true;
            for bits in 0..(1u32 << support.len()) {
                let mut asg = vec![false; n];
                for (k, sv) in support.iter().enumerate() {
                    asg[*sv] = bits >> k & 1 == 1;
                }
                if candidate.eval(&asg) {
                    // the point must already be in the original cover
                    if !eval_on(sop, bits, &support) {
                        legal = false;
                        break;
                    }
                }
                let _ = &trial;
            }
            if legal {
                cubes[i].clear(v);
                changed = true;
            }
        }
    }
    if changed {
        *sop = Sop::from_cubes(n, cubes);
        sop.make_irredundant_scc();
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize, lits: &[(usize, Polarity)]) -> Cube {
        let mut c = Cube::one(n);
        for &(v, p) in lits {
            c.set(v, p);
        }
        c
    }

    const P: Polarity = Polarity::Positive;
    const N: Polarity = Polarity::Negative;

    fn assert_equal_functions(a: &Sop, b: &Sop) {
        assert_eq!(a.num_vars(), b.num_vars());
        let n = a.num_vars();
        for m in 0..(1u64 << n) {
            let asg: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval(&asg), b.eval(&asg), "differ at {asg:?}");
        }
    }

    #[test]
    fn distance1_merge() {
        // ab + a!b = a
        let mut f =
            Sop::from_cubes(2, vec![cube(2, &[(0, P), (1, P)]), cube(2, &[(0, P), (1, N)])]);
        let golden = f.clone();
        let saved = simplify_sop(&mut f, &SimplifyOptions::default());
        assert!(saved >= 3);
        assert_eq!(f.num_cubes(), 1);
        assert_eq!(f.cubes()[0].literal_count(), 1);
        assert_equal_functions(&golden, &f);
    }

    #[test]
    fn expansion_removes_redundant_literal() {
        // f = a + !a·b  ≡  a + b
        let mut f = Sop::from_cubes(2, vec![cube(2, &[(0, P)]), cube(2, &[(0, N), (1, P)])]);
        let golden = f.clone();
        simplify_sop(&mut f, &SimplifyOptions::default());
        assert_equal_functions(&golden, &f);
        assert_eq!(f.literal_count(), 2, "should become a + b: {f}");
    }

    #[test]
    fn containment_removed() {
        let mut f = Sop::from_cubes(3, vec![cube(3, &[(0, P)]), cube(3, &[(0, P), (1, P)])]);
        simplify_sop(&mut f, &SimplifyOptions::default());
        assert_eq!(f.num_cubes(), 1);
    }

    #[test]
    fn network_simplification_preserves_function() {
        use casyn_netlist::bench::{random_pla, PlaGenConfig};
        let pla = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 30,
            min_literals: 2,
            max_literals: 5,
            mean_outputs_per_term: 1.5,
            seed: 31,
        });
        let golden = pla.to_network();
        let mut net = golden.clone();
        simplify_network(&mut net, &SimplifyOptions::default());
        assert!(net.literal_count() <= golden.literal_count());
        for m in 0..256u32 {
            let asg: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(golden.simulate_outputs(&asg), net.simulate_outputs(&asg));
        }
    }

    #[test]
    fn tautology_pair_merges_to_one() {
        // x + !x = 1
        let mut f = Sop::from_cubes(1, vec![cube(1, &[(0, P)]), cube(1, &[(0, N)])]);
        simplify_sop(&mut f, &SimplifyOptions::default());
        assert!(f.is_one(), "got {f}");
    }

    #[test]
    fn wide_support_skips_expansion_but_still_merges() {
        let n = 20;
        let mut f =
            Sop::from_cubes(n, vec![cube(n, &[(0, P), (15, P)]), cube(n, &[(0, P), (15, N)])]);
        let opts = SimplifyOptions { merge: true, expand_support_limit: 4 };
        simplify_sop(&mut f, &opts);
        assert_eq!(f.num_cubes(), 1);
    }
}
