//! Greedy algebraic extraction over a Boolean network.
//!
//! Two extraction engines are provided:
//!
//! * [`extract_cubes`] — common-cube extraction: finds literal pairs that
//!   occur together in many cubes anywhere in the network, creates a new
//!   two-literal AND node and resubstitutes it. Iterating this performs
//!   the multi-literal common-cube extraction of SIS's `fx` command.
//! * [`extract_kernels`] — kernel extraction: enumerates kernels of every
//!   node, finds the kernel with the best literal savings across all its
//!   occurrences (inter- and intra-node) and extracts it as a new node.
//!
//! Both strictly decrease the network literal count at every step, so they
//! terminate. Extraction increases sharing and multi-fanout counts — the
//! very structure the paper identifies as the source of wiring congestion.

use crate::kernels::{canonical, kernels};
use casyn_netlist::network::{Network, NodeFunction, NodeId};
use casyn_netlist::sop::{Cube, Polarity, Sop};
use casyn_obs as obs;
use std::collections::HashMap;

/// A literal over network nodes: `(driver, polarity)`.
pub type GlobalLit = (NodeId, Polarity);

/// A cube over network nodes: a sorted, duplicate-free literal list.
pub type GlobalCube = Vec<GlobalLit>;

/// Options controlling [`optimize`].
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeOptions {
    /// Maximum number of common-cube extractions (0 disables the pass).
    pub max_cube_extractions: usize,
    /// Maximum number of kernel extractions (0 disables the pass).
    pub max_kernel_extractions: usize,
    /// Nodes with more cubes than this are skipped by kernel enumeration
    /// (kernel counts explode on wide covers).
    pub kernel_cube_limit: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            max_cube_extractions: 10_000,
            max_kernel_extractions: 200,
            kernel_cube_limit: 24,
        }
    }
}

/// Runs kernel extraction followed by common-cube extraction — the
/// aggressive literal-minimization recipe standing in for SIS's
/// `script.rugged`-style technology-independent phase. Returns the total
/// number of new nodes created.
pub fn optimize(net: &mut Network, opts: &OptimizeOptions) -> usize {
    let lits_before = net.literal_count();
    let k = {
        let mut span = obs::trace::span("logic.extract_kernels");
        let k = extract_kernels(net, opts.max_kernel_extractions, opts.kernel_cube_limit);
        span.attr_num("kernels", k as f64);
        k
    };
    let c = {
        let mut span = obs::trace::span("logic.extract_cubes");
        let c = extract_cubes(net, opts.max_cube_extractions);
        span.attr_num("cubes", c as f64);
        c
    };
    if obs::enabled() {
        obs::counter_add("logic.kernels_extracted", k as u64);
        obs::counter_add("logic.cubes_extracted", c as u64);
        obs::counter_add(
            "logic.literals_saved",
            lits_before.saturating_sub(net.literal_count()) as u64,
        );
    }
    obs::log::debug(&format!(
        "optimize: {k} kernels, {c} cubes, literals {lits_before} -> {}",
        net.literal_count()
    ));
    k + c
}

/// Converts a node's local SOP to global cubes.
fn node_global_cubes(net: &Network, id: NodeId) -> Vec<GlobalCube> {
    match net.node(id) {
        NodeFunction::Input(_) => Vec::new(),
        NodeFunction::Logic { fanins, sop } => sop
            .cubes()
            .iter()
            .map(|c| {
                let mut g: GlobalCube = c.literals().map(|(v, p)| (fanins[v], p)).collect();
                g.sort();
                g.dedup();
                g
            })
            .collect(),
    }
}

/// Rewrites a node from global cubes: recomputes the fanin list and the
/// local SOP.
fn set_node_from_global(net: &mut Network, id: NodeId, cubes: &[GlobalCube]) {
    let mut fanins: Vec<NodeId> = cubes.iter().flatten().map(|(n, _)| *n).collect();
    fanins.sort();
    fanins.dedup();
    let index_of: HashMap<NodeId, usize> =
        fanins.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut sop = Sop::zero(fanins.len());
    for gc in cubes {
        let mut c = Cube::one(fanins.len());
        for (n, p) in gc {
            c.set(index_of[n], *p);
        }
        sop.push(c);
    }
    *net.node_mut(id) = NodeFunction::Logic { fanins, sop };
}

/// Creates a new node computing the conjunction or general SOP given by
/// global cubes, and returns its id.
fn add_node_from_global(net: &mut Network, cubes: &[GlobalCube]) -> NodeId {
    let mut fanins: Vec<NodeId> = cubes.iter().flatten().map(|(n, _)| *n).collect();
    fanins.sort();
    fanins.dedup();
    let index_of: HashMap<NodeId, usize> =
        fanins.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut sop = Sop::zero(fanins.len());
    for gc in cubes {
        let mut c = Cube::one(fanins.len());
        for (n, p) in gc {
            c.set(index_of[n], *p);
        }
        sop.push(c);
    }
    net.add_node(fanins, sop)
}

/// Greedy common-cube (literal-pair) extraction. Repeatedly finds the
/// literal pair occurring in the most cubes network-wide; if it occurs in
/// at least three cubes (value `occ - 2 > 0`), a fresh AND node is created
/// and substituted everywhere. Returns the number of nodes created.
pub fn extract_cubes(net: &mut Network, max_extractions: usize) -> usize {
    #[derive(Debug)]
    struct Entry {
        node: NodeId,
        lits: GlobalCube,
        alive: bool,
        /// The defining cube of a divisor node must not be rewritten in
        /// terms of itself.
        is_divisor_def: bool,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for id in net.node_ids().collect::<Vec<_>>() {
        for lits in node_global_cubes(net, id) {
            entries.push(Entry { node: id, lits, alive: true, is_divisor_def: false });
        }
    }
    let mut pair_count: HashMap<(GlobalLit, GlobalLit), i64> = HashMap::new();
    let bump = |map: &mut HashMap<(GlobalLit, GlobalLit), i64>, lits: &GlobalCube, d: i64| {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                *map.entry((lits[i], lits[j])).or_default() += d;
            }
        }
    };
    for e in &entries {
        bump(&mut pair_count, &e.lits, 1);
    }
    let mut created = 0usize;
    let mut touched: Vec<NodeId> = Vec::new();
    while created < max_extractions {
        let Some((&pair, &occ)) = pair_count.iter().max_by_key(|(p, c)| (**c, *p)) else {
            break;
        };
        if occ < 3 {
            break;
        }
        // new divisor node g = a AND b
        let divisor_cube: GlobalCube = {
            let mut v = vec![pair.0, pair.1];
            v.sort();
            v
        };
        let g = add_node_from_global(net, std::slice::from_ref(&divisor_cube));
        created += 1;
        // rewrite every alive cube containing both literals
        let mut rewrites: Vec<(usize, GlobalCube)> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            if !e.alive || e.is_divisor_def {
                continue;
            }
            if e.lits.binary_search(&pair.0).is_ok() && e.lits.binary_search(&pair.1).is_ok() {
                let mut nl: GlobalCube =
                    e.lits.iter().filter(|l| **l != pair.0 && **l != pair.1).copied().collect();
                nl.push((g, Polarity::Positive));
                nl.sort();
                rewrites.push((i, nl));
            }
        }
        for (i, nl) in rewrites {
            bump(&mut pair_count, &entries[i].lits, -1);
            bump(&mut pair_count, &nl, 1);
            touched.push(entries[i].node);
            entries[i].lits = nl;
        }
        // register the divisor's own defining cube so it can participate
        // in *future* pair counts as a literal source, but its definition
        // is never rewritten
        entries.push(Entry { node: g, lits: divisor_cube, alive: true, is_divisor_def: true });
        pair_count.retain(|_, c| *c > 0);
    }
    // write back every touched node
    touched.sort();
    touched.dedup();
    let mut cubes_by_node: HashMap<NodeId, Vec<GlobalCube>> = HashMap::new();
    for e in &entries {
        if e.alive && !e.is_divisor_def {
            cubes_by_node.entry(e.node).or_default().push(e.lits.clone());
        }
    }
    for id in touched {
        let cubes = cubes_by_node.remove(&id).unwrap_or_default();
        set_node_from_global(net, id, &cubes);
    }
    created
}

/// Kernel extraction: in each round, enumerates kernels of all (bounded)
/// nodes, scores each distinct kernel by the exact literal savings of
/// substituting it everywhere it divides, extracts the best one, and
/// repeats. Returns the number of kernels extracted.
pub fn extract_kernels(net: &mut Network, max_extractions: usize, cube_limit: usize) -> usize {
    let mut created = 0usize;
    while created < max_extractions {
        // gather kernels, keyed by canonical global form
        let mut table: HashMap<Vec<GlobalCube>, Vec<NodeId>> = HashMap::new();
        for id in net.node_ids().collect::<Vec<_>>() {
            let NodeFunction::Logic { fanins, sop } = net.node(id) else { continue };
            if sop.num_cubes() < 2 || sop.num_cubes() > cube_limit {
                continue;
            }
            let fanins = fanins.clone();
            for kp in kernels(sop) {
                if kp.kernel.num_cubes() < 2 {
                    continue;
                }
                let mut glob: Vec<GlobalCube> = canonical(&kp.kernel)
                    .into_iter()
                    .map(|cube| {
                        let mut g: GlobalCube =
                            cube.into_iter().map(|(v, p)| (fanins[v], p)).collect();
                        g.sort();
                        g
                    })
                    .collect();
                glob.sort();
                let nodes = table.entry(glob).or_default();
                if !nodes.contains(&id) {
                    nodes.push(id);
                }
            }
        }
        // score candidates by exact literal delta
        type Plan = Vec<(NodeId, Vec<GlobalCube>)>;
        let mut best: Option<(i64, Vec<GlobalCube>, Plan)> = None;
        for (kernel, nodes) in &table {
            let kernel_lits: i64 = kernel.iter().map(|c| c.len() as i64).sum();
            let mut delta = -kernel_lits; // cost of the new node
            let mut plans = Vec::new();
            for &id in nodes {
                let cubes = node_global_cubes(net, id);
                let (q, r) = divide_global(&cubes, kernel);
                if q.is_empty() {
                    continue;
                }
                let old: i64 = cubes.iter().map(|c| c.len() as i64).sum();
                let newl: i64 = q.iter().map(|c| c.len() as i64 + 1).sum::<i64>()
                    + r.iter().map(|c| c.len() as i64).sum::<i64>();
                if newl < old {
                    delta += old - newl;
                    plans.push((id, cubes));
                }
            }
            if plans.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|(d, _, _)| delta > *d) {
                best = Some((delta, kernel.clone(), plans));
            }
        }
        let Some((delta, kernel, plans)) = best else { break };
        if delta <= 0 {
            break;
        }
        let g = add_node_from_global(net, &kernel);
        created += 1;
        for (id, cubes) in plans {
            let (q, r) = divide_global(&cubes, &kernel);
            let mut new_cubes: Vec<GlobalCube> = Vec::with_capacity(q.len() + r.len());
            for mut qc in q {
                qc.push((g, Polarity::Positive));
                qc.sort();
                new_cubes.push(qc);
            }
            new_cubes.extend(r);
            set_node_from_global(net, id, &new_cubes);
        }
    }
    created
}

/// Algebraic division on global-cube covers: returns `(quotient,
/// remainder)` with `f = quotient * divisor + remainder`.
fn divide_global(f: &[GlobalCube], divisor: &[GlobalCube]) -> (Vec<GlobalCube>, Vec<GlobalCube>) {
    let contains =
        |big: &GlobalCube, small: &GlobalCube| small.iter().all(|l| big.binary_search(l).is_ok());
    let without = |big: &GlobalCube, small: &GlobalCube| -> GlobalCube {
        big.iter().filter(|l| small.binary_search(l).is_err()).copied().collect()
    };
    let mut quotient: Option<Vec<GlobalCube>> = None;
    for d in divisor {
        let q: Vec<GlobalCube> =
            f.iter().filter(|c| contains(c, d)).map(|c| without(c, d)).collect();
        quotient = Some(match quotient {
            None => q,
            Some(prev) => prev.into_iter().filter(|c| q.contains(c)).collect(),
        });
        if quotient.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    let q = quotient.unwrap_or_default();
    let mut product: Vec<GlobalCube> = Vec::new();
    for qc in &q {
        for dc in divisor {
            let mut m: GlobalCube = qc.iter().chain(dc.iter()).copied().collect();
            m.sort();
            m.dedup();
            // clash check: both polarities of one node
            let clash = m.windows(2).any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1);
            if !clash {
                product.push(m);
            }
        }
    }
    let r: Vec<GlobalCube> = f.iter().filter(|c| !product.contains(c)).cloned().collect();
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exhaustively (or randomly, for wide inputs) checks that two
    /// networks compute the same outputs.
    fn assert_equivalent(a: &Network, b: &Network, seed: u64) {
        let n = a.inputs().len();
        assert_eq!(n, b.inputs().len());
        if n <= 12 {
            for m in 0..(1u64 << n) {
                let asg: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
                assert_eq!(a.simulate_outputs(&asg), b.simulate_outputs(&asg), "at {asg:?}");
            }
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..256 {
                let asg: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(a.simulate_outputs(&asg), b.simulate_outputs(&asg), "at {asg:?}");
            }
        }
    }

    fn small_pla_network() -> Network {
        random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 24,
            min_literals: 3,
            max_literals: 5,
            mean_outputs_per_term: 1.5,
            seed: 7,
        })
        .to_network()
    }

    #[test]
    fn cube_extraction_reduces_literals_and_preserves_function() {
        let golden = small_pla_network();
        let mut net = golden.clone();
        let before = net.literal_count();
        let made = extract_cubes(&mut net, 1000);
        assert!(made > 0, "expected at least one extraction");
        assert!(net.literal_count() < before, "literals must decrease");
        assert_equivalent(&golden, &net, 1);
    }

    #[test]
    fn cube_extraction_increases_sharing() {
        let golden = small_pla_network();
        let mut net = golden.clone();
        extract_cubes(&mut net, 1000);
        let max_fanout_before = golden.fanout_counts().into_iter().max().unwrap_or(0);
        let max_fanout_after = net.fanout_counts().into_iter().max().unwrap_or(0);
        // divisor nodes are shared; some node should now have healthy fanout
        assert!(net.num_logic_nodes() > golden.num_logic_nodes(), "extraction adds divisor nodes");
        // not a strict theorem, but with 24 overlapping terms sharing rises
        assert!(max_fanout_after >= max_fanout_before.min(3));
    }

    #[test]
    fn cube_extraction_respects_budget() {
        let mut net = small_pla_network();
        let made = extract_cubes(&mut net, 2);
        assert!(made <= 2);
    }

    #[test]
    fn kernel_extraction_on_factored_form() {
        // f1 = ae + be,  f2 = af + bf  -> kernel (a + b) shared
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let e = net.add_input("e");
        let g = net.add_input("g");
        let p = Polarity::Positive;
        let mk = |vars: usize, lits: &[&[(usize, Polarity)]]| {
            let cubes = lits
                .iter()
                .map(|ls| {
                    let mut c = Cube::one(vars);
                    for (v, pol) in ls.iter() {
                        c.set(*v, *pol);
                    }
                    c
                })
                .collect();
            Sop::from_cubes(vars, cubes)
        };
        let f1 = net.add_node(vec![a, b, e], mk(3, &[&[(0, p), (2, p)], &[(1, p), (2, p)]]));
        let f2 = net.add_node(vec![a, b, g], mk(3, &[&[(0, p), (2, p)], &[(1, p), (2, p)]]));
        net.add_output("f1", f1);
        net.add_output("f2", f2);
        let golden = net.clone();
        let before = net.literal_count();
        let made = extract_kernels(&mut net, 10, 16);
        assert_eq!(made, 1, "exactly the shared kernel a+b should be extracted");
        assert!(net.literal_count() < before);
        assert_equivalent(&golden, &net, 2);
    }

    #[test]
    fn kernel_extraction_preserves_function_on_random_pla() {
        let golden = small_pla_network();
        let mut net = golden.clone();
        extract_kernels(&mut net, 20, 24);
        assert_equivalent(&golden, &net, 3);
    }

    #[test]
    fn optimize_runs_both_passes() {
        let golden = small_pla_network();
        let mut net = golden.clone();
        let before = net.literal_count();
        optimize(&mut net, &OptimizeOptions::default());
        assert!(net.literal_count() < before);
        assert_equivalent(&golden, &net, 4);
    }

    #[test]
    fn optimize_is_idempotent_on_fixed_point() {
        let mut net = small_pla_network();
        optimize(&mut net, &OptimizeOptions::default());
        let lits = net.literal_count();
        let golden = net.clone();
        let made = optimize(&mut net, &OptimizeOptions::default());
        // a second run may still find a few kernels, but must not increase
        // literals and must preserve the function
        assert!(net.literal_count() <= lits);
        let _ = made;
        assert_equivalent(&golden, &net, 5);
    }

    #[test]
    fn divide_global_matches_sop_divide() {
        let p = Polarity::Positive;
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        // f = ab + ac, divisor = b + c -> q = a, r = 0
        let f = vec![vec![(n0, p), (n1, p)], vec![(n0, p), (n2, p)]];
        let d = vec![vec![(n1, p)], vec![(n2, p)]];
        let (q, r) = divide_global(&f, &d);
        assert_eq!(q, vec![vec![(n0, p)]]);
        assert!(r.is_empty());
    }
}
