//! Kernel enumeration for sum-of-products covers.
//!
//! A *kernel* of an SOP `f` is a cube-free quotient `f / c` for some cube
//! `c` (the *co-kernel*) such that the quotient has at least two cubes.
//! Kernels are the algebraic divisors that factoring and extraction
//! search; the enumeration below is the standard recursive algorithm
//! (Brayton–McMullen) over literal indices.

use casyn_netlist::sop::{Cube, Polarity, Sop};

/// A kernel together with the co-kernel cube that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPair {
    /// The co-kernel: `kernel = f / cokernel`.
    pub cokernel: Cube,
    /// The kernel: a cube-free SOP with at least two cubes.
    pub kernel: Sop,
}

/// The largest cube dividing every cube of `f` (the common cube). Returns
/// the universal cube when `f` is empty.
pub fn common_cube(f: &Sop) -> Cube {
    let n = f.num_vars();
    let mut acc: Option<Cube> = None;
    for c in f.cubes() {
        acc = Some(match acc {
            None => c.clone(),
            Some(a) => {
                let mut keep = Cube::one(n);
                for (v, p) in a.literals() {
                    if c.literal(v) == Some(p) {
                        keep.set(v, p);
                    }
                }
                keep
            }
        });
    }
    acc.unwrap_or_else(|| Cube::one(n))
}

/// True when `f` is cube-free (no non-trivial cube divides all its cubes).
pub fn is_cube_free(f: &Sop) -> bool {
    common_cube(f).is_one()
}

/// Literal index used by the enumeration: `2*var + pol`.
fn literal_of_index(idx: usize) -> (usize, Polarity) {
    (idx / 2, if idx.is_multiple_of(2) { Polarity::Positive } else { Polarity::Negative })
}

fn cube_from_literal(num_vars: usize, idx: usize) -> Cube {
    let (v, p) = literal_of_index(idx);
    let mut c = Cube::one(num_vars);
    c.set(v, p);
    c
}

/// Enumerates all kernels of `f`, including `f` itself when it is
/// cube-free with at least two cubes. Duplicate kernels (reachable through
/// different literal orders) are pruned by the standard "smaller literal
/// already processed" test, plus a final structural dedup.
pub fn kernels(f: &Sop) -> Vec<KernelPair> {
    let mut out = Vec::new();
    let cc = common_cube(f);
    let base = if cc.is_one() {
        f.clone()
    } else {
        // normalize to the cube-free part; the common cube joins every co-kernel
        Sop::from_cubes(f.num_vars(), f.cubes().iter().map(|c| c.without(&cc)).collect())
    };
    if base.num_cubes() >= 2 {
        kernel_rec(&base, &cc, 0, &mut out);
        out.push(KernelPair { cokernel: cc, kernel: base });
    }
    dedup(out)
}

fn kernel_rec(g: &Sop, co: &Cube, j: usize, out: &mut Vec<KernelPair>) {
    let n = g.num_vars();
    for idx in j..2 * n {
        let lit = cube_from_literal(n, idx);
        // cubes of g containing this literal
        let with: Vec<&Cube> = g.cubes().iter().filter(|c| lit.contains(c)).collect();
        if with.len() < 2 {
            continue;
        }
        // largest cube dividing all of them
        let sub = Sop::from_cubes(n, with.iter().map(|c| (*c).clone()).collect());
        let c = common_cube(&sub);
        // pruning: if c contains a literal with index < idx, this kernel
        // was already produced from that smaller literal
        let mut skip = false;
        for (v, p) in c.literals() {
            let li = 2 * v + if p == Polarity::Positive { 0 } else { 1 };
            if li < idx {
                skip = true;
                break;
            }
        }
        if skip {
            continue;
        }
        let quotient = Sop::from_cubes(n, with.iter().map(|cu| cu.without(&c)).collect());
        let new_co = co.and(&c).expect("co-kernel cubes cannot clash");
        kernel_rec(&quotient, &new_co, idx + 1, out);
        out.push(KernelPair { cokernel: new_co, kernel: quotient });
    }
}

fn dedup(pairs: Vec<KernelPair>) -> Vec<KernelPair> {
    let mut seen: Vec<KernelPair> = Vec::new();
    for p in pairs {
        let key = canonical(&p.kernel);
        if !seen.iter().any(|q| canonical(&q.kernel) == key && q.cokernel == p.cokernel) {
            seen.push(p);
        }
    }
    seen
}

/// A canonical form of an SOP for structural comparison: the sorted list
/// of sorted literal lists.
pub fn canonical(f: &Sop) -> Vec<Vec<(usize, Polarity)>> {
    let mut cubes: Vec<Vec<(usize, Polarity)>> =
        f.cubes().iter().map(|c| c.literals().collect()).collect();
    for c in &mut cubes {
        c.sort();
    }
    cubes.sort();
    cubes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize, lits: &[(usize, Polarity)]) -> Cube {
        let mut c = Cube::one(n);
        for &(v, p) in lits {
            c.set(v, p);
        }
        c
    }

    const P: Polarity = Polarity::Positive;

    #[test]
    fn common_cube_of_shared_product() {
        // f = abc + abd -> common cube ab
        let f = Sop::from_cubes(
            4,
            vec![cube(4, &[(0, P), (1, P), (2, P)]), cube(4, &[(0, P), (1, P), (3, P)])],
        );
        let cc = common_cube(&f);
        assert_eq!(cc.literal_count(), 2);
        assert_eq!(cc.literal(0), Some(P));
        assert_eq!(cc.literal(1), Some(P));
        assert!(!is_cube_free(&f));
    }

    #[test]
    fn kernels_of_textbook_example() {
        // f = ace + bce + de + g  (De Micheli's example)
        // kernels include: (e, ac+bc+d), (ce, a+b), (1, f itself)
        let f = Sop::from_cubes(
            7,
            vec![
                cube(7, &[(0, P), (2, P), (4, P)]),
                cube(7, &[(1, P), (2, P), (4, P)]),
                cube(7, &[(3, P), (4, P)]),
                cube(7, &[(6, P)]),
            ],
        );
        let ks = kernels(&f);
        // kernel a+b with cokernel ce
        let ab = Sop::from_cubes(7, vec![cube(7, &[(0, P)]), cube(7, &[(1, P)])]);
        assert!(
            ks.iter()
                .any(|k| canonical(&k.kernel) == canonical(&ab) && k.cokernel.literal_count() == 2),
            "missing kernel a+b: {ks:?}"
        );
        // f itself is cube-free, so it is a kernel with co-kernel 1
        assert!(ks.iter().any(|k| k.cokernel.is_one() && k.kernel.num_cubes() == 4));
        // every kernel is cube-free with >= 2 cubes
        for k in &ks {
            assert!(is_cube_free(&k.kernel), "kernel not cube-free: {}", k.kernel);
            assert!(k.kernel.num_cubes() >= 2);
        }
    }

    #[test]
    fn kernels_reconstruct_function() {
        // f = ab + ac + d; check f == cokernel*kernel + remainder via division
        let f = Sop::from_cubes(
            4,
            vec![cube(4, &[(0, P), (1, P)]), cube(4, &[(0, P), (2, P)]), cube(4, &[(3, P)])],
        );
        for k in kernels(&f) {
            let (q, r) = f.divide(&k.kernel);
            // q*kernel + r must equal f on all assignments
            for m in 0..16u32 {
                let asg: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
                let lhs = f.eval(&asg);
                let rhs = (q.eval(&asg) && k.kernel.eval(&asg)) || r.eval(&asg);
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = Sop::from_cubes(3, vec![cube(3, &[(0, P), (1, P)])]);
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn non_cube_free_function_normalizes() {
        // f = ab + ac = a(b + c): kernel (b+c) with cokernel a
        let f = Sop::from_cubes(3, vec![cube(3, &[(0, P), (1, P)]), cube(3, &[(0, P), (2, P)])]);
        let ks = kernels(&f);
        let bc = Sop::from_cubes(3, vec![cube(3, &[(1, P)]), cube(3, &[(2, P)])]);
        assert!(ks
            .iter()
            .any(|k| canonical(&k.kernel) == canonical(&bc) && k.cokernel.literal(0) == Some(P)));
    }

    #[test]
    fn negative_literals_participate() {
        // f = !a b + !a c: kernel b+c, cokernel !a
        let n = Polarity::Negative;
        let f = Sop::from_cubes(3, vec![cube(3, &[(0, n), (1, P)]), cube(3, &[(0, n), (2, P)])]);
        let ks = kernels(&f);
        assert!(ks.iter().any(|k| k.cokernel.literal(0) == Some(n)));
    }
}
