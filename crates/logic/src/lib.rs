//! Technology-independent logic optimization — the "SIS substitute".
//!
//! The paper's flows start from a technology-independent netlist produced
//! by SIS. This crate rebuilds the pieces of that phase the experiments
//! depend on:
//!
//! * [`kernels`] — kernel enumeration of sum-of-products covers (the
//!   classic recursive algorithm from multilevel logic synthesis).
//! * [`extract`] — greedy common-cube and kernel extraction across the
//!   network. Extraction minimizes literals by *sharing* logic, which is
//!   exactly the mechanism the paper blames for congestion: "a gate of
//!   small size shared between several functions may increase the wiring
//!   area to an extent that far exceeds the area saved".
//! * [`simplify`] — light espresso-style two-level cleanup (containment,
//!   distance-1 merging, literal expansion).
//! * [`decompose`] — decomposition of an optimized network into the
//!   NAND2/INV subject graph consumed by technology mapping.
//!
//! # Example
//!
//! ```
//! use casyn_netlist::bench::{random_pla, PlaGenConfig};
//! use casyn_logic::{decompose, optimize, OptimizeOptions};
//!
//! let pla = random_pla(&PlaGenConfig { terms: 16, ..Default::default() });
//! let mut net = pla.to_network();
//! let before = net.literal_count();
//! optimize(&mut net, &OptimizeOptions::default());
//! assert!(net.literal_count() <= before);
//! let dec = decompose(&net);
//! assert!(dec.graph.num_gates() > 0);
//! ```

pub mod decompose;
pub mod extract;
pub mod kernels;
pub mod simplify;

pub use decompose::{decompose, Decomposed};
pub use extract::{extract_cubes, extract_kernels, optimize, OptimizeOptions};
pub use kernels::{kernels, KernelPair};
pub use simplify::{simplify_network, simplify_sop, SimplifyOptions};
