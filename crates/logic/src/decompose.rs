//! Decomposition of a Boolean network into the NAND2/INV subject graph.
//!
//! Every logic node's SOP is decomposed two-level-style: each cube becomes
//! a balanced NAND tree over its literals (an inverted AND), and the node
//! output is the NAND of the cube trees — NAND-NAND being AND-OR. Balanced
//! trees keep the subject graph's depth logarithmic in the cube/literal
//! counts, and structural hashing shares input inverters and identical
//! subtrees, mirroring how SIS's `tech_decomp -a 2 -o 2` prepares a
//! network for mapping.

use casyn_netlist::network::{Network, NodeFunction};
use casyn_netlist::sop::Polarity;
use casyn_netlist::subject::{GateId, SubjectGraph};
use casyn_obs as obs;

/// The result of decomposition: the subject graph plus the mapping from
/// network nodes to the gates computing them.
#[derive(Debug, Clone)]
pub struct Decomposed {
    /// The NAND2/INV subject graph.
    pub graph: SubjectGraph,
    /// `gate_of[node.index()]` is the gate computing that network node.
    pub gate_of: Vec<GateId>,
}

/// Balanced AND of `xs` (NAND2 + INV pairs). `xs` must be non-empty.
fn and_of(g: &mut SubjectGraph, xs: &[GateId]) -> GateId {
    match xs {
        [x] => *x,
        _ => {
            let (l, r) = xs.split_at(xs.len() / 2);
            let a = and_of(g, l);
            let b = and_of(g, r);
            let n = g.add_nand2(a, b);
            g.add_inv(n)
        }
    }
}

/// Balanced NAND of `xs`: `!(x1 & x2 & … & xk)`. For a single input this
/// is an inverter.
fn nand_of(g: &mut SubjectGraph, xs: &[GateId]) -> GateId {
    match xs {
        [x] => g.add_inv(*x),
        _ => {
            let (l, r) = xs.split_at(xs.len() / 2);
            let a = and_of(g, l);
            let b = and_of(g, r);
            g.add_nand2(a, b)
        }
    }
}

/// Decomposes `net` into a subject graph of two-input NANDs and
/// inverters. Constant-zero nodes (empty SOPs) and constant-one nodes are
/// built from `x & !x` / `!(x & !x)` over their first available input.
///
/// # Panics
///
/// Panics if the network has a combinational cycle, or if a constant node
/// exists in a network with no primary inputs.
pub fn decompose(net: &Network) -> Decomposed {
    let mut g = SubjectGraph::new();
    let mut gate_of: Vec<Option<GateId>> = vec![None; net.num_nodes()];
    // inputs first, in declaration order
    for id in net.inputs() {
        if let NodeFunction::Input(name) = net.node(*id) {
            gate_of[id.index()] = Some(g.add_input(name.clone()));
        }
    }
    for id in net.topological_order() {
        if gate_of[id.index()].is_some() {
            continue;
        }
        let NodeFunction::Logic { fanins, sop } = net.node(id) else {
            unreachable!("inputs already handled");
        };
        let lit_gate = |g: &mut SubjectGraph, gate_of: &[Option<GateId>], v: usize, p: Polarity| {
            let base = gate_of[fanins[v].index()].expect("fanin decomposed (topo order)");
            match p {
                Polarity::Positive => base,
                Polarity::Negative => g.add_inv(base),
            }
        };
        let gate = if sop.is_zero() {
            let x = constant_seed(net, &gate_of);
            let nx = g.add_inv(x);
            let n = g.add_nand2(x, nx); // constant 1
            g.add_inv(n) // constant 0
        } else {
            // one NAND tree per cube (inverted product), then NAND of those
            let mut cube_gates = Vec::with_capacity(sop.num_cubes());
            for cube in sop.cubes() {
                if cube.is_one() {
                    // constant-one cube: the whole node is constant 1. The
                    // inverted product of a constant-one cube is constant 0,
                    // i.e. x & !x.
                    let x = constant_seed(net, &gate_of);
                    let nx = g.add_inv(x);
                    let one = g.add_nand2(x, nx);
                    cube_gates.clear();
                    cube_gates.push(g.add_inv(one));
                    break;
                }
                let lits: Vec<GateId> =
                    cube.literals().map(|(v, p)| lit_gate(&mut g, &gate_of, v, p)).collect();
                cube_gates.push(nand_of(&mut g, &lits));
            }
            // output = OR of products = NAND of the inverted products
            // (cube_gates are already the NANDs), i.e. NAND-NAND:
            // !(prod1' & prod2' & …) = prod1 + prod2 + …
            let mut inv_products = Vec::with_capacity(cube_gates.len());
            for cg in &cube_gates {
                inv_products.push(*cg);
            }
            if inv_products.len() == 1 {
                // single cube: output = product = INV(nand tree)
                g.add_inv(inv_products[0])
            } else {
                nand_of_raw(&mut g, &inv_products)
            }
        };
        gate_of[id.index()] = Some(gate);
    }
    let mut graph = g;
    for (name, id) in net.outputs() {
        graph.add_output(name.clone(), gate_of[id.index()].expect("output decomposed"));
    }
    let gate_of = gate_of.into_iter().map(|o| o.expect("all nodes decomposed")).collect();
    if obs::enabled() {
        obs::counter_add("logic.decomposed_nodes", net.num_nodes() as u64);
        obs::counter_add("logic.subject_gates", graph.num_gates() as u64);
    }
    obs::log::debug(&format!(
        "decompose: {} network nodes -> {} base gates",
        net.num_nodes(),
        graph.num_gates()
    ));
    Decomposed { graph, gate_of }
}

/// NAND of already-complemented inputs, without the single-input inverter
/// special case collapsing (`nand_of` of one element inverts; here one
/// element must invert too, so this only differs in intent).
fn nand_of_raw(g: &mut SubjectGraph, xs: &[GateId]) -> GateId {
    nand_of(g, xs)
}

fn constant_seed(net: &Network, gate_of: &[Option<GateId>]) -> GateId {
    net.inputs()
        .first()
        .and_then(|id| gate_of[id.index()])
        .expect("constant node requires at least one primary input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_network, random_pla, NetGenConfig, PlaGenConfig};
    use casyn_netlist::sop::{Cube, Sop};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_graph_equivalent(net: &Network, dec: &Decomposed, seed: u64) {
        let n = net.inputs().len();
        let trials: Vec<Vec<bool>> = if n <= 10 {
            (0..(1u64 << n)).map(|m| (0..n).map(|i| m >> i & 1 == 1).collect()).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| (0..n).map(|_| rng.gen()).collect()).collect()
        };
        for asg in trials {
            assert_eq!(
                net.simulate_outputs(&asg),
                dec.graph.simulate_outputs(&asg),
                "mismatch at {asg:?}"
            );
        }
    }

    #[test]
    fn decompose_small_pla() {
        let pla = random_pla(&PlaGenConfig {
            inputs: 6,
            outputs: 3,
            terms: 10,
            min_literals: 2,
            max_literals: 4,
            mean_outputs_per_term: 1.4,
            seed: 11,
        });
        let net = pla.to_network();
        let dec = decompose(&net);
        assert_graph_equivalent(&net, &dec, 0);
        assert!(dec.graph.num_gates() > 0);
    }

    #[test]
    fn decompose_random_multilevel() {
        let net = random_network(&NetGenConfig {
            inputs: 8,
            outputs: 6,
            nodes: 40,
            max_fanins: 4,
            max_cubes: 3,
            locality_window: 16,
            seed: 3,
        });
        let dec = decompose(&net);
        assert_graph_equivalent(&net, &dec, 1);
    }

    #[test]
    fn decompose_after_optimization_is_equivalent() {
        let pla = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 20,
            min_literals: 3,
            max_literals: 5,
            mean_outputs_per_term: 1.5,
            seed: 5,
        });
        let golden = pla.to_network();
        let mut net = golden.clone();
        crate::optimize(&mut net, &crate::OptimizeOptions::default());
        let dec = decompose(&net);
        assert_graph_equivalent(&golden, &dec, 2);
    }

    #[test]
    fn constant_zero_node() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let zero = net.add_node(vec![a], Sop::zero(1));
        net.add_output("z", zero);
        let dec = decompose(&net);
        assert_eq!(dec.graph.simulate_outputs(&[false]), vec![false]);
        assert_eq!(dec.graph.simulate_outputs(&[true]), vec![false]);
    }

    #[test]
    fn constant_one_cube() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let one = net.add_node(vec![a], Sop::from_cube(Cube::one(1)));
        net.add_output("o", one);
        let dec = decompose(&net);
        assert_eq!(dec.graph.simulate_outputs(&[false]), vec![true]);
        assert_eq!(dec.graph.simulate_outputs(&[true]), vec![true]);
    }

    #[test]
    fn depth_is_logarithmic_for_wide_or() {
        // 64-term OR should decompose to depth O(log) not O(n)
        let mut net = Network::new();
        let pis: Vec<_> = (0..64).map(|i| net.add_input(format!("i{i}"))).collect();
        let k = pis.len();
        let cubes: Vec<Cube> = (0..k)
            .map(|i| {
                let mut c = Cube::one(k);
                c.set(i, Polarity::Positive);
                c
            })
            .collect();
        let or = net.add_node(pis, Sop::from_cubes(k, cubes));
        net.add_output("o", or);
        let dec = decompose(&net);
        assert!(dec.graph.depth() <= 16, "depth {} too large", dec.graph.depth());
    }

    #[test]
    fn structural_hashing_shares_input_inverters() {
        // two cubes using !a: the inverter must be shared
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let mut c0 = Cube::one(3);
        c0.set(0, Polarity::Negative);
        c0.set(1, Polarity::Positive);
        let mut c1 = Cube::one(3);
        c1.set(0, Polarity::Negative);
        c1.set(2, Polarity::Positive);
        let f = net.add_node(vec![a, b, c], Sop::from_cubes(3, vec![c0, c1]));
        net.add_output("f", f);
        let dec = decompose(&net);
        let inv_count = dec
            .graph
            .ids()
            .filter(|id| {
                dec.graph.kind(*id) == casyn_netlist::subject::BaseKind::Inv
                    && dec.graph.fanins(*id)[0]
                        == dec.graph.inputs().iter().find(|(n, _)| n == "a").unwrap().1
            })
            .count();
        assert_eq!(inv_count, 1, "!a inverter must be hashed and shared");
    }
}
