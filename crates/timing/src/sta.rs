//! Levelized arrival-time propagation and critical-path extraction.

use crate::model::TimingConfig;
use casyn_library::Library;
use casyn_netlist::mapped::{MappedNetlist, SignalRef};
use casyn_obs as obs;
use std::fmt;

/// One point on a reported path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathPoint {
    /// A primary input, by name.
    Input(String),
    /// A cell instance: `(index, master name)`.
    Cell(u32, String),
    /// A primary output, by name.
    Output(String),
}

impl fmt::Display for PathPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathPoint::Input(n) => write!(f, "{n}(in)"),
            PathPoint::Cell(i, n) => write!(f, "u{i}:{n}"),
            PathPoint::Output(n) => write!(f, "{n}(out)"),
        }
    }
}

/// The result of static timing analysis.
#[derive(Debug, Clone)]
pub struct StaResult {
    /// Arrival time at every primary output, in netlist order (ns).
    pub po_arrival: Vec<f64>,
    /// Arrival time at every cell output (ns).
    pub cell_arrival: Vec<f64>,
    /// Index of the latest primary output.
    pub critical_po: usize,
    /// The critical path from a primary input to `critical_po`.
    pub critical_path: Vec<PathPoint>,
    /// For every *sequential* cell (flip-flop): the data arrival at its D
    /// pin plus its setup requirement — the clock period this register
    /// path demands. Empty for purely combinational designs.
    pub reg_setup_arrival: Vec<f64>,
}

impl StaResult {
    /// The critical-path arrival time (ns).
    pub fn critical_arrival(&self) -> f64 {
        self.po_arrival[self.critical_po]
    }

    /// The launching input and capturing output of the critical path, in
    /// the paper's report style ("iJ0J(in) oJ23J(out)").
    pub fn critical_endpoints(&self) -> String {
        let start = self.critical_path.first().map_or_else(|| "?".to_string(), |p| p.to_string());
        let end = self.critical_path.last().map_or_else(|| "?".to_string(), |p| p.to_string());
        format!("{start} {end}")
    }

    /// Arrival at a named primary output (the "same path as K = 0"
    /// comparison of Tables 3/5 compares the capture endpoint across
    /// netlists).
    pub fn arrival_of_output(&self, nl: &MappedNetlist, name: &str) -> Option<f64> {
        nl.outputs().iter().position(|(n, _)| n == name).map(|i| self.po_arrival[i])
    }

    /// Slack of every primary output against a required time (a clock
    /// period for this combinational block).
    pub fn slacks(&self, required: f64) -> Vec<f64> {
        self.po_arrival.iter().map(|a| required - a).collect()
    }

    /// Worst negative slack: the most violated endpoint's slack, or 0
    /// when timing is met everywhere.
    pub fn wns(&self, required: f64) -> f64 {
        self.slacks(required).into_iter().fold(0.0f64, f64::min)
    }

    /// Total negative slack: the sum of all endpoint violations (≤ 0).
    pub fn tns(&self, required: f64) -> f64 {
        self.slacks(required).into_iter().filter(|s| *s < 0.0).sum()
    }

    /// The minimum clock period the design supports: the worst of every
    /// register setup path and every primary-output path. Flip-flop
    /// outputs launch at their clock-to-Q delay, so register-to-register
    /// paths are fully covered.
    pub fn min_clock_period(&self) -> f64 {
        let reg = self.reg_setup_arrival.iter().copied().fold(0.0f64, f64::max);
        let po = self.po_arrival.iter().copied().fold(0.0f64, f64::max);
        reg.max(po)
    }
}

/// Runs STA on a placed mapped netlist. Net lengths come from the star
/// (driver-to-sink Manhattan) model over the current cell/port positions,
/// so the analysis reflects the placement the router saw.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle or references a
/// cell master missing from `lib`.
///
/// # Example
///
/// ```
/// use casyn_library::corelib018;
/// use casyn_netlist::mapped::{MappedCell, MappedNetlist};
/// use casyn_netlist::Point;
/// use casyn_timing::{analyze, TimingConfig};
///
/// let lib = corelib018();
/// let iv = lib.find("IV").unwrap();
/// let master = lib.cell(iv);
/// let mut nl = MappedNetlist::new();
/// let a = nl.add_input("a");
/// let y = nl.add_cell(MappedCell {
///     lib_cell: iv,
///     name: master.name.clone(),
///     inputs: vec![a],
///     area: master.area,
///     width: master.width,
///     pos: Point::new(50.0, 0.0),
///     source_tree: None,
/// });
/// nl.add_output("y", y);
/// let sta = analyze(&nl, &lib, &TimingConfig::default());
/// assert!(sta.critical_arrival() > 0.0);
/// ```
pub fn analyze(nl: &MappedNetlist, lib: &Library, cfg: &TimingConfig) -> StaResult {
    analyze_inner(nl, lib, cfg, None)
}

/// STA with measured routed net lengths (one per net, in
/// [`MappedNetlist::nets`] order — the router's
/// `RouteResult::net_wirelength`). Each net's capacitive load uses its
/// routed length, and every driver-to-sink Elmore distance is scaled by
/// that net's own detour ratio, so congested nets pay their meandering
/// individually.
///
/// # Panics
///
/// Panics on a combinational cycle, a missing master, or when
/// `routed_lengths.len()` differs from the net count.
pub fn analyze_routed(
    nl: &MappedNetlist,
    lib: &Library,
    cfg: &TimingConfig,
    routed_lengths: &[f64],
) -> StaResult {
    analyze_inner(nl, lib, cfg, Some(routed_lengths))
}

fn analyze_inner(
    nl: &MappedNetlist,
    lib: &Library,
    cfg: &TimingConfig,
    routed_lengths: Option<&[f64]>,
) -> StaResult {
    let n = nl.num_cells();
    // sequential cells launch fresh paths, so their input edges are cut
    // from the timing graph (this also breaks register loops)
    let order = nl.topological_order_cut(|c| lib.cell(nl.cells()[c].lib_cell).sequential);
    // per-driver total net length (star model) and sink pin capacitance
    let nets = nl.nets();
    if let Some(rl) = routed_lengths {
        assert_eq!(rl.len(), nets.len(), "one routed length per net required");
    }
    let mut net_len = vec![0.0f64; n];
    let mut net_pin_cap = vec![0.0f64; n];
    // per-driver detour ratio: routed length / star length (>= 1)
    let mut net_detour = vec![1.0f64; n];
    let mut pi_net_len = vec![0.0f64; nl.input_names().len()];
    let mut pi_net_cap = vec![0.0f64; nl.input_names().len()];
    let mut pi_detour = vec![1.0f64; nl.input_names().len()];
    for (ni, net) in nets.iter().enumerate() {
        let dpos = nl.signal_pos(net.driver);
        let mut len = 0.0;
        let mut cap = 0.0;
        for (c, _) in &net.sinks {
            let cell = &nl.cells()[*c as usize];
            len += dpos.manhattan(cell.pos);
            cap += lib.cell(cell.lib_cell).pin_cap;
        }
        for o in &net.po_sinks {
            len += dpos.manhattan(nl.output_pos(*o));
            cap += cfg.output_pin_cap;
        }
        let (eff_len, detour) = match routed_lengths {
            Some(rl) if rl[ni] > 0.0 => (rl[ni].max(len), (rl[ni] / len.max(1e-9)).max(1.0)),
            _ => (len, 1.0),
        };
        match net.driver {
            SignalRef::Cell(c) => {
                net_len[c as usize] = eff_len;
                net_pin_cap[c as usize] = cap;
                net_detour[c as usize] = detour;
            }
            SignalRef::Pi(i) => {
                pi_net_len[i as usize] = eff_len;
                pi_net_cap[i as usize] = cap;
                pi_detour[i as usize] = detour;
            }
        }
    }
    // arrival at a signal source output pin
    let mut cell_arrival = vec![0.0f64; n];
    let mut cell_crit_in: Vec<Option<SignalRef>> = vec![None; n];
    // PI "arrival" at the pad output: pad drive into its net load
    let pi_arrival: Vec<f64> = (0..nl.input_names().len())
        .map(|i| cfg.input_drive_res * cfg.net_load(pi_net_len[i], pi_net_cap[i]))
        .collect();
    let mut reg_setup_arrival: Vec<f64> = Vec::new();
    let mut arrival_propagations = 0u64;
    for ci in order {
        let cell = &nl.cells()[ci];
        let master = lib.cell(cell.lib_cell);
        let mut worst = 0.0f64;
        let mut worst_src = None;
        arrival_propagations += cell.inputs.len() as u64;
        for src in &cell.inputs {
            let src_pos = nl.signal_pos(*src);
            let detour = match src {
                SignalRef::Pi(i) => pi_detour[*i as usize],
                SignalRef::Cell(c) => net_detour[*c as usize],
            };
            let dist = src_pos.manhattan(cell.pos) * detour;
            let at = match src {
                SignalRef::Pi(i) => pi_arrival[*i as usize],
                SignalRef::Cell(c) => cell_arrival[*c as usize],
            } + cfg.wire_delay(dist, master.pin_cap);
            if worst_src.is_none() || at > worst {
                worst = at;
                worst_src = Some(*src);
            }
        }
        let load = cfg.net_load(net_len[ci], net_pin_cap[ci]);
        if master.sequential {
            // a register ends the incoming path (setup) and launches a
            // fresh one at its clock-to-Q delay
            reg_setup_arrival.push(worst + master.setup);
            cell_arrival[ci] = master.clk_to_q + master.drive_res * load;
            cell_crit_in[ci] = None;
        } else {
            cell_arrival[ci] = worst + master.intrinsic + master.drive_res * load;
            cell_crit_in[ci] = worst_src;
        }
    }
    // primary outputs
    let mut po_arrival = Vec::with_capacity(nl.outputs().len());
    for (oi, (_, src)) in nl.outputs().iter().enumerate() {
        let src_pos = nl.signal_pos(*src);
        let detour = match src {
            SignalRef::Pi(i) => pi_detour[*i as usize],
            SignalRef::Cell(c) => net_detour[*c as usize],
        };
        let dist = src_pos.manhattan(nl.output_pos(oi as u32)) * detour;
        let at = match src {
            SignalRef::Pi(i) => pi_arrival[*i as usize],
            SignalRef::Cell(c) => cell_arrival[*c as usize],
        } + cfg.wire_delay(dist, cfg.output_pin_cap);
        po_arrival.push(at);
    }
    if obs::enabled() {
        obs::counter_add("sta.arrival_propagations", arrival_propagations);
        obs::counter_add("sta.endpoints", (po_arrival.len() + reg_setup_arrival.len()) as u64);
    }
    let critical_po = po_arrival
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // backtrack the critical path
    let mut critical_path = Vec::new();
    if !nl.outputs().is_empty() {
        let (name, mut src) = {
            let (n, s) = &nl.outputs()[critical_po];
            (n.clone(), *s)
        };
        critical_path.push(PathPoint::Output(name));
        loop {
            match src {
                SignalRef::Pi(i) => {
                    critical_path.push(PathPoint::Input(nl.input_names()[i as usize].clone()));
                    break;
                }
                SignalRef::Cell(c) => {
                    critical_path.push(PathPoint::Cell(c, nl.cells()[c as usize].name.clone()));
                    match cell_crit_in[c as usize] {
                        Some(next) => src = next,
                        None => break,
                    }
                }
            }
        }
        critical_path.reverse();
    }
    StaResult { po_arrival, cell_arrival, critical_po, critical_path, reg_setup_arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::corelib018;
    use casyn_netlist::mapped::MappedCell;
    use casyn_netlist::Point;

    fn cell(lib: &Library, name: &str, inputs: Vec<SignalRef>, pos: Point) -> MappedCell {
        let id = lib.find(name).unwrap();
        let c = lib.cell(id);
        MappedCell {
            lib_cell: id,
            name: c.name.clone(),
            inputs,
            area: c.area,
            width: c.width,
            pos,
            source_tree: None,
        }
    }

    /// A two-inverter chain: arrival must accumulate monotonically.
    #[test]
    fn chain_arrival_monotone() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("iJ0J");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        let c0 = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(50.0, 0.0)));
        let c1 = nl.add_cell(cell(&lib, "IV", vec![c0], Point::new(100.0, 0.0)));
        nl.add_output("oJ0J", c1);
        nl.set_output_pos(0, Point::new(150.0, 0.0));
        let sta = analyze(&nl, &lib, &cfg);
        assert!(sta.cell_arrival[0] > 0.0);
        assert!(sta.cell_arrival[1] > sta.cell_arrival[0]);
        assert!(sta.critical_arrival() > sta.cell_arrival[1]);
        assert_eq!(sta.critical_endpoints(), "iJ0J(in) oJ0J(out)");
        assert_eq!(sta.critical_path.len(), 4); // in, 2 cells, out
    }

    /// Longer wires must mean later arrival (same structure).
    #[test]
    fn wirelength_increases_delay() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let build = |span: f64| {
            let mut nl = MappedNetlist::new();
            let a = nl.add_input("i");
            nl.set_input_pos(0, Point::new(0.0, 0.0));
            let c0 = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(span, 0.0)));
            nl.add_output("o", c0);
            nl.set_output_pos(0, Point::new(2.0 * span, 0.0));
            analyze(&nl, &lib, &cfg).critical_arrival()
        };
        assert!(build(500.0) > build(50.0));
    }

    /// The critical PO is the latest one.
    #[test]
    fn critical_po_is_max() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("i");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        let near = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(10.0, 0.0)));
        let far0 = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(400.0, 0.0)));
        let far1 = nl.add_cell(cell(&lib, "IV", vec![far0], Point::new(800.0, 0.0)));
        nl.add_output("near", near);
        nl.set_output_pos(0, Point::new(12.0, 0.0));
        nl.add_output("far", far1);
        nl.set_output_pos(1, Point::new(810.0, 0.0));
        let sta = analyze(&nl, &lib, &cfg);
        assert_eq!(sta.critical_po, 1);
        assert!(sta.po_arrival[1] > sta.po_arrival[0]);
        assert_eq!(sta.arrival_of_output(&nl, "near"), Some(sta.po_arrival[0]));
        assert_eq!(sta.arrival_of_output(&nl, "nope"), None);
    }

    /// Fanout load slows the driver: a cell driving 4 sinks is slower
    /// than the same cell driving 1.
    #[test]
    fn fanout_load_slows_driver() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let build = |fanout: usize| {
            let mut nl = MappedNetlist::new();
            let a = nl.add_input("i");
            nl.set_input_pos(0, Point::new(0.0, 0.0));
            let drv = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(10.0, 0.0)));
            for k in 0..fanout {
                let s = nl.add_cell(cell(&lib, "IV", vec![drv], Point::new(20.0 + k as f64, 0.0)));
                nl.add_output(format!("o{k}"), s);
                nl.set_output_pos(k as u32, Point::new(30.0, 0.0));
            }
            let sta = analyze(&nl, &lib, &cfg);
            sta.cell_arrival[0]
        };
        assert!(build(4) > build(1));
    }

    #[test]
    fn slack_wns_tns() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("i");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        let near = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(10.0, 0.0)));
        let far0 = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(900.0, 0.0)));
        nl.add_output("near", near);
        nl.set_output_pos(0, Point::new(12.0, 0.0));
        nl.add_output("far", far0);
        nl.set_output_pos(1, Point::new(910.0, 0.0));
        let sta = analyze(&nl, &lib, &cfg);
        let req = (sta.po_arrival[0] + sta.po_arrival[1]) / 2.0;
        let slacks = sta.slacks(req);
        assert!(slacks[0] > 0.0 && slacks[1] < 0.0);
        assert!((sta.wns(req) - slacks[1]).abs() < 1e-12);
        assert!((sta.tns(req) - slacks[1]).abs() < 1e-12);
        // met everywhere: wns = 0, tns = 0
        let loose = sta.po_arrival[1] + 1.0;
        assert_eq!(sta.wns(loose), 0.0);
        assert_eq!(sta.tns(loose), 0.0);
    }

    /// Routed lengths above the star estimate must slow the design;
    /// shorter-than-star routed reports are clamped to the star model.
    #[test]
    fn routed_lengths_slow_congested_nets() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("i");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        let c0 = nl.add_cell(cell(&lib, "IV", vec![a], Point::new(100.0, 0.0)));
        nl.add_output("o", c0);
        nl.set_output_pos(0, Point::new(200.0, 0.0));
        let base = analyze(&nl, &lib, &cfg);
        // nets order: Pi(0) then Cell(0)
        let nets = nl.nets();
        assert_eq!(nets.len(), 2);
        let detoured = analyze_routed(&nl, &lib, &cfg, &[400.0, 400.0]);
        assert!(detoured.critical_arrival() > base.critical_arrival());
        let clamped = analyze_routed(&nl, &lib, &cfg, &[1.0, 1.0]);
        assert!((clamped.critical_arrival() - base.critical_arrival()).abs() < 1e-9);
    }

    #[test]
    fn direct_pi_to_po_connection() {
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("i");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        nl.add_output("o", a);
        nl.set_output_pos(0, Point::new(100.0, 0.0));
        let sta = analyze(&nl, &lib, &cfg);
        assert!(sta.critical_arrival() > 0.0);
        assert_eq!(sta.critical_path.len(), 2);
    }
}
