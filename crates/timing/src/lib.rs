//! Static timing analysis over placed-and-routed mapped netlists.
//!
//! The delay model is the classic linear one the DATE-era flows used:
//! gate delay is `intrinsic + drive_res × load` with the load being sink
//! pin capacitances plus distributed wire capacitance, and interconnect
//! adds an Elmore term per sink (`R_wire × (C_wire/2 + C_pin)`). The
//! arrival-time ordering between two mappings of the same circuit — all
//! the paper's Tables 3 and 5 claim — is preserved by any consistent
//! RC-per-micron calibration.
//!
//! * [`model`] — the RC and delay parameters.
//! * [`sta`] — levelized arrival propagation and critical-path extraction.
//! * [`wireload`] — fanout-based wireload estimation, the pre-layout
//!   technique whose inaccuracy the paper's Section 2 documents.

pub mod model;
pub mod sta;
pub mod wireload;

pub use model::TimingConfig;
pub use sta::{analyze, analyze_routed, PathPoint, StaResult};
pub use wireload::{analyze_wireload, wireload_error, WireloadModel};
