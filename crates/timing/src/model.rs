//! RC and delay-model parameters.

/// Interconnect and boundary-condition parameters for STA. Units: ns, pF,
/// µm; resistances in kΩ (so kΩ × pF = ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Wire resistance per micrometre (kΩ/µm). 0.18 µm metal is around
    /// 0.08 Ω/sq at minimum width.
    pub wire_res_per_um: f64,
    /// Wire capacitance per micrometre (pF/µm); ~0.2 fF/µm in a 3LM
    /// 0.18 µm stack, where wire capacitance dominates gate capacitance —
    /// the DSM regime motivating the paper.
    pub wire_cap_per_um: f64,
    /// Drive resistance of the primary-input pads (kΩ).
    pub input_drive_res: f64,
    /// Load presented by a primary-output pad (pF).
    pub output_pin_cap: f64,
    /// Multiplier on every point-to-point wire length, capturing the
    /// routing detours around congested regions ("long wiring detours and
    /// increased overall net wirelength and delay"). Flows set it to the
    /// routed-wirelength / star-wirelength ratio of the design; 1.0 means
    /// ideal shortest-path routing.
    pub detour_factor: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            wire_res_per_um: 8.0e-5,
            wire_cap_per_um: 2.0e-4,
            input_drive_res: 1.2,
            output_pin_cap: 0.012,
            detour_factor: 1.0,
        }
    }
}

impl TimingConfig {
    /// Elmore wire delay to one sink: the driver-to-sink resistance sees
    /// half the local wire capacitance plus the sink pin load.
    pub fn wire_delay(&self, dist_um: f64, sink_cap: f64) -> f64 {
        let d = dist_um * self.detour_factor;
        let r = self.wire_res_per_um * d;
        let c = self.wire_cap_per_um * d;
        r * (c / 2.0 + sink_cap)
    }

    /// Capacitive load a net of total length `len_um` with the given pin
    /// loads presents to its driver.
    pub fn net_load(&self, len_um: f64, pin_caps: f64) -> f64 {
        self.wire_cap_per_um * len_um * self.detour_factor + pin_caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_delay_grows_quadratically() {
        let cfg = TimingConfig::default();
        let d1 = cfg.wire_delay(100.0, 0.0);
        let d2 = cfg.wire_delay(200.0, 0.0);
        assert!((d2 / d1 - 4.0).abs() < 1e-9, "pure-wire Elmore is quadratic in length");
    }

    #[test]
    fn net_load_combines_wire_and_pins() {
        let cfg = TimingConfig::default();
        let load = cfg.net_load(1000.0, 0.01);
        assert!((load - (0.2 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn detour_factor_scales_wire_terms() {
        let base = TimingConfig::default();
        let detoured = TimingConfig { detour_factor: 2.0, ..base };
        assert!(detoured.wire_delay(100.0, 0.01) > base.wire_delay(100.0, 0.01));
        let load_base = base.net_load(100.0, 0.01);
        let load_det = detoured.net_load(100.0, 0.01);
        assert!((load_det - 0.01 - 2.0 * (load_base - 0.01)).abs() < 1e-12);
    }

    #[test]
    fn zero_length_wire_is_free() {
        let cfg = TimingConfig::default();
        assert_eq!(cfg.wire_delay(0.0, 0.05), 0.0);
        assert_eq!(cfg.net_load(0.0, 0.05), 0.05);
    }
}
