//! Fanout-based wireload models — the pre-layout estimation technique
//! whose inaccuracy motivates the paper.
//!
//! A [`WireloadModel`] predicts a net's capacitance and resistance from
//! its fanout count alone, the way 1990s synthesis flows did before any
//! placement exists. [`analyze_wireload`] runs the same levelized STA as
//! [`crate::sta::analyze`] but with wireload-predicted parasitics, so the
//! two can be compared net-by-net and path-by-path — reproducing the
//! paper's Section 2 observation (after Gopalakrishnan et al.) that
//! "delay estimation based on fanout and design legacy statistics can be
//! highly inaccurate".

use crate::model::TimingConfig;
use crate::sta::StaResult;
use casyn_library::Library;
use casyn_netlist::mapped::{MappedNetlist, SignalRef};

/// A fanout-indexed wireload table, with linear extrapolation past the
/// last entry — the format of Synopsys `.lib` wireload tables.
#[derive(Debug, Clone, PartialEq)]
pub struct WireloadModel {
    /// `length_um[f]` is the predicted net length for fanout `f + 1`.
    pub length_um: Vec<f64>,
    /// Extra predicted length per fanout beyond the table.
    pub slope_um: f64,
}

impl WireloadModel {
    /// A table in the spirit of the 0.18 µm generic libraries.
    pub fn generic_018() -> Self {
        WireloadModel {
            length_um: vec![14.0, 29.0, 45.0, 62.0, 81.0, 100.0, 121.0, 142.0],
            slope_um: 22.0,
        }
    }

    /// Builds a model *calibrated to a design*: the mean placed net
    /// length per fanout class. This is the "design legacy statistics"
    /// variant — accurate on average for the design family it was
    /// measured on, and still wrong net-by-net.
    pub fn calibrate(nl: &MappedNetlist) -> Self {
        let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); 9];
        for net in nl.nets() {
            let fanout = net.sinks.len() + net.po_sinks.len();
            if fanout == 0 {
                continue;
            }
            let d = nl.signal_pos(net.driver);
            let mut len = 0.0;
            for (c, _) in &net.sinks {
                len += d.manhattan(nl.cells()[*c as usize].pos);
            }
            for o in &net.po_sinks {
                len += d.manhattan(nl.output_pos(*o));
            }
            let slot = fanout.min(8) - 1;
            sums[slot].0 += len;
            sums[slot].1 += 1;
        }
        let mut length_um = Vec::with_capacity(8);
        let mut last = 10.0;
        for (total, n) in &sums[..8] {
            let v = if *n > 0 { total / *n as f64 } else { last * 1.5 };
            length_um.push(v);
            last = v;
        }
        let slope_um = if sums[8].1 > 0 {
            (sums[8].0 / sums[8].1 as f64 - length_um[7]).max(5.0)
        } else {
            20.0
        };
        WireloadModel { length_um, slope_um }
    }

    /// Predicted total net length for a given fanout.
    pub fn net_length(&self, fanout: usize) -> f64 {
        if fanout == 0 {
            return 0.0;
        }
        match self.length_um.get(fanout - 1) {
            Some(l) => *l,
            None => {
                let last = *self.length_um.last().unwrap_or(&0.0);
                last + self.slope_um * (fanout - self.length_um.len()) as f64
            }
        }
    }
}

/// Wireload-based STA: identical delay equations to [`crate::sta::analyze`]
/// but with every net's length replaced by the wireload prediction for
/// its fanout, and per-sink wire delay using the predicted length split
/// evenly among sinks. Returns the same [`StaResult`] shape so results
/// are directly comparable.
pub fn analyze_wireload(
    nl: &MappedNetlist,
    lib: &Library,
    cfg: &TimingConfig,
    model: &WireloadModel,
) -> StaResult {
    let n = nl.num_cells();
    let order = nl.topological_order();
    let nets = nl.nets();
    let mut net_len = vec![0.0f64; n];
    let mut net_pin_cap = vec![0.0f64; n];
    let mut net_fanout = vec![0usize; n];
    let mut pi_len = vec![0.0f64; nl.input_names().len()];
    let mut pi_cap = vec![0.0f64; nl.input_names().len()];
    let mut pi_fanout = vec![0usize; nl.input_names().len()];
    for net in &nets {
        let fanout = net.sinks.len() + net.po_sinks.len();
        let len = model.net_length(fanout);
        let mut cap = 0.0;
        for (c, _) in &net.sinks {
            cap += lib.cell(nl.cells()[*c as usize].lib_cell).pin_cap;
        }
        cap += net.po_sinks.len() as f64 * cfg.output_pin_cap;
        match net.driver {
            SignalRef::Cell(c) => {
                net_len[c as usize] = len;
                net_pin_cap[c as usize] = cap;
                net_fanout[c as usize] = fanout;
            }
            SignalRef::Pi(i) => {
                pi_len[i as usize] = len;
                pi_cap[i as usize] = cap;
                pi_fanout[i as usize] = fanout;
            }
        }
    }
    let pi_arrival: Vec<f64> = (0..nl.input_names().len())
        .map(|i| cfg.input_drive_res * cfg.net_load(pi_len[i], pi_cap[i]))
        .collect();
    let mut cell_arrival = vec![0.0f64; n];
    let mut crit_in: Vec<Option<SignalRef>> = vec![None; n];
    for ci in order {
        let cell = &nl.cells()[ci];
        let master = lib.cell(cell.lib_cell);
        let mut worst = 0.0f64;
        let mut worst_src = None;
        for src in &cell.inputs {
            // per-sink predicted distance: the source net's predicted
            // length split evenly over its sinks
            let (len, fo) = match src {
                SignalRef::Pi(i) => (pi_len[*i as usize], pi_fanout[*i as usize]),
                SignalRef::Cell(c) => (net_len[*c as usize], net_fanout[*c as usize]),
            };
            let dist = if fo > 0 { len / fo as f64 } else { 0.0 };
            let at = match src {
                SignalRef::Pi(i) => pi_arrival[*i as usize],
                SignalRef::Cell(c) => cell_arrival[*c as usize],
            } + cfg.wire_delay(dist, master.pin_cap);
            if worst_src.is_none() || at > worst {
                worst = at;
                worst_src = Some(*src);
            }
        }
        let load = cfg.net_load(net_len[ci], net_pin_cap[ci]);
        cell_arrival[ci] = worst + master.intrinsic + master.drive_res * load;
        crit_in[ci] = worst_src;
    }
    let mut po_arrival = Vec::with_capacity(nl.outputs().len());
    for (_, src) in nl.outputs() {
        let at = match src {
            SignalRef::Pi(i) => pi_arrival[*i as usize],
            SignalRef::Cell(c) => cell_arrival[*c as usize],
        };
        po_arrival.push(at);
    }
    let critical_po = po_arrival
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // reuse the real STA's path reconstruction shape: walk crit_in
    let mut critical_path = Vec::new();
    if !nl.outputs().is_empty() {
        let (name, mut src) = {
            let (n, s) = &nl.outputs()[critical_po];
            (n.clone(), *s)
        };
        critical_path.push(crate::sta::PathPoint::Output(name));
        loop {
            match src {
                SignalRef::Pi(i) => {
                    critical_path
                        .push(crate::sta::PathPoint::Input(nl.input_names()[i as usize].clone()));
                    break;
                }
                SignalRef::Cell(c) => {
                    critical_path
                        .push(crate::sta::PathPoint::Cell(c, nl.cells()[c as usize].name.clone()));
                    match crit_in[c as usize] {
                        Some(next) => src = next,
                        None => break,
                    }
                }
            }
        }
        critical_path.reverse();
    }
    StaResult {
        po_arrival,
        cell_arrival,
        critical_po,
        critical_path,
        reg_setup_arrival: Vec::new(),
    }
}

/// Per-net prediction error of a wireload model on a placed design:
/// returns `(mean |error| in µm, worst |error| in µm, mean relative
/// error)` over nets with at least one sink.
pub fn wireload_error(nl: &MappedNetlist, model: &WireloadModel) -> (f64, f64, f64) {
    let mut count = 0usize;
    let mut sum_abs = 0.0;
    let mut worst = 0.0f64;
    let mut sum_rel = 0.0;
    for net in nl.nets() {
        let fanout = net.sinks.len() + net.po_sinks.len();
        if fanout == 0 {
            continue;
        }
        let d = nl.signal_pos(net.driver);
        let mut actual = 0.0;
        for (c, _) in &net.sinks {
            actual += d.manhattan(nl.cells()[*c as usize].pos);
        }
        for o in &net.po_sinks {
            actual += d.manhattan(nl.output_pos(*o));
        }
        let predicted = model.net_length(fanout);
        let err = (predicted - actual).abs();
        sum_abs += err;
        worst = worst.max(err);
        sum_rel += err / actual.max(1.0);
        count += 1;
    }
    if count == 0 {
        return (0.0, 0.0, 0.0);
    }
    (sum_abs / count as f64, worst, sum_rel / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::corelib018;
    use casyn_netlist::mapped::MappedCell;
    use casyn_netlist::Point;

    fn chain_netlist(spacing: f64, n: usize) -> MappedNetlist {
        let lib = corelib018();
        let iv = lib.find("IV").unwrap();
        let master = lib.cell(iv);
        let mut nl = MappedNetlist::new();
        let mut src = nl.add_input("i");
        nl.set_input_pos(0, Point::new(0.0, 0.0));
        for k in 0..n {
            src = nl.add_cell(MappedCell {
                lib_cell: iv,
                name: master.name.clone(),
                inputs: vec![src],
                area: master.area,
                width: master.width,
                pos: Point::new(spacing * (k + 1) as f64, 0.0),
                source_tree: None,
            });
        }
        nl.add_output("o", src);
        nl.set_output_pos(0, Point::new(spacing * (n + 1) as f64, 0.0));
        nl
    }

    #[test]
    fn table_lookup_and_extrapolation() {
        let m = WireloadModel::generic_018();
        assert_eq!(m.net_length(0), 0.0);
        assert_eq!(m.net_length(1), 14.0);
        assert_eq!(m.net_length(8), 142.0);
        assert!((m.net_length(10) - (142.0 + 2.0 * 22.0)).abs() < 1e-9);
    }

    #[test]
    fn wireload_sta_ignores_actual_positions() {
        // two identical chains at wildly different spacing must get the
        // same wireload arrival — that is precisely the model's blindness
        let lib = corelib018();
        let cfg = TimingConfig::default();
        let m = WireloadModel::generic_018();
        let near = analyze_wireload(&chain_netlist(2.0, 6), &lib, &cfg, &m);
        let far = analyze_wireload(&chain_netlist(200.0, 6), &lib, &cfg, &m);
        assert!((near.critical_arrival() - far.critical_arrival()).abs() < 1e-9);
        // whereas the placed STA sees the difference
        let near_real = crate::sta::analyze(&chain_netlist(2.0, 6), &lib, &cfg);
        let far_real = crate::sta::analyze(&chain_netlist(200.0, 6), &lib, &cfg);
        assert!(far_real.critical_arrival() > near_real.critical_arrival() * 1.5);
    }

    #[test]
    fn calibration_reduces_mean_error() {
        let nl = chain_netlist(120.0, 8);
        let generic = WireloadModel::generic_018();
        let fitted = WireloadModel::calibrate(&nl);
        let (g_mean, _, _) = wireload_error(&nl, &generic);
        let (f_mean, _, _) = wireload_error(&nl, &fitted);
        assert!(f_mean <= g_mean, "calibrated model must fit better: {f_mean} vs {g_mean}");
    }

    #[test]
    fn error_metrics_zero_on_perfect_model() {
        let nl = chain_netlist(50.0, 4);
        let m = WireloadModel { length_um: vec![50.0; 8], slope_um: 0.0 };
        let (mean, worst, rel) = wireload_error(&nl, &m);
        // all nets are 2-pin with length 50 except the PO net
        assert!(mean < 1e-9 && worst < 1e-9 && rel < 1e-9);
    }
}
