//! Multilevel coarsening of a placement hypergraph.
//!
//! Heavy-edge clustering in the hMETIS tradition: cells are visited in
//! index order and greedily matched to the unmatched neighbour they share
//! the most (size-discounted) net weight with; matched pairs collapse
//! into one cluster whose width is the sum of its members. Repeating the
//! matching yields a hierarchy of progressively smaller hypergraphs; the
//! k-way placer partitions the coarsest one and refines the assignment
//! back down through the levels.
//!
//! Everything here is deterministic: visit order is cell index, ties
//! resolve toward the smaller neighbour index, and cluster ids are
//! assigned in first-appearance order.

use crate::instance::{PinRef, PlaceInstance, PlaceNet};
use casyn_obs as obs;
use std::collections::HashSet;

/// One coarsening step: the clustered hypergraph plus the projection map
/// from the finer level it was built from.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The clustered placement problem.
    pub inst: PlaceInstance,
    /// For each cell of the *finer* level, its cluster index in `inst`.
    pub cluster_of: Vec<usize>,
}

/// Nets with more pins than this contribute nothing to the matching
/// weight: a huge net says little about which two cells belong together,
/// and skipping it keeps matching near-linear.
const MATCH_NET_LIMIT: usize = 16;

/// Coarsening stops once a level shrinks the cell count by less than
/// this factor — further rounds would only merge what the weight cap
/// forbids.
const STALL_RATIO: f64 = 0.9;

/// Builds the multilevel hierarchy of `inst`: `levels[0]` is the first
/// clustering of `inst`, `levels.last()` the coarsest. Returns an empty
/// vector when `inst` is already at or below `target_cells` (the k-way
/// placer then partitions the flat instance directly). The per-cluster
/// weight cap keeps any cluster from exceeding a `target_cells`-fraction
/// of the total width, so the coarsest level still admits a balanced
/// k-way assignment.
pub fn coarsen(inst: &PlaceInstance, target_cells: usize) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let target = target_cells.max(1);
    let total_w = inst.total_width();
    let max_cell_w = inst.cell_width.iter().fold(0.0f64, |a, &b| a.max(b));
    // a cluster may hold ~1.5 regions' worth of weight before matching
    // refuses to grow it further
    let cap = (total_w / target as f64 * 1.5).max(max_cell_w);
    let mut current = inst;
    while current.num_cells() > target {
        let level = cluster_once(current, cap);
        let shrunk = level.inst.num_cells();
        if shrunk as f64 > current.num_cells() as f64 * STALL_RATIO {
            break; // matching stalled; deeper levels would be no-ops
        }
        levels.push(level);
        current = &levels.last().expect("just pushed").inst;
    }
    if obs::enabled() {
        obs::counter_add("place.coarsen.levels", levels.len() as u64);
        if let Some(last) = levels.last() {
            obs::gauge_set("place.coarsen.coarsest_cells", last.inst.num_cells() as f64);
        }
    }
    levels
}

/// One heavy-edge matching pass over `inst`; `cap` bounds the combined
/// width of any produced cluster.
fn cluster_once(inst: &PlaceInstance, cap: f64) -> CoarseLevel {
    let n = inst.num_cells();
    let nets_of_cell = inst.nets_of_cells();
    let mut cluster_of = vec![usize::MAX; n];
    let mut num_clusters = 0usize;
    // scratch: accumulated connection weight to each candidate neighbour,
    // reset per cell via the touched list
    let mut weight = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for u in 0..n {
        if cluster_of[u] != usize::MAX {
            continue;
        }
        touched.clear();
        for &ni in &nets_of_cell[u] {
            let pins = &inst.nets[ni].pins;
            if pins.len() > MATCH_NET_LIMIT || pins.len() < 2 {
                continue;
            }
            let w = 1.0 / (pins.len() - 1) as f64;
            for pin in pins {
                if let PinRef::Cell(v) = pin {
                    let v = *v;
                    if v != u && cluster_of[v] == usize::MAX {
                        if weight[v] == 0.0 {
                            touched.push(v);
                        }
                        weight[v] += w;
                    }
                }
            }
        }
        // best unmatched neighbour: max weight, ties to the smaller index
        let mut best: Option<usize> = None;
        for &v in &touched {
            if inst.cell_width[u] + inst.cell_width[v] > cap {
                continue;
            }
            match best {
                None => best = Some(v),
                Some(b) => {
                    if weight[v] > weight[b] || (weight[v] == weight[b] && v < b) {
                        best = Some(v);
                    }
                }
            }
        }
        cluster_of[u] = num_clusters;
        if let Some(v) = best {
            cluster_of[v] = num_clusters;
        }
        num_clusters += 1;
        for &v in &touched {
            weight[v] = 0.0;
        }
    }
    CoarseLevel { inst: project_instance(inst, &cluster_of, num_clusters), cluster_of }
}

/// Builds the coarse hypergraph: cluster widths are member sums; each net
/// maps its cell pins through `cluster_of` (deduplicated), keeps its
/// fixed pins (exact duplicates dropped), and survives only if it still
/// spans at least two distinct pins.
fn project_instance(
    inst: &PlaceInstance,
    cluster_of: &[usize],
    num_clusters: usize,
) -> PlaceInstance {
    let mut coarse = PlaceInstance { cell_width: vec![0.0; num_clusters], nets: Vec::new() };
    for (c, &w) in inst.cell_width.iter().enumerate() {
        coarse.cell_width[cluster_of[c]] += w;
    }
    let mut seen_cluster = vec![u32::MAX; num_clusters];
    let mut seen_fixed: HashSet<(u64, u64)> = HashSet::new();
    for (ni, net) in inst.nets.iter().enumerate() {
        let stamp = ni as u32;
        seen_fixed.clear();
        let mut pins: Vec<PinRef> = Vec::new();
        for pin in &net.pins {
            match pin {
                PinRef::Cell(c) => {
                    let cl = cluster_of[*c];
                    if seen_cluster[cl] != stamp {
                        seen_cluster[cl] = stamp;
                        pins.push(PinRef::Cell(cl));
                    }
                }
                PinRef::Fixed(p) => {
                    if seen_fixed.insert((p.x.to_bits(), p.y.to_bits())) {
                        pins.push(PinRef::Fixed(*p));
                    }
                }
            }
        }
        if pins.len() >= 2 {
            coarse.nets.push(PlaceNet { pins });
        }
    }
    coarse
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::Point;

    fn chain(n: usize) -> PlaceInstance {
        let mut inst = PlaceInstance { cell_width: vec![1.92; n], nets: Vec::new() };
        for i in 0..n - 1 {
            inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + 1)] });
        }
        inst
    }

    #[test]
    fn chain_halves_per_level() {
        let inst = chain(64);
        let levels = coarsen(&inst, 8);
        assert!(!levels.is_empty());
        // heavy-edge matching on a chain pairs neighbours: 64 -> 32 -> 16 -> 8
        assert_eq!(levels[0].inst.num_cells(), 32);
        assert!(levels.last().unwrap().inst.num_cells() <= 8);
        for level in &levels {
            // total width is conserved at every level
            assert!((level.inst.total_width() - inst.total_width()).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_maps_are_consistent() {
        let inst = chain(40);
        let levels = coarsen(&inst, 5);
        let mut fine_cells = inst.num_cells();
        for level in &levels {
            assert_eq!(level.cluster_of.len(), fine_cells);
            for &cl in &level.cluster_of {
                assert!(cl < level.inst.num_cells(), "cluster id out of range");
            }
            fine_cells = level.inst.num_cells();
        }
    }

    #[test]
    fn internal_nets_collapse_and_fixed_pins_survive() {
        // two cells joined by one net, plus a port net: after clustering
        // into one cluster the cell-cell net dies, the port net survives
        let inst = PlaceInstance {
            cell_width: vec![1.92, 1.92],
            nets: vec![
                PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Cell(1)] },
                PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Fixed(Point::new(0.0, 3.0))] },
            ],
        };
        let levels = coarsen(&inst, 1);
        assert_eq!(levels.len(), 1);
        let coarse = &levels[0].inst;
        assert_eq!(coarse.num_cells(), 1);
        assert_eq!(coarse.nets.len(), 1);
        assert!(matches!(coarse.nets[0].pins[1], PinRef::Fixed(_)));
    }

    #[test]
    fn weight_cap_prevents_superclusters() {
        // a star would otherwise collapse into the hub; the cap keeps
        // every cluster to at most ~1.5 regions of weight
        let n = 32;
        let mut inst = PlaceInstance { cell_width: vec![1.0; n], nets: Vec::new() };
        for i in 1..n {
            inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Cell(i)] });
        }
        let levels = coarsen(&inst, 8);
        let cap = 32.0 / 8.0 * 1.5;
        for level in &levels {
            for &w in &level.inst.cell_width {
                assert!(w <= cap + 1e-9, "cluster weight {w} exceeds cap {cap}");
            }
        }
    }

    #[test]
    fn small_instance_yields_no_levels() {
        let inst = chain(4);
        assert!(coarsen(&inst, 8).is_empty());
        assert!(coarsen(&PlaceInstance::default(), 8).is_empty());
    }

    #[test]
    fn deterministic() {
        let inst = chain(50);
        let a = coarsen(&inst, 6);
        let b = coarsen(&inst, 6);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cluster_of, y.cluster_of);
            assert_eq!(x.inst.cell_width, y.inst.cell_width);
        }
    }
}
