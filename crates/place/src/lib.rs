//! Placement: the layout image, a recursive min-cut bisection placer with
//! Fiduccia–Mattheyses refinement, a row legalizer and wirelength metrics.
//!
//! The paper's methodology places the technology-independent netlist
//! *once* on a layout image whose size comes from the floorplan
//! constraints; the mapper then reads those coordinates. After mapping,
//! the gate-level netlist is legalized into standard-cell rows (seeded by
//! the mapper's centre-of-mass positions, the incremental-update scheme of
//! Pedram–Bhat) and handed to the global router.
//!
//! * [`image`] — die/rows floorplan and peripheral port assignment.
//! * [`instance`] — the placement hypergraph, with builders from subject
//!   graphs and mapped netlists.
//! * [`fm`] — Fiduccia–Mattheyses bipartition refinement.
//! * [`bisect`] — the recursive min-cut placer with terminal propagation.
//! * [`legalize`] — row legalization with Abacus-style clumping.
//! * [`refine`] — median-improvement refinement with a density clamp.
//! * [`metrics`] — half-perimeter wirelength and utilization.

pub mod bisect;
pub mod fm;
pub mod image;
pub mod instance;
pub mod legalize;
pub mod metrics;
pub mod refine;

pub use bisect::{place, PlacerOptions};
pub use image::Floorplan;
pub use instance::{PinRef, PlaceInstance, PlaceNet};
pub use legalize::{legalize_rows, LegalizedRows};
pub use metrics::{hpwl, total_hpwl};
pub use refine::{median_improve, RefineOptions};

/// Why [`place_subject`] could not produce a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceError {
    /// The subject-graph vertex that could not be positioned.
    pub vertex: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "placement failed at vertex {}: {}", self.vertex, self.reason)
    }
}

impl std::error::Error for PlaceError {}

/// Places a subject graph on the floorplan's layout image and returns one
/// position per subject-graph vertex (primary inputs get their port
/// positions). This is the "initial placement" box of the paper's Fig. 3.
/// A vertex that is neither a movable cell nor a fixed port — a corrupt
/// placement instance — is reported as a [`PlaceError`] instead of a
/// panic.
pub fn place_subject(
    graph: &casyn_netlist::subject::SubjectGraph,
    fp: &Floorplan,
    opts: &PlacerOptions,
) -> Result<Vec<casyn_netlist::Point>, PlaceError> {
    let built = instance::from_subject(graph, fp);
    let cell_pos = place(&built.instance, fp, opts);
    let mut pos = vec![casyn_netlist::Point::default(); graph.num_vertices()];
    for (v, slot) in built.cell_of_vertex.iter().enumerate() {
        match slot {
            Some(c) => pos[v] = cell_pos[*c],
            None => match built.fixed_of_vertex[v] {
                Some(p) => pos[v] = p,
                None => {
                    return Err(PlaceError {
                        vertex: v,
                        reason: "vertex has neither a movable cell nor a fixed port position"
                            .to_string(),
                    })
                }
            },
        }
    }
    Ok(pos)
}
