//! Placement: the layout image, two global-placement backends — a direct
//! k-way wire-aware multilevel placer (the default) and a recursive
//! min-cut bisection placer with Fiduccia–Mattheyses refinement — plus a
//! row legalizer and wirelength metrics.
//!
//! The paper's methodology places the technology-independent netlist
//! *once* on a layout image whose size comes from the floorplan
//! constraints; the mapper then reads those coordinates. After mapping,
//! the gate-level netlist is legalized into standard-cell rows (seeded by
//! the mapper's centre-of-mass positions, the incremental-update scheme of
//! Pedram–Bhat) and handed to the global router.
//!
//! * [`image`] — die/rows floorplan and peripheral port assignment.
//! * [`instance`] — the placement hypergraph, with builders from subject
//!   graphs and mapped netlists.
//! * [`coarsen`] — heavy-edge multilevel clustering of the hypergraph.
//! * `kway` — the direct k-way placer: region-grid assignment refined
//!   under the HPWL objective, parallel over independent region pairs.
//! * [`fm`] — Fiduccia–Mattheyses bipartition refinement.
//! * [`bisect`] — the recursive min-cut placer with terminal propagation
//!   (the legacy backend, kept for A/B comparison).
//! * [`legalize`] — row legalization with Abacus-style clumping.
//! * [`refine`] — median-improvement refinement with a density clamp.
//! * [`metrics`] — half-perimeter wirelength and utilization.

pub mod bisect;
pub mod coarsen;
pub mod fm;
pub mod image;
pub mod instance;
mod kway;
pub mod legalize;
pub mod metrics;
pub mod refine;
mod spread;

pub use image::Floorplan;
pub use instance::{PinRef, PlaceInstance, PlaceNet};
pub use legalize::{legalize_rows, LegalizedRows};
pub use metrics::{hpwl, total_hpwl};
pub use refine::{median_improve, RefineOptions};

use casyn_exec::Pool;

/// Which global-placement algorithm [`place`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacerBackend {
    /// Recursive min-cut bisection with FM refinement — the legacy
    /// backend, kept for A/B comparison.
    Bisect,
    /// Direct k-way multilevel placement refined under the HPWL
    /// objective (the default).
    #[default]
    KWay,
}

impl PlacerBackend {
    /// Parses a backend name as the CLI and batch manifests spell it.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bisect" | "bisection" => Some(PlacerBackend::Bisect),
            "kway" | "k-way" => Some(PlacerBackend::KWay),
            _ => None,
        }
    }

    /// The canonical spelling [`PlacerBackend::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            PlacerBackend::Bisect => "bisect",
            PlacerBackend::KWay => "kway",
        }
    }

    /// The backend selected by the `CASYN_PLACER` environment variable,
    /// falling back to the default (k-way) when unset or unrecognized.
    /// This is what [`PlacerOptions::default`] reads, so one environment
    /// variable pins the whole test suite to a backend.
    pub fn from_env() -> Self {
        std::env::var("CASYN_PLACER").ok().and_then(|s| Self::parse(&s)).unwrap_or_default()
    }
}

impl std::fmt::Display for PlacerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for [`place`], shared by both backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// Which global-placement algorithm runs.
    pub backend: PlacerBackend,
    /// Balance tolerance as a fraction of the ideal partition/region
    /// weight (FM balance for bisection, region capacity slack for
    /// k-way).
    pub balance_tol: f64,
    /// Bisection: regions with at most this many cells are spread
    /// directly.
    pub leaf_cells: usize,
    /// Bisection: FM passes per cut.
    pub fm_passes: usize,
    /// Bisection: global placement sweeps — each sweep re-runs the full
    /// recursive bisection seeded with the previous sweep's positions,
    /// which makes the initial partitions and the terminal-propagation
    /// anchors far more accurate than a cold start.
    pub sweeps: usize,
    /// Bisection: place the split line proportional to the partition
    /// weights (uniform density under loose balance) instead of at the
    /// region midpoint.
    pub proportional_split: bool,
    /// K-way: target cells per gcell region; the region count is the
    /// cell count divided by this.
    pub region_cells: usize,
    /// K-way: refinement passes over the pair rounds at every level.
    pub kway_passes: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions {
            backend: PlacerBackend::from_env(),
            balance_tol: 0.3,
            leaf_cells: 2,
            fm_passes: 6,
            sweeps: 6,
            proportional_split: false,
            region_cells: 8,
            kway_passes: 4,
        }
    }
}

/// Places `inst` on the floorplan with the configured backend; returns
/// one position per movable cell. Deterministic: no randomness is
/// involved, ties resolve by cell index.
///
/// # Example
///
/// ```
/// use casyn_place::{place, Floorplan, PlacerOptions};
/// use casyn_place::instance::{PinRef, PlaceInstance, PlaceNet};
///
/// let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 60.0);
/// let inst = PlaceInstance {
///     cell_width: vec![1.92, 1.92],
///     nets: vec![PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Cell(1)] }],
/// };
/// let pos = place(&inst, &fp, &PlacerOptions::default());
/// assert_eq!(pos.len(), 2);
/// assert!(pos.iter().all(|p| p.x <= fp.die_width && p.y <= fp.die_height));
/// ```
pub fn place(
    inst: &PlaceInstance,
    fp: &Floorplan,
    opts: &PlacerOptions,
) -> Vec<casyn_netlist::Point> {
    place_with_pool(inst, fp, opts, &Pool::serial())
}

/// [`place`] with the k-way backend's independent region-pair refinement
/// fanned out on `pool`. The result is **bit-identical** to the serial
/// path for any worker count: pair jobs read only the immutable
/// start-of-round snapshot and `par_map` returns their moves in pair
/// order (the bisection backend is serial and ignores the pool).
pub fn place_with_pool(
    inst: &PlaceInstance,
    fp: &Floorplan,
    opts: &PlacerOptions,
    pool: &Pool,
) -> Vec<casyn_netlist::Point> {
    match opts.backend {
        PlacerBackend::Bisect => bisect::place_bisect(inst, fp, opts),
        PlacerBackend::KWay => kway::place_kway(inst, fp, opts, pool),
    }
}

/// Why [`place_subject`] could not produce a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceError {
    /// The subject-graph vertex that could not be positioned.
    pub vertex: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "placement failed at vertex {}: {}", self.vertex, self.reason)
    }
}

impl std::error::Error for PlaceError {}

/// Places a subject graph on the floorplan's layout image and returns one
/// position per subject-graph vertex (primary inputs get their port
/// positions). This is the "initial placement" box of the paper's Fig. 3.
/// A vertex that is neither a movable cell nor a fixed port — a corrupt
/// placement instance — is reported as a [`PlaceError`] instead of a
/// panic.
pub fn place_subject(
    graph: &casyn_netlist::subject::SubjectGraph,
    fp: &Floorplan,
    opts: &PlacerOptions,
) -> Result<Vec<casyn_netlist::Point>, PlaceError> {
    place_subject_pool(graph, fp, opts, &Pool::serial())
}

/// [`place_subject`] on a pool: see [`place_with_pool`] for the
/// determinism contract.
pub fn place_subject_pool(
    graph: &casyn_netlist::subject::SubjectGraph,
    fp: &Floorplan,
    opts: &PlacerOptions,
    pool: &Pool,
) -> Result<Vec<casyn_netlist::Point>, PlaceError> {
    let built = instance::from_subject(graph, fp);
    let cell_pos = place_with_pool(&built.instance, fp, opts, pool);
    let mut pos = vec![casyn_netlist::Point::default(); graph.num_vertices()];
    for (v, slot) in built.cell_of_vertex.iter().enumerate() {
        match slot {
            Some(c) => pos[v] = cell_pos[*c],
            None => match built.fixed_of_vertex[v] {
                Some(p) => pos[v] = p,
                None => {
                    return Err(PlaceError {
                        vertex: v,
                        reason: "vertex has neither a movable cell nor a fixed port position"
                            .to_string(),
                    })
                }
            },
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_roundtrips() {
        for b in [PlacerBackend::Bisect, PlacerBackend::KWay] {
            assert_eq!(PlacerBackend::parse(b.name()), Some(b));
        }
        assert_eq!(PlacerBackend::parse("Bisection"), Some(PlacerBackend::Bisect));
        assert_eq!(PlacerBackend::parse(" K-WAY "), Some(PlacerBackend::KWay));
        assert_eq!(PlacerBackend::parse("quadratic"), None);
        assert_eq!(PlacerBackend::default(), PlacerBackend::KWay);
    }

    #[test]
    fn both_backends_place_the_same_instance() {
        let inst = PlaceInstance {
            cell_width: vec![1.92; 24],
            nets: (0..23)
                .map(|i| PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + 1)] })
                .collect(),
        };
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 60.0);
        for backend in [PlacerBackend::Bisect, PlacerBackend::KWay] {
            let opts = PlacerOptions { backend, ..Default::default() };
            let pos = place(&inst, &fp, &opts);
            assert_eq!(pos.len(), 24, "{backend}");
            for p in &pos {
                assert!(p.x >= 0.0 && p.x <= fp.die_width, "{backend}: {p:?}");
                assert!(p.y >= 0.0 && p.y <= fp.die_height, "{backend}: {p:?}");
            }
        }
    }
}
