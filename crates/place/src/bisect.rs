//! Recursive min-cut bisection placement with terminal propagation.
//!
//! The die is split recursively (always across its longer axis); at each
//! split the region's cells are bipartitioned by [`crate::fm`] with
//! anchors derived from the current estimated positions of external pins
//! (terminal propagation). Leaf regions spread their cells on a uniform
//! grid. The result is the "initial placement" the congestion-aware
//! mapper reads its coordinates from.

use crate::fm::{refine, FmNet, FmProblem};
use crate::image::Floorplan;
use crate::instance::{PinRef, PlaceInstance};
use crate::spread::{spread_in_rect, Rect};
use crate::PlacerOptions;
use casyn_netlist::Point;
use casyn_obs as obs;
use std::collections::VecDeque;

#[derive(Debug)]
struct Region {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    cells: Vec<usize>,
}

impl Region {
    fn rect(&self) -> Rect {
        Rect { x0: self.x0, y0: self.y0, x1: self.x1, y1: self.y1 }
    }

    fn center(&self) -> Point {
        self.rect().center()
    }
}

/// Places `inst` on the floorplan with recursive min-cut bisection;
/// returns one position per movable cell. Deterministic: no randomness
/// is involved, ties resolve by cell index. Callers normally go through
/// [`crate::place`], which dispatches on [`crate::PlacerBackend`].
pub fn place_bisect(inst: &PlaceInstance, fp: &Floorplan, opts: &PlacerOptions) -> Vec<Point> {
    let n = inst.num_cells();
    let mut pos = vec![Point::new(fp.die_width / 2.0, fp.die_height / 2.0); n];
    if n == 0 {
        return pos;
    }
    for sweep in 0..opts.sweeps.max(1) {
        let mut span = obs::trace::span("place.sweep");
        span.attr_num("sweep", sweep as f64);
        pos = bisection_sweep(inst, fp, opts, pos);
        obs::log::trace(&format!("place: sweep {sweep} done"));
    }
    obs::counter_add("place.sweeps", opts.sweeps.max(1) as u64);
    pos
}

/// One full recursive-bisection pass, seeded with `pos` (used for initial
/// partition ordering and terminal propagation).
fn bisection_sweep(
    inst: &PlaceInstance,
    fp: &Floorplan,
    opts: &PlacerOptions,
    seed: Vec<Point>,
) -> Vec<Point> {
    let n = inst.num_cells();
    let prev = seed.clone();
    let mut pos = seed;
    let nets_of_cell = inst.nets_of_cells();
    let mut queue = VecDeque::new();
    queue.push_back(Region {
        x0: 0.0,
        y0: 0.0,
        x1: fp.die_width,
        y1: fp.die_height,
        cells: (0..n).collect(),
    });
    // stamp array to collect the nets local to a region without hashing
    let mut net_stamp = vec![u32::MAX; inst.nets.len()];
    let mut stamp = 0u32;
    // batched locally; one registry flush per sweep
    let mut regions_split = 0u64;
    let mut leaves_spread = 0u64;
    while let Some(region) = queue.pop_front() {
        // stop on cell count, or on a degenerate region: an unbalanced
        // cut can push every cell into one child forever while the region
        // halves, so a physical floor is required for termination
        let tiny = (region.x1 - region.x0) < 0.05 && (region.y1 - region.y0) < 0.05;
        if region.cells.len() <= opts.leaf_cells || tiny {
            spread_leaf(&region, inst, &nets_of_cell, &mut pos);
            leaves_spread += 1;
            continue;
        }
        regions_split += 1;
        let vertical = (region.x1 - region.x0) >= (region.y1 - region.y0);
        let mid =
            if vertical { (region.x0 + region.x1) / 2.0 } else { (region.y0 + region.y1) / 2.0 };
        let axis = |p: Point| if vertical { p.x } else { p.y };
        // local numbering
        let mut local_id = vec![usize::MAX; inst.num_cells()];
        for (li, &c) in region.cells.iter().enumerate() {
            local_id[c] = li;
        }
        // collect local nets
        stamp += 1;
        let mut fm_nets: Vec<FmNet> = Vec::new();
        let mut net_slot: Vec<usize> = Vec::new();
        for &c in &region.cells {
            for &ni in &nets_of_cell[c] {
                if net_stamp[ni] != stamp {
                    net_stamp[ni] = stamp;
                    net_slot.push(ni);
                    fm_nets.push(FmNet::default());
                }
            }
        }
        for (slot, &ni) in net_slot.iter().enumerate() {
            let fmn = &mut fm_nets[slot];
            for pin in &inst.nets[ni].pins {
                match pin {
                    PinRef::Cell(c) => {
                        if local_id[*c] != usize::MAX {
                            fmn.cells.push(local_id[*c]);
                        } else {
                            // external cell: anchor by its current estimate
                            fmn.anchor[(axis(pos[*c]) >= mid) as usize] = true;
                        }
                    }
                    PinRef::Fixed(p) => {
                        fmn.anchor[(axis(*p) >= mid) as usize] = true;
                    }
                }
            }
        }
        // initial sides: order along the axis (stable by index), first
        // half of the weight to side 0
        // order by the *previous sweep's* coordinates: the running `pos`
        // array only holds region centres at this depth, which would tie
        let mut order: Vec<usize> = (0..region.cells.len()).collect();
        order.sort_by(|&a, &b| {
            axis(prev[region.cells[a]])
                .total_cmp(&axis(prev[region.cells[b]]))
                .then(region.cells[a].cmp(&region.cells[b]))
        });
        let total_w: f64 = region.cells.iter().map(|&c| inst.cell_width[c]).sum();
        let mut side = vec![false; region.cells.len()];
        let mut acc = 0.0;
        for &li in &order {
            side[li] = acc >= total_w / 2.0;
            acc += inst.cell_width[region.cells[li]];
        }
        let problem = FmProblem {
            weights: region.cells.iter().map(|&c| inst.cell_width[c]).collect(),
            nets: fm_nets,
            balance_tol: opts.balance_tol,
        };
        refine(&problem, &mut side, opts.fm_passes);
        // orientation: FM minimizes the cut but cannot perform the bulk
        // flip that swaps the two sides; anchors break the symmetry, so
        // pick the labelling with the smaller anchored cut
        let flipped: Vec<bool> = side.iter().map(|s| !s).collect();
        if problem.cut(&flipped) < problem.cut(&side) {
            side = flipped;
        }
        // split the region in proportion to the partition weights, so a
        // loosely balanced cut still yields uniform density
        let (mut lo, mut hi) = (region, Vec::new());
        let cells = std::mem::take(&mut lo.cells);
        let mut lo_cells = Vec::new();
        let mut lo_w = 0.0;
        for (li, c) in cells.into_iter().enumerate() {
            if side[li] {
                hi.push(c);
            } else {
                lo_w += inst.cell_width[c];
                lo_cells.push(c);
            }
        }
        let frac = if opts.proportional_split {
            (lo_w / total_w.max(1e-12)).clamp(0.05, 0.95)
        } else {
            0.5
        };
        let split =
            if vertical { lo.x0 + (lo.x1 - lo.x0) * frac } else { lo.y0 + (lo.y1 - lo.y0) * frac };
        let (r0, r1) = if vertical {
            (
                Region { x0: lo.x0, y0: lo.y0, x1: split, y1: lo.y1, cells: lo_cells },
                Region { x0: split, y0: lo.y0, x1: lo.x1, y1: lo.y1, cells: hi },
            )
        } else {
            (
                Region { x0: lo.x0, y0: lo.y0, x1: lo.x1, y1: split, cells: lo_cells },
                Region { x0: lo.x0, y0: split, x1: lo.x1, y1: lo.y1, cells: hi },
            )
        };
        for r in [r0, r1] {
            for &c in &r.cells {
                pos[c] = r.center();
            }
            if !r.cells.is_empty() {
                queue.push_back(r);
            }
        }
    }
    if obs::enabled() {
        obs::counter_add("place.bisect_regions", regions_split);
        obs::counter_add("place.leaf_spreads", leaves_spread);
    }
    pos
}

/// Spreads the cells of a leaf region on a uniform grid inside it — the
/// shared [`crate::spread`] helper, also used by the k-way backend's
/// finest-level regions.
fn spread_leaf(
    region: &Region,
    inst: &PlaceInstance,
    nets_of_cell: &[Vec<usize>],
    pos: &mut [Point],
) {
    spread_in_rect(region.rect(), &region.cells, inst, nets_of_cell, pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PinRef, PlaceNet};
    use crate::metrics::total_hpwl_of_instance;

    fn chain_instance(n: usize) -> PlaceInstance {
        // a 1-D chain: c0-c1-...-c(n-1); optimum keeps neighbours adjacent
        let mut inst = PlaceInstance { cell_width: vec![1.92; n], nets: Vec::new() };
        for i in 0..n - 1 {
            inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + 1)] });
        }
        inst
    }

    #[test]
    fn all_cells_inside_die() {
        let inst = chain_instance(100);
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 64.0 * 10.0);
        let pos = place_bisect(&inst, &fp, &PlacerOptions::default());
        assert_eq!(pos.len(), 100);
        for p in &pos {
            assert!(p.x >= 0.0 && p.x <= fp.die_width, "x out of die: {p:?}");
            assert!(p.y >= 0.0 && p.y <= fp.die_height, "y out of die: {p:?}");
        }
    }

    #[test]
    fn chain_places_better_than_random_spread() {
        let inst = chain_instance(128);
        let fp = Floorplan::with_rows_and_area(8, 6.4 * 8.0 * 51.2);
        let pos = place_bisect(&inst, &fp, &PlacerOptions::default());
        let placed = total_hpwl_of_instance(&inst, &pos);
        // compare to a pathological placement: cells at alternating corners
        let bad: Vec<Point> = (0..128)
            .map(|i| {
                if i % 2 == 0 {
                    Point::new(0.0, 0.0)
                } else {
                    Point::new(fp.die_width, fp.die_height)
                }
            })
            .collect();
        let worst = total_hpwl_of_instance(&inst, &bad);
        assert!(
            placed < worst / 4.0,
            "min-cut placement ({placed:.1}) should beat the pathological one ({worst:.1}) easily"
        );
    }

    #[test]
    fn fixed_terminals_attract_connected_cells() {
        // two cells, one tied to the left edge, one to the right
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 100.0);
        let inst = PlaceInstance {
            cell_width: vec![1.92, 1.92],
            nets: vec![
                PlaceNet { pins: vec![PinRef::Fixed(Point::new(0.0, 12.8)), PinRef::Cell(0)] },
                PlaceNet {
                    pins: vec![PinRef::Fixed(Point::new(fp.die_width, 12.8)), PinRef::Cell(1)],
                },
                // weak tie between them so they are in one connected problem
                PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Cell(1)] },
            ],
        };
        let pos = place_bisect(&inst, &fp, &PlacerOptions { leaf_cells: 1, ..Default::default() });
        assert!(
            pos[0].x < pos[1].x,
            "cell 0 ({:?}) should sit left of cell 1 ({:?})",
            pos[0],
            pos[1]
        );
    }

    #[test]
    fn deterministic() {
        let inst = chain_instance(64);
        let fp = Floorplan::with_rows_and_area(8, 8.0 * 6.4 * 40.0);
        let a = place_bisect(&inst, &fp, &PlacerOptions::default());
        let b = place_bisect(&inst, &fp, &PlacerOptions::default());
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p, q);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = PlaceInstance::default();
        let fp = Floorplan::with_rows_and_area(2, 1000.0);
        assert!(place_bisect(&inst, &fp, &PlacerOptions::default()).is_empty());
    }

    #[test]
    fn leaf_spread_has_no_duplicate_positions() {
        let inst = PlaceInstance { cell_width: vec![1.92; 7], nets: Vec::new() };
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 30.0);
        let pos = place_bisect(&inst, &fp, &PlacerOptions { leaf_cells: 8, ..Default::default() });
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                assert!(
                    pos[i].manhattan(pos[j]) > 1e-9,
                    "cells {i} and {j} coincide at {:?}",
                    pos[i]
                );
            }
        }
    }
}
