//! Wirelength metrics.

use crate::instance::{PinRef, PlaceInstance, PlaceNet};
use casyn_netlist::Point;

/// Half-perimeter wirelength of one set of pin positions.
pub fn hpwl(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    (max_x - min_x) + (max_y - min_y)
}

/// HPWL of a placement net given cell positions.
pub fn net_hpwl(net: &PlaceNet, pos: &[Point]) -> f64 {
    let pts: Vec<Point> = net
        .pins
        .iter()
        .map(|p| match p {
            PinRef::Cell(c) => pos[*c],
            PinRef::Fixed(p) => *p,
        })
        .collect();
    hpwl(&pts)
}

/// Sum of HPWL over nets given per-net pin positions.
pub fn total_hpwl(nets: &[Vec<Point>]) -> f64 {
    nets.iter().map(|pts| hpwl(pts)).sum()
}

/// Sum of HPWL over the nets of a placement instance.
pub fn total_hpwl_of_instance(inst: &PlaceInstance, pos: &[Point]) -> f64 {
    inst.nets.iter().map(|n| net_hpwl(n, pos)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_of_bounding_box() {
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 1.0), Point::new(1.0, 4.0)];
        assert!((hpwl(&pts) - 7.0).abs() < 1e-12);
        assert_eq!(hpwl(&pts[..1]), 0.0);
        assert_eq!(hpwl(&[]), 0.0);
    }

    #[test]
    fn net_hpwl_mixes_cells_and_fixed() {
        let net = PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Fixed(Point::new(10.0, 0.0))] };
        let pos = [Point::new(0.0, 5.0)];
        assert!((net_hpwl(&net, &pos) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn totals_sum() {
        let nets = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![Point::new(0.0, 0.0), Point::new(0.0, 2.0)],
        ];
        assert!((total_hpwl(&nets) - 3.0).abs() < 1e-12);
    }
}
