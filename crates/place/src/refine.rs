//! Median-improvement placement refinement.
//!
//! After global placement (either backend), each cell is iteratively moved toward the
//! median of its connected pins — the optimal single-cell position under
//! the HPWL objective. A per-bin density clamp stops cells from
//! collapsing onto their nets' centroids; the subsequent row legalization
//! resolves residual overlap.

use crate::image::Floorplan;
use crate::instance::{PinRef, PlaceInstance};
use casyn_netlist::Point;

/// Options for [`median_improve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Number of whole-netlist improvement sweeps.
    pub iterations: usize,
    /// Density-bin edge length in micrometres.
    pub bin_size: f64,
    /// Maximum allowed bin occupancy as a multiple of the average.
    pub max_density: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions { iterations: 2, bin_size: 12.8, max_density: 2.0 }
    }
}

/// Moves each cell toward the median of its connected pins, subject to a
/// density clamp. Returns the number of moves applied.
pub fn median_improve(
    inst: &PlaceInstance,
    fp: &Floorplan,
    pos: &mut [Point],
    opts: &RefineOptions,
) -> usize {
    let n = inst.num_cells();
    if n == 0 {
        return 0;
    }
    let nets_of_cell = inst.nets_of_cells();
    let nx = ((fp.die_width / opts.bin_size).ceil() as usize).max(1);
    let ny = ((fp.die_height / opts.bin_size).ceil() as usize).max(1);
    let bin_of = |p: Point| -> usize {
        let bx = ((p.x / opts.bin_size) as usize).min(nx - 1);
        let by = ((p.y / opts.bin_size) as usize).min(ny - 1);
        by * nx + bx
    };
    let cap = (inst.total_width() / (nx * ny) as f64) * opts.max_density;
    let mut bin_fill = vec![0.0f64; nx * ny];
    for (c, p) in pos.iter().enumerate() {
        bin_fill[bin_of(*p)] += inst.cell_width[c];
    }
    let mut moves = 0;
    for _ in 0..opts.iterations {
        for c in 0..n {
            if nets_of_cell[c].is_empty() {
                continue;
            }
            // gather connected pin coordinates (excluding this cell)
            let mut xs: Vec<f64> = Vec::new();
            let mut ys: Vec<f64> = Vec::new();
            for &ni in &nets_of_cell[c] {
                for pin in &inst.nets[ni].pins {
                    let p = match pin {
                        PinRef::Cell(o) if *o == c => continue,
                        PinRef::Cell(o) => pos[*o],
                        PinRef::Fixed(p) => *p,
                    };
                    xs.push(p.x);
                    ys.push(p.y);
                }
            }
            if xs.is_empty() {
                continue;
            }
            xs.sort_by(f64::total_cmp);
            ys.sort_by(f64::total_cmp);
            let target = fp.clamp(Point::new(xs[xs.len() / 2], ys[ys.len() / 2]));
            let from = bin_of(pos[c]);
            let to = bin_of(target);
            if from == to {
                pos[c] = target;
                continue;
            }
            if bin_fill[to] + inst.cell_width[c] > cap {
                continue; // destination too dense
            }
            bin_fill[from] -= inst.cell_width[c];
            bin_fill[to] += inst.cell_width[c];
            pos[c] = target;
            moves += 1;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PlaceNet;
    use crate::metrics::total_hpwl_of_instance;
    use crate::{place, PlacerOptions};

    fn mesh(side: usize) -> PlaceInstance {
        let n = side * side;
        let mut inst = PlaceInstance { cell_width: vec![1.92; n], nets: Vec::new() };
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + 1)] });
                }
                if r + 1 < side {
                    inst.nets
                        .push(PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + side)] });
                }
            }
        }
        inst
    }

    #[test]
    fn refinement_never_worsens_mesh_hpwl_much_and_usually_helps() {
        let inst = mesh(24);
        let fp = Floorplan::with_rows_and_area(24, 24.0 * 6.4 * 160.0);
        let mut pos = place(&inst, &fp, &PlacerOptions::default());
        let before = total_hpwl_of_instance(&inst, &pos);
        median_improve(&inst, &fp, &mut pos, &RefineOptions::default());
        let after = total_hpwl_of_instance(&inst, &pos);
        assert!(
            after <= before * 1.02,
            "refinement must not blow up HPWL: {before:.0} -> {after:.0}"
        );
    }

    #[test]
    fn density_clamp_prevents_collapse() {
        // star: all leaves connect to one fixed point; without the clamp
        // every cell would pile onto it
        let n = 64;
        let mut inst = PlaceInstance { cell_width: vec![1.92; n], nets: Vec::new() };
        for i in 0..n {
            inst.nets.push(PlaceNet {
                pins: vec![PinRef::Cell(i), PinRef::Fixed(Point::new(32.0, 32.0))],
            });
        }
        let fp = Floorplan::with_rows_and_area(10, 10.0 * 6.4 * 64.0);
        let mut pos: Vec<Point> =
            (0..n).map(|i| Point::new((i % 8) as f64 * 8.0, (i / 8) as f64 * 8.0)).collect();
        let opts = RefineOptions { iterations: 3, bin_size: 8.0, max_density: 1.5 };
        median_improve(&inst, &fp, &mut pos, &opts);
        // count cells inside the centre bin: bounded by the density clamp
        let center =
            pos.iter().filter(|p| (p.x - 32.0).abs() < 4.0 && (p.y - 32.0).abs() < 4.0).count();
        assert!(center < n / 2, "density clamp must prevent total collapse: {center}");
    }

    #[test]
    fn empty_instance_is_noop() {
        let inst = PlaceInstance::default();
        let fp = Floorplan::with_rows_and_area(2, 1000.0);
        let mut pos: Vec<Point> = Vec::new();
        assert_eq!(median_improve(&inst, &fp, &mut pos, &RefineOptions::default()), 0);
    }

    #[test]
    fn single_cell_moves_to_median_of_fixed_pins() {
        // one movable cell tied to three fixed ports: the optimal spot is
        // the per-axis median of the connected pins
        let mut inst = PlaceInstance { cell_width: vec![1.92], nets: Vec::new() };
        for p in [Point::new(10.0, 40.0), Point::new(30.0, 10.0), Point::new(50.0, 20.0)] {
            inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Fixed(p)] });
        }
        let fp = Floorplan::with_rows_and_area(10, 10.0 * 6.4 * 64.0);
        let mut pos = vec![Point::new(0.0, 0.0)];
        // one bin spanning the die: with a single cell the per-bin density
        // cap (2x the average fill) is below one cell width, so any
        // cross-bin move would be vetoed regardless of wirelength
        let opts = RefineOptions { bin_size: 64.0, ..RefineOptions::default() };
        median_improve(&inst, &fp, &mut pos, &opts);
        assert!((pos[0].x - 30.0).abs() < 1e-9 && (pos[0].y - 20.0).abs() < 1e-9, "{:?}", pos[0]);
    }

    #[test]
    fn all_fixed_port_nets_leave_nothing_to_move() {
        // nets made of fixed ports only: no cell appears on any net, so
        // every cell is isolated and refinement is a no-op
        let mut inst = PlaceInstance { cell_width: vec![1.92; 3], nets: Vec::new() };
        inst.nets.push(PlaceNet {
            pins: vec![PinRef::Fixed(Point::new(0.0, 0.0)), PinRef::Fixed(Point::new(9.0, 9.0))],
        });
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 50.0);
        let mut pos = vec![Point::new(3.0, 3.0), Point::new(6.0, 6.0), Point::new(9.0, 9.0)];
        let before = pos.clone();
        assert_eq!(median_improve(&inst, &fp, &mut pos, &RefineOptions::default()), 0);
        assert_eq!(pos, before);
    }

    #[test]
    fn isolated_cells_stay_put() {
        let inst = PlaceInstance { cell_width: vec![1.92; 2], nets: Vec::new() };
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 50.0);
        let mut pos = vec![Point::new(5.0, 5.0), Point::new(20.0, 20.0)];
        let before = pos.clone();
        median_improve(&inst, &fp, &mut pos, &RefineOptions::default());
        assert_eq!(pos, before);
    }
}
