//! The placement hypergraph and builders from the two netlist forms.

use crate::image::Floorplan;
use casyn_netlist::mapped::{MappedNetlist, SignalRef};
use casyn_netlist::subject::{BaseKind, SubjectGraph};
use casyn_netlist::Point;

/// Nominal width, in micrometres, of one technology-independent base gate
/// on the layout image (3 sites of 0.64 µm).
pub const BASE_GATE_WIDTH: f64 = 1.92;

/// One pin of a placement net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PinRef {
    /// A movable cell, by index.
    Cell(usize),
    /// A fixed terminal (I/O port) at the given position.
    Fixed(Point),
}

/// A placement net: a set of pins to be kept close.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlaceNet {
    /// The pins of the net.
    pub pins: Vec<PinRef>,
}

/// A placement problem: movable cells with widths, connected by nets.
#[derive(Debug, Clone, Default)]
pub struct PlaceInstance {
    /// Width of each movable cell in micrometres.
    pub cell_width: Vec<f64>,
    /// The nets.
    pub nets: Vec<PlaceNet>,
}

impl PlaceInstance {
    /// Number of movable cells.
    pub fn num_cells(&self) -> usize {
        self.cell_width.len()
    }

    /// Total movable cell width.
    pub fn total_width(&self) -> f64 {
        self.cell_width.iter().sum()
    }

    /// Per-cell adjacency: the nets touching each cell.
    pub fn nets_of_cells(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cell_width.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            for pin in &net.pins {
                if let PinRef::Cell(c) = pin {
                    out[*c].push(ni);
                }
            }
        }
        out
    }
}

/// A placement instance built from a subject graph, with the bookkeeping
/// to translate cell positions back to graph vertices.
#[derive(Debug, Clone)]
pub struct SubjectInstance {
    /// The placement problem (one movable cell per base gate).
    pub instance: PlaceInstance,
    /// For each subject vertex, its movable-cell index (`None` for primary
    /// inputs, which are fixed ports).
    pub cell_of_vertex: Vec<Option<usize>>,
    /// For each subject vertex, its fixed port position (inputs only).
    pub fixed_of_vertex: Vec<Option<Point>>,
}

/// Builds the placement problem of a subject graph on `fp`: every base
/// gate is a movable cell of uniform width; primary inputs and outputs are
/// fixed peripheral ports; one net per driven signal.
pub fn from_subject(graph: &SubjectGraph, fp: &Floorplan) -> SubjectInstance {
    let (pi_pos, po_pos) = fp.assign_ports(graph.inputs().len(), graph.outputs().len());
    let mut cell_of_vertex: Vec<Option<usize>> = vec![None; graph.num_vertices()];
    let mut fixed_of_vertex: Vec<Option<Point>> = vec![None; graph.num_vertices()];
    let mut instance = PlaceInstance::default();
    for id in graph.ids() {
        if graph.kind(id) != BaseKind::Input {
            cell_of_vertex[id.index()] = Some(instance.cell_width.len());
            instance.cell_width.push(BASE_GATE_WIDTH);
        }
    }
    for ((_, id), pos) in graph.inputs().iter().zip(&pi_pos) {
        fixed_of_vertex[id.index()] = Some(*pos);
    }
    // one net per driver with fanout
    let fanout = graph.fanout_lists();
    let mut po_pins: Vec<Vec<Point>> = vec![Vec::new(); graph.num_vertices()];
    for ((_, id), pos) in graph.outputs().iter().zip(&po_pos) {
        po_pins[id.index()].push(*pos);
    }
    for id in graph.ids() {
        let sinks = &fanout[id.index()];
        let pos_pins = &po_pins[id.index()];
        if sinks.is_empty() && pos_pins.is_empty() {
            continue;
        }
        let mut net = PlaceNet::default();
        match cell_of_vertex[id.index()] {
            Some(c) => net.pins.push(PinRef::Cell(c)),
            None => {
                net.pins.push(PinRef::Fixed(fixed_of_vertex[id.index()].expect("input has port")))
            }
        }
        for s in sinks {
            net.pins.push(PinRef::Cell(cell_of_vertex[s.index()].expect("sink is a gate")));
        }
        for p in pos_pins {
            net.pins.push(PinRef::Fixed(*p));
        }
        instance.nets.push(net);
    }
    SubjectInstance { instance, cell_of_vertex, fixed_of_vertex }
}

/// Builds the placement problem of a mapped netlist. Port positions must
/// already be assigned on the netlist (see
/// [`assign_mapped_ports`]); cells keep their index.
pub fn from_mapped(nl: &MappedNetlist) -> PlaceInstance {
    let mut instance = PlaceInstance {
        cell_width: nl.cells().iter().map(|c| c.width).collect(),
        nets: Vec::new(),
    };
    for net in nl.nets() {
        let mut pn = PlaceNet::default();
        match net.driver {
            SignalRef::Cell(c) => pn.pins.push(PinRef::Cell(c as usize)),
            SignalRef::Pi(i) => pn.pins.push(PinRef::Fixed(nl.input_pos(i))),
        }
        for (c, _) in &net.sinks {
            pn.pins.push(PinRef::Cell(*c as usize));
        }
        for o in &net.po_sinks {
            pn.pins.push(PinRef::Fixed(nl.output_pos(*o)));
        }
        if pn.pins.len() >= 2 {
            instance.nets.push(pn);
        }
    }
    instance
}

/// Assigns peripheral port positions to a mapped netlist from the
/// floorplan (inputs left, outputs right), mirroring
/// [`Floorplan::assign_ports`].
pub fn assign_mapped_ports(nl: &mut MappedNetlist, fp: &Floorplan) {
    let (pi_pos, po_pos) = fp.assign_ports(nl.input_names().len(), nl.outputs().len());
    for (i, p) in pi_pos.iter().enumerate() {
        nl.set_input_pos(i as u32, *p);
    }
    for (o, p) in po_pos.iter().enumerate() {
        nl.set_output_pos(o as u32, *p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::mapped::MappedCell;

    fn tiny_graph() -> SubjectGraph {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("y", i);
        g
    }

    #[test]
    fn subject_instance_shape() {
        let g = tiny_graph();
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 40.0);
        let s = from_subject(&g, &fp);
        assert_eq!(s.instance.num_cells(), 2); // nand + inv
                                               // nets: a->nand, b->nand, nand->inv, inv->PO
        assert_eq!(s.instance.nets.len(), 4);
        // input nets have a fixed driver pin
        let fixed_driver_nets =
            s.instance.nets.iter().filter(|n| matches!(n.pins[0], PinRef::Fixed(_))).count();
        assert_eq!(fixed_driver_nets, 2);
        assert!((s.instance.total_width() - 2.0 * BASE_GATE_WIDTH).abs() < 1e-9);
    }

    #[test]
    fn dangling_gates_make_no_nets() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let _dead = g.add_inv(a); // no PO
        let fp = Floorplan::with_rows_and_area(2, 1000.0);
        let s = from_subject(&g, &fp);
        // one net: a -> inv; the inv output drives nothing
        assert_eq!(s.instance.nets.len(), 1);
    }

    #[test]
    fn mapped_instance_from_netlist() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let c = nl.add_cell(MappedCell {
            lib_cell: 0,
            name: "IV".into(),
            inputs: vec![a],
            area: 8.192,
            width: 1.28,
            pos: Point::default(),
            source_tree: None,
        });
        nl.add_output("y", c);
        let fp = Floorplan::with_rows_and_area(2, 1000.0);
        assign_mapped_ports(&mut nl, &fp);
        let inst = from_mapped(&nl);
        assert_eq!(inst.num_cells(), 1);
        assert_eq!(inst.nets.len(), 2); // a->cell, cell->PO
        assert_eq!(nl.input_pos(0).x, 0.0);
        assert!((nl.output_pos(0).x - fp.die_width).abs() < 1e-9);
    }

    #[test]
    fn nets_of_cells_adjacency() {
        let g = tiny_graph();
        let fp = Floorplan::with_rows_and_area(4, 1000.0);
        let s = from_subject(&g, &fp);
        let adj = s.instance.nets_of_cells();
        assert_eq!(adj.len(), 2);
        // the NAND cell touches nets a, b and nand->inv
        assert_eq!(adj[0].len(), 3);
        // the INV touches nand->inv and inv->PO
        assert_eq!(adj[1].len(), 2);
    }
}
