//! The layout image: die outline, standard-cell rows and peripheral port
//! assignment.

use casyn_netlist::Point;

/// Standard-cell row height in micrometres (matches
/// `casyn_library::ROW_HEIGHT`; duplicated here to keep this crate free of
/// a library dependency).
pub const ROW_HEIGHT: f64 = 6.4;

/// A fixed die with horizontal standard-cell rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Die width in micrometres.
    pub die_width: f64,
    /// Die height in micrometres.
    pub die_height: f64,
    /// Number of standard-cell rows (`die_height / ROW_HEIGHT`).
    pub num_rows: usize,
}

impl Floorplan {
    /// Builds a floorplan from a row count and a total die area — the way
    /// the paper specifies its experiments ("die size was fixed to
    /// 207062 µm² … corresponding to 71 standard cell rows").
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `die_area` is not positive.
    pub fn with_rows_and_area(rows: usize, die_area: f64) -> Self {
        assert!(rows > 0 && die_area > 0.0);
        let die_height = rows as f64 * ROW_HEIGHT;
        Floorplan { die_width: die_area / die_height, die_height, num_rows: rows }
    }

    /// Builds a floorplan from a die area and aspect ratio
    /// (`width / height`), rounding the height to whole rows.
    ///
    /// # Panics
    ///
    /// Panics if the area or aspect ratio is not positive.
    pub fn with_area(die_area: f64, aspect: f64) -> Self {
        assert!(die_area > 0.0 && aspect > 0.0);
        let height = (die_area / aspect).sqrt();
        let rows = (height / ROW_HEIGHT).round().max(1.0) as usize;
        Self::with_rows_and_area(rows, die_area)
    }

    /// Total die area in square micrometres.
    pub fn die_area(&self) -> f64 {
        self.die_width * self.die_height
    }

    /// Vertical centre of row `r` (row 0 at the bottom).
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rows`.
    pub fn row_y(&self, r: usize) -> f64 {
        assert!(r < self.num_rows);
        (r as f64 + 0.5) * ROW_HEIGHT
    }

    /// The row whose band contains `y`, clamped to valid rows.
    pub fn row_of(&self, y: f64) -> usize {
        ((y / ROW_HEIGHT).floor().max(0.0) as usize).min(self.num_rows - 1)
    }

    /// Utilization of a netlist with the given total cell area, as the
    /// percentage the paper reports (`cell area / die area × 100`).
    pub fn utilization_pct(&self, cell_area: f64) -> f64 {
        100.0 * cell_area / self.die_area()
    }

    /// Assigns port positions around the periphery: inputs evenly along
    /// the left edge, outputs along the right edge (the classic
    /// left-to-right dataflow pin assignment).
    pub fn assign_ports(&self, num_inputs: usize, num_outputs: usize) -> (Vec<Point>, Vec<Point>) {
        let spread = |n: usize, x: f64| -> Vec<Point> {
            (0..n)
                .map(|i| Point::new(x, (i as f64 + 0.5) * self.die_height / n.max(1) as f64))
                .collect()
        };
        (spread(num_inputs, 0.0), spread(num_outputs, self.die_width))
    }

    /// Clamps a point into the die.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.die_width), p.y.clamp(0.0, self.die_height))
    }

    /// A floorplan with the same width but `extra` additional rows — the
    /// paper's "introducing more routing resources" relaxation step.
    pub fn with_extra_rows(&self, extra: usize) -> Floorplan {
        Floorplan {
            die_width: self.die_width,
            die_height: (self.num_rows + extra) as f64 * ROW_HEIGHT,
            num_rows: self.num_rows + extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spla_floorplan_matches_paper() {
        // 207062 um^2, 71 rows (Table 2 experiment)
        let fp = Floorplan::with_rows_and_area(71, 207_062.0);
        assert_eq!(fp.num_rows, 71);
        assert!((fp.die_area() - 207_062.0).abs() < 1e-6);
        assert!((fp.die_height - 454.4).abs() < 1e-9);
        // utilization of the paper's K=0 netlist: 126521/207062 = 61.1%
        assert!((fp.utilization_pct(126_521.0) - 61.1).abs() < 0.05);
    }

    #[test]
    fn with_area_rounds_to_rows() {
        let fp = Floorplan::with_area(207_062.0, 1.0);
        assert!((fp.die_height / ROW_HEIGHT).fract().abs() < 1e-9);
        assert!((fp.die_area() - 207_062.0).abs() < 1e-6);
    }

    #[test]
    fn row_geometry() {
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 640.0);
        assert!((fp.row_y(0) - 3.2).abs() < 1e-9);
        assert_eq!(fp.row_of(3.2), 0);
        assert_eq!(fp.row_of(6.4), 1);
        assert_eq!(fp.row_of(1e9), 9);
        assert_eq!(fp.row_of(-5.0), 0);
    }

    #[test]
    fn ports_on_left_and_right_edges() {
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 640.0);
        let (pis, pos) = fp.assign_ports(4, 2);
        assert_eq!(pis.len(), 4);
        assert_eq!(pos.len(), 2);
        for p in &pis {
            assert_eq!(p.x, 0.0);
            assert!(p.y > 0.0 && p.y < fp.die_height);
        }
        for p in &pos {
            assert_eq!(p.x, fp.die_width);
        }
        // evenly spread
        assert!((pis[1].y - pis[0].y - fp.die_height / 4.0).abs() < 1e-9);
    }

    #[test]
    fn extra_rows_extend_height() {
        let fp = Floorplan::with_rows_and_area(71, 207_062.0);
        let fp2 = fp.with_extra_rows(2);
        assert_eq!(fp2.num_rows, 73);
        assert!(fp2.die_area() > fp.die_area());
        assert_eq!(fp2.die_width, fp.die_width);
    }

    #[test]
    fn clamp_keeps_points_inside() {
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 640.0);
        let p = fp.clamp(Point::new(-3.0, 1e6));
        assert_eq!(p.x, 0.0);
        assert_eq!(p.y, fp.die_height);
    }
}
