//! Row legalization: snap desired cell positions into non-overlapping
//! standard-cell row slots.
//!
//! A Tetris-style greedy: cells are processed bottom-to-top by desired
//! position and assigned to the nearest row with remaining capacity; each
//! row is then packed left-to-right with minimum displacement. This is the
//! step turning the mapper's centre-of-mass positions into a legal
//! placement before global routing.

use crate::image::Floorplan;
use casyn_netlist::Point;

/// The result of row legalization.
#[derive(Debug, Clone)]
pub struct LegalizedRows {
    /// Final (legal) cell positions, centre of each cell.
    pub pos: Vec<Point>,
    /// Row index of every cell.
    pub row_of: Vec<usize>,
    /// Occupied width per row in micrometres.
    pub row_fill: Vec<f64>,
    /// Total displacement from the desired positions (micrometres).
    pub displacement: f64,
    /// Number of cells that could not be placed in any row (die too
    /// full); they are left at their desired position and counted here.
    pub overflow_cells: usize,
}

/// Legalizes `desired` positions of cells with the given widths into the
/// floorplan's rows.
///
/// # Panics
///
/// Panics if `desired.len() != widths.len()`.
pub fn legalize_rows(desired: &[Point], widths: &[f64], fp: &Floorplan) -> LegalizedRows {
    assert_eq!(desired.len(), widths.len());
    let n = desired.len();
    let mut order: Vec<usize> = (0..n).collect();
    // process by desired y then x for stable packing
    order.sort_by(|&a, &b| {
        desired[a]
            .y
            .total_cmp(&desired[b].y)
            .then(desired[a].x.total_cmp(&desired[b].x))
            .then(a.cmp(&b))
    });
    let mut row_fill = vec![0.0f64; fp.num_rows];
    let mut row_cells: Vec<Vec<usize>> = vec![Vec::new(); fp.num_rows];
    let mut row_of = vec![usize::MAX; n];
    let mut overflow_cells = 0usize;
    for &c in &order {
        let want = fp.row_of(desired[c].y);
        // search rows outward from the desired one
        let mut best: Option<(f64, usize)> = None;
        for d in 0..fp.num_rows {
            for r in [want.checked_sub(d), Some(want + d)].into_iter().flatten() {
                if r >= fp.num_rows || row_fill[r] + widths[c] > fp.die_width {
                    continue;
                }
                let cost = (r as f64 - want as f64).abs();
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, r));
                }
            }
            if best.is_some() {
                break;
            }
        }
        match best {
            Some((_, r)) => {
                row_fill[r] += widths[c];
                row_cells[r].push(c);
                row_of[c] = r;
            }
            None => overflow_cells += 1,
        }
    }
    // pack each row with Abacus-style clumping: clusters of abutted cells
    // sit at the mean of their members' ideal positions, which minimizes
    // the total (squared) displacement within the row
    let mut pos = desired.to_vec();
    let mut displacement = 0.0;
    for (r, cells) in row_cells.iter_mut().enumerate() {
        cells.sort_by(|&a, &b| desired[a].x.total_cmp(&desired[b].x).then(a.cmp(&b)));
        let y = fp.row_y(r);
        // cluster: (ideal left edge sum basis, total width, member count)
        struct Cluster {
            cells: Vec<usize>,
            width: f64,
            /// Σ (ideal_left_i − offset_of_i_in_cluster)
            anchor_sum: f64,
        }
        let mut clusters: Vec<Cluster> = Vec::new();
        for &c in cells.iter() {
            let ideal_left = desired[c].x - widths[c] / 2.0;
            clusters.push(Cluster { cells: vec![c], width: widths[c], anchor_sum: ideal_left });
            // merge while the new cluster overlaps its predecessor
            loop {
                let k = clusters.len();
                if k < 2 {
                    break;
                }
                let prev_left = cluster_left(&clusters[k - 2], fp);
                let cur_left = cluster_left(&clusters[k - 1], fp);
                if prev_left + clusters[k - 2].width <= cur_left + 1e-12 {
                    break;
                }
                // merge the last cluster into its predecessor
                let Cluster { cells: mut mc, width: mw, anchor_sum: ma } =
                    clusters.pop().expect("k >= 2");
                let prev = clusters.last_mut().expect("k >= 2");
                // members of the merged cluster are offset by prev.width
                prev.anchor_sum += ma - mc.len() as f64 * prev.width;
                prev.width += mw;
                prev.cells.append(&mut mc);
            }
        }
        for cl in &clusters {
            let left = cluster_left(cl, fp);
            let mut cursor = left;
            for &c in &cl.cells {
                pos[c] = Point::new(cursor + widths[c] / 2.0, y);
                cursor += widths[c];
                displacement += pos[c].manhattan(desired[c]);
            }
        }
        // helper: optimal (clamped) left edge of a cluster
        fn cluster_left(cl: &Cluster, fp: &Floorplan) -> f64 {
            let ideal = cl.anchor_sum / cl.cells.len() as f64;
            ideal.clamp(0.0, (fp.die_width - cl.width).max(0.0))
        }
    }
    LegalizedRows { pos, row_of, row_fill, displacement, overflow_cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 100.0) // 100 um wide, 4 rows
    }

    #[test]
    fn cells_land_on_row_centres_without_overlap() {
        let fp = fp();
        let desired = vec![
            Point::new(10.0, 3.0),
            Point::new(10.5, 3.1),
            Point::new(11.0, 3.2),
            Point::new(50.0, 20.0),
        ];
        let widths = vec![2.0, 2.0, 2.0, 4.0];
        let out = legalize_rows(&desired, &widths, &fp);
        assert_eq!(out.overflow_cells, 0);
        for (i, p) in out.pos.iter().enumerate() {
            let r = out.row_of[i];
            assert!((p.y - fp.row_y(r)).abs() < 1e-9);
        }
        // no overlap within each row
        for r in 0..fp.num_rows {
            let mut spans: Vec<(f64, f64)> = (0..desired.len())
                .filter(|&i| out.row_of[i] == r)
                .map(|i| (out.pos[i].x - widths[i] / 2.0, out.pos[i].x + widths[i] / 2.0))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "overlap in row {r}: {spans:?}");
            }
        }
    }

    #[test]
    fn full_row_spills_to_neighbours() {
        let fp = fp();
        // 60 cells of width 2 all wanting row 0 (y = 3.2): row holds 50
        let desired: Vec<Point> = (0..60).map(|i| Point::new(i as f64, 3.0)).collect();
        let widths = vec![2.0; 60];
        let out = legalize_rows(&desired, &widths, &fp);
        assert_eq!(out.overflow_cells, 0);
        assert!(out.row_fill[0] <= fp.die_width + 1e-9);
        assert!(out.row_fill[1] > 0.0, "spill must use the next row");
    }

    #[test]
    fn overfull_die_reports_overflow() {
        let fp = Floorplan::with_rows_and_area(1, 6.4 * 10.0); // one tiny row, 10 um
        let desired = vec![Point::new(0.0, 0.0); 4];
        let widths = vec![4.0; 4];
        let out = legalize_rows(&desired, &widths, &fp);
        assert_eq!(out.overflow_cells, 2);
    }

    #[test]
    fn empty_input_yields_empty_legalization() {
        let fp = fp();
        let out = legalize_rows(&[], &[], &fp);
        assert!(out.pos.is_empty() && out.row_of.is_empty());
        assert_eq!(out.row_fill, vec![0.0; fp.num_rows]);
        assert_eq!(out.displacement, 0.0);
        assert_eq!(out.overflow_cells, 0);
    }

    #[test]
    fn single_cell_snaps_to_nearest_row() {
        let fp = fp();
        // desired y between rows 1 and 2, nearer row 1; x already interior
        let y = (fp.row_y(1) + fp.row_y(2)) / 2.0 - 0.1;
        let out = legalize_rows(&[Point::new(40.0, y)], &[2.0], &fp);
        assert_eq!(out.overflow_cells, 0);
        assert_eq!(out.row_of, vec![1]);
        assert!((out.pos[0].y - fp.row_y(1)).abs() < 1e-9);
        assert!((out.pos[0].x - 40.0).abs() < 1e-9, "x should not move: {:?}", out.pos[0]);
    }

    #[test]
    fn single_cell_outside_die_is_clamped_into_it() {
        let fp = fp();
        let out = legalize_rows(&[Point::new(-50.0, 1e9)], &[4.0], &fp);
        assert_eq!(out.overflow_cells, 0);
        let left = out.pos[0].x - 2.0;
        let right = out.pos[0].x + 2.0;
        assert!(left >= -1e-9 && right <= fp.die_width + 1e-9);
        assert_eq!(out.row_of[0], fp.num_rows - 1, "huge y lands in the top row");
    }

    #[test]
    fn displacement_is_small_for_legal_input() {
        let fp = fp();
        let desired = vec![Point::new(20.0, fp.row_y(1)), Point::new(70.0, fp.row_y(2))];
        let widths = vec![2.0, 2.0];
        let out = legalize_rows(&desired, &widths, &fp);
        assert!(out.displacement < 1e-9, "already-legal cells should not move");
    }
}
