//! Uniform-grid spreading of a cell set inside a rectangle, shared by the
//! bisection placer's leaf regions and the k-way placer's gcell regions.
//!
//! Cells are laid out on a `cols × rows` grid inside the rectangle,
//! ordered by the centroid of each cell's connections (y first for the
//! row band, then x inside the band) so neighbours land on nearby slots.

use crate::instance::{PinRef, PlaceInstance};
use casyn_netlist::Point;

/// An axis-aligned rectangle inside the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Rect {
    pub x0: f64,
    pub y0: f64,
    pub x1: f64,
    pub y1: f64,
}

impl Rect {
    pub(crate) fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }
}

/// Spreads `cells` on a uniform grid inside `rect`, ordered by the
/// centroid of each cell's connections (read from the current `pos`
/// estimates) so strongly connected cells land on nearby slots.
/// Deterministic: ties resolve by cell index.
pub(crate) fn spread_in_rect(
    rect: Rect,
    cells: &[usize],
    inst: &PlaceInstance,
    nets_of_cell: &[Vec<usize>],
    pos: &mut [Point],
) {
    let n = cells.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        pos[cells[0]] = rect.center();
        return;
    }
    // centroid of every pin connected to each cell (self included)
    let centroid = |c: usize| -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        let mut k = 0.0;
        for &ni in &nets_of_cell[c] {
            for pin in &inst.nets[ni].pins {
                let p = match pin {
                    PinRef::Cell(o) => pos[*o],
                    PinRef::Fixed(p) => *p,
                };
                x += p.x;
                y += p.y;
                k += 1.0;
            }
        }
        if k == 0.0 {
            rect.center()
        } else {
            Point::new(x / k, y / k)
        }
    };
    let w = rect.x1 - rect.x0;
    let h = rect.y1 - rect.y0;
    let cols = ((n as f64 * w / h.max(1e-9)).sqrt().ceil() as usize).clamp(1, n);
    let rows = n.div_ceil(cols);
    let mut order: Vec<(Point, usize)> = cells.iter().map(|&c| (centroid(c), c)).collect();
    // row-major by centroid: y first, then x inside the row band
    order.sort_by(|a, b| a.0.y.total_cmp(&b.0.y).then(a.1.cmp(&b.1)));
    let mut slots: Vec<(usize, usize)> = Vec::with_capacity(n);
    for row in 0..rows {
        for col in 0..cols {
            if slots.len() < n {
                slots.push((row, col));
            }
        }
    }
    // within each row band, order by centroid x
    let mut i = 0;
    while i < order.len() {
        let row = slots[i].0;
        let mut j = i;
        while j < order.len() && slots[j].0 == row {
            j += 1;
        }
        order[i..j].sort_by(|a, b| a.0.x.total_cmp(&b.0.x).then(a.1.cmp(&b.1)));
        i = j;
    }
    for ((_, c), (row, col)) in order.iter().zip(&slots) {
        pos[*c] = Point::new(
            rect.x0 + (*col as f64 + 0.5) * w / cols as f64,
            rect.y0 + (*row as f64 + 0.5) * h / rows as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PlaceInstance;

    #[test]
    fn spread_fills_rect_without_duplicates() {
        let inst = PlaceInstance { cell_width: vec![1.92; 7], nets: Vec::new() };
        let rect = Rect { x0: 10.0, y0: 5.0, x1: 30.0, y1: 25.0 };
        let cells: Vec<usize> = (0..7).collect();
        let nets_of_cell = inst.nets_of_cells();
        let mut pos = vec![Point::default(); 7];
        spread_in_rect(rect, &cells, &inst, &nets_of_cell, &mut pos);
        for (i, p) in pos.iter().enumerate() {
            assert!(p.x > rect.x0 && p.x < rect.x1, "cell {i} x outside rect: {p:?}");
            assert!(p.y > rect.y0 && p.y < rect.y1, "cell {i} y outside rect: {p:?}");
            for (j, q) in pos.iter().enumerate().skip(i + 1) {
                assert!(p.manhattan(*q) > 1e-9, "cells {i} and {j} coincide at {p:?}");
            }
        }
    }

    #[test]
    fn single_cell_sits_at_center() {
        let inst = PlaceInstance { cell_width: vec![1.92], nets: Vec::new() };
        let rect = Rect { x0: 0.0, y0: 0.0, x1: 8.0, y1: 4.0 };
        let nets_of_cell = inst.nets_of_cells();
        let mut pos = vec![Point::default(); 1];
        spread_in_rect(rect, &[0], &inst, &nets_of_cell, &mut pos);
        assert_eq!(pos[0], Point::new(4.0, 2.0));
    }
}
