//! Fiduccia–Mattheyses bipartition refinement.
//!
//! Classic single-cell-move refinement with gain updates, balance
//! constraint and best-prefix rollback. Nets may carry *anchor* pseudo-pins
//! on either side, the terminal-propagation mechanism of min-cut
//! placement: an external pin pulls the net toward the side its projected
//! position falls on.

use casyn_obs as obs;
use std::collections::BinaryHeap;

/// A net in an FM problem: local member cells plus optional fixed anchors.
#[derive(Debug, Clone, Default)]
pub struct FmNet {
    /// Local cell indices on the net.
    pub cells: Vec<usize>,
    /// `anchor[s]` adds an immovable pseudo-pin on side `s`.
    pub anchor: [bool; 2],
}

/// A bipartitioning problem.
#[derive(Debug, Clone, Default)]
pub struct FmProblem {
    /// Cell weights (widths).
    pub weights: Vec<f64>,
    /// The nets.
    pub nets: Vec<FmNet>,
    /// Maximum allowed deviation of either side from half the total
    /// weight, as a fraction (0.1 = sides may hold 40–60%).
    pub balance_tol: f64,
}

impl FmProblem {
    /// Number of nets whose pins (cells + anchors) span both sides.
    pub fn cut(&self, side: &[bool]) -> usize {
        self.nets
            .iter()
            .filter(|n| {
                let mut has = [n.anchor[0], n.anchor[1]];
                for &c in &n.cells {
                    has[side[c] as usize] = true;
                }
                has[0] && has[1]
            })
            .count()
    }
}

/// Refines `side` in place with up to `passes` FM passes; returns the
/// final cut size. Each pass moves every cell at most once and keeps the
/// best balanced prefix.
///
/// # Panics
///
/// Panics if `side.len() != problem.weights.len()`.
pub fn refine(problem: &FmProblem, side: &mut [bool], passes: usize) -> usize {
    assert_eq!(side.len(), problem.weights.len());
    let n = problem.weights.len();
    if n == 0 {
        return problem.cut(side);
    }
    let total: f64 = problem.weights.iter().sum();
    let max_weight = problem.weights.iter().fold(0.0f64, |a, &b| a.max(b));
    // the bound must always admit moving at least the heaviest cell from
    // a perfectly balanced state, or refinement can deadlock
    let max_side = (total * (0.5 + problem.balance_tol)).max(total / 2.0 + max_weight);
    let nets_of_cell = {
        let mut v: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ni, net) in problem.nets.iter().enumerate() {
            for &c in &net.cells {
                v[c].push(ni);
            }
        }
        v
    };
    // batched locally; one registry flush per refine() call
    let mut passes_run = 0u64;
    let mut moves_applied = 0u64;
    for _ in 0..passes {
        passes_run += 1;
        // per-net side pin counts (anchors count as pins)
        let mut count: Vec<[i32; 2]> = problem
            .nets
            .iter()
            .map(|net| {
                let mut c = [net.anchor[0] as i32, net.anchor[1] as i32];
                for &cell in &net.cells {
                    c[side[cell] as usize] += 1;
                }
                c
            })
            .collect();
        let mut weight_on = [0.0f64; 2];
        for (c, w) in problem.weights.iter().enumerate() {
            weight_on[side[c] as usize] += w;
        }
        let gain_of = |c: usize, side: &[bool], count: &[[i32; 2]]| -> i64 {
            let s = side[c] as usize;
            let mut g = 0i64;
            for &ni in &nets_of_cell[c] {
                if count[ni][s] == 1 {
                    g += 1;
                }
                if count[ni][1 - s] == 0 {
                    g -= 1;
                }
            }
            g
        };
        let mut stamp = vec![0u64; n];
        let mut heap: BinaryHeap<(i64, u64, usize)> = BinaryHeap::new();
        for c in 0..n {
            heap.push((gain_of(c, side, &count), 0, c));
        }
        let mut locked = vec![false; n];
        let mut moves: Vec<usize> = Vec::with_capacity(n);
        let mut cum = 0i64;
        let mut best_cum = 0i64;
        let mut best_len = 0usize;
        while let Some((g, st, c)) = heap.pop() {
            if locked[c] || st != stamp[c] {
                continue;
            }
            let s = side[c] as usize;
            // balance: the destination side must stay under max_side
            if weight_on[1 - s] + problem.weights[c] > max_side {
                continue;
            }
            // apply move
            locked[c] = true;
            weight_on[s] -= problem.weights[c];
            weight_on[1 - s] += problem.weights[c];
            side[c] = !side[c];
            for &ni in &nets_of_cell[c] {
                count[ni][s] -= 1;
                count[ni][1 - s] += 1;
                // re-stamp unlocked neighbours so their gains refresh
                for &other in &problem.nets[ni].cells {
                    if !locked[other] {
                        stamp[other] += 1;
                        heap.push((gain_of(other, side, &count), stamp[other], other));
                    }
                }
            }
            cum += g;
            moves.push(c);
            if cum > best_cum {
                best_cum = cum;
                best_len = moves.len();
            }
        }
        // roll back past the best prefix
        for &c in &moves[best_len..] {
            side[c] = !side[c];
        }
        moves_applied += best_len as u64;
        if best_cum <= 0 {
            break;
        }
    }
    if obs::enabled() {
        obs::counter_add("place.fm_passes", passes_run);
        obs::counter_add("place.fm_moves", moves_applied);
    }
    problem.cut(side)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques of four cells joined by a single bridge net: FM must
    /// find the obvious min-cut of 1.
    #[test]
    fn separates_two_cliques() {
        let mut nets = Vec::new();
        for group in [0usize, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    nets.push(FmNet { cells: vec![group + i, group + j], anchor: [false, false] });
                }
            }
        }
        nets.push(FmNet { cells: vec![0, 4], anchor: [false, false] });
        let problem = FmProblem { weights: vec![1.0; 8], nets, balance_tol: 0.1 };
        // adversarial start: interleaved
        let mut side: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let cut = refine(&problem, &mut side, 4);
        assert_eq!(cut, 1, "sides: {side:?}");
        // groups must be together
        assert!(side[0] == side[1] && side[1] == side[2] && side[2] == side[3]);
        assert!(side[4] == side[5] && side[5] == side[6] && side[6] == side[7]);
        assert_ne!(side[0], side[4]);
    }

    #[test]
    fn respects_balance() {
        // star: center + 6 leaves; min cut wants all together but balance forbids
        let mut nets = Vec::new();
        for i in 1..7 {
            nets.push(FmNet { cells: vec![0, i], anchor: [false, false] });
        }
        let problem = FmProblem { weights: vec![1.0; 7], nets, balance_tol: 0.1 };
        let mut side: Vec<bool> = (0..7).map(|i| i >= 3).collect();
        refine(&problem, &mut side, 3);
        let right = side.iter().filter(|&&s| s).count();
        let left = 7 - right;
        let max = (7.0f64 * 0.6).floor() as usize;
        assert!(left <= max && right <= max, "unbalanced: {left}/{right}");
    }

    #[test]
    fn anchors_pull_cells() {
        // one cell, one net anchored right: cell should end right
        let problem = FmProblem {
            weights: vec![1.0, 1.0],
            nets: vec![
                FmNet { cells: vec![0], anchor: [false, true] },
                FmNet { cells: vec![1], anchor: [true, false] },
            ],
            balance_tol: 0.5,
        };
        let mut side = vec![false, true]; // both on the wrong side
        let cut = refine(&problem, &mut side, 3);
        assert_eq!(cut, 0);
        assert!(side[0], "cell 0 should move to the anchored side");
        assert!(!side[1]);
    }

    #[test]
    fn empty_problem() {
        let problem = FmProblem::default();
        let mut side = Vec::new();
        assert_eq!(refine(&problem, &mut side, 2), 0);
    }

    #[test]
    fn cut_counts_anchor_spans() {
        let problem = FmProblem {
            weights: vec![1.0],
            nets: vec![FmNet { cells: vec![0], anchor: [false, true] }],
            balance_tol: 0.5,
        };
        assert_eq!(problem.cut(&[false]), 1);
        assert_eq!(problem.cut(&[true]), 0);
    }
}
