//! Direct k-way, wire-aware multilevel placement.
//!
//! The die is divided into a `gx × gy` grid of gcell regions; a placement
//! is an assignment of cells to regions, with every cell sitting at its
//! region's centre until the finest level spreads them out. The instance
//! is coarsened by heavy-edge clustering ([`crate::coarsen`]), the
//! coarsest clusters are assigned to regions from connectivity-averaged
//! anchor positions, and the assignment is refined at every level by
//! k-way pass moves whose gain is the *delta in net bounding-box HPWL* —
//! the Steiner-metric surrogate the router actually feels — rather than
//! cut size.
//!
//! # Parallel refinement and determinism
//!
//! Refinement runs in rounds. Each round pairs up disjoint adjacent
//! regions in a brick-wall schedule (horizontal even / horizontal odd /
//! vertical even / vertical odd); every pair job reads only the immutable
//! start-of-round assignment snapshot plus its own two regions' cells, so
//! the jobs are independent pure functions. They fan out on the
//! [`casyn_exec::Pool`] via `par_map`, whose results come back in input
//! (pair) order, and the moves are applied after the round in that order.
//! Pairs never share a region within a round, so the applied state is
//! independent of execution interleaving: the parallel result is
//! bit-identical to the serial one by construction.

use crate::coarsen::coarsen;
use crate::image::Floorplan;
use crate::instance::{PinRef, PlaceInstance};
use crate::refine::{median_improve, RefineOptions};
use crate::spread::{spread_in_rect, Rect};
use crate::PlacerOptions;
use casyn_exec::Pool;
use casyn_netlist::Point;
use casyn_obs as obs;
use std::collections::HashMap;

/// Minimum HPWL gain for a refinement move: strictly positive so that
/// zero-gain oscillations cannot ping-pong between rounds.
const MIN_GAIN: f64 = 1e-9;

/// Inner improvement passes inside one pair job.
const PAIR_PASSES: usize = 2;

/// The gcell region grid: the die cut into `gx × gy` equal rectangles,
/// region `r` at column `r % gx`, row `r / gx` (row 0 at the bottom).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegionGrid {
    gx: usize,
    gy: usize,
    die_w: f64,
    die_h: f64,
}

impl RegionGrid {
    /// A grid of at least `k_target` regions whose cells are near-square
    /// on this die.
    fn new(fp: &Floorplan, k_target: usize) -> Self {
        let k = k_target.max(1);
        let gy = ((k as f64 * fp.die_height / fp.die_width.max(1e-9)).sqrt().round() as usize)
            .clamp(1, k);
        let gx = k.div_ceil(gy);
        RegionGrid { gx, gy, die_w: fp.die_width, die_h: fp.die_height }
    }

    fn k(&self) -> usize {
        self.gx * self.gy
    }

    fn rect(&self, r: usize) -> Rect {
        let (cx, cy) = (r % self.gx, r / self.gx);
        let (w, h) = (self.die_w / self.gx as f64, self.die_h / self.gy as f64);
        Rect {
            x0: cx as f64 * w,
            y0: cy as f64 * h,
            x1: (cx + 1) as f64 * w,
            y1: (cy + 1) as f64 * h,
        }
    }

    fn center(&self, r: usize) -> Point {
        self.rect(r).center()
    }

    /// The region whose rectangle contains `p` (clamped into the die).
    fn nearest(&self, p: Point) -> usize {
        let cx = ((p.x / (self.die_w / self.gx as f64)) as usize).min(self.gx - 1);
        let cy = ((p.y / (self.die_h / self.gy as f64)) as usize).min(self.gy - 1);
        cy * self.gx + cx
    }

    /// The four brick-wall rounds of disjoint adjacent region pairs:
    /// horizontal even / horizontal odd / vertical even / vertical odd.
    /// Within a round no region appears twice, so the pairs can refine
    /// concurrently; pair order inside a round is deterministic
    /// (row-major), which fixes the move application order.
    fn pair_rounds(&self) -> Vec<Vec<(usize, usize)>> {
        let id = |x: usize, y: usize| y * self.gx + x;
        let mut rounds = Vec::with_capacity(4);
        for offset in [0usize, 1] {
            let mut pairs = Vec::new();
            for y in 0..self.gy {
                let mut x = offset;
                while x + 1 < self.gx {
                    pairs.push((id(x, y), id(x + 1, y)));
                    x += 2;
                }
            }
            rounds.push(pairs);
        }
        for offset in [0usize, 1] {
            let mut pairs = Vec::new();
            for y in (offset..self.gy).step_by(2) {
                if y + 1 >= self.gy {
                    break;
                }
                for x in 0..self.gx {
                    pairs.push((id(x, y), id(x, y + 1)));
                }
            }
            rounds.push(pairs);
        }
        rounds
    }
}

/// Places `inst` with the direct k-way multilevel backend. Deterministic
/// for a fixed instance and options; the pool only changes wall-clock
/// time, never the result (see the module docs).
pub(crate) fn place_kway(
    inst: &PlaceInstance,
    fp: &Floorplan,
    opts: &PlacerOptions,
    pool: &Pool,
) -> Vec<Point> {
    let n = inst.num_cells();
    if n == 0 {
        return Vec::new();
    }
    let mut span = obs::trace::span("place.kway");
    span.attr_num("cells", n as f64);
    let grid = RegionGrid::new(fp, n.div_ceil(opts.region_cells.max(1)));
    span.attr_num("regions", grid.k() as f64);
    let k = grid.k();
    let cap = inst.total_width() / k as f64 * (1.0 + opts.balance_tol.max(0.0));

    // coarsen to ~2 clusters per region so the initial assignment has
    // slack to balance
    let levels = coarsen(inst, 2 * k);
    let coarsest: &PlaceInstance = levels.last().map_or(inst, |l| &l.inst);

    // initial k-way assignment of the coarsest clusters
    let anchors = anchor_positions(coarsest, fp);
    let mut assign = initial_assign(coarsest, &grid, &anchors, cap);

    // refine at the coarsest level, then uncoarsen + refine per level
    let mut level_no = 0usize;
    refine_level(coarsest, &grid, &mut assign, cap, opts, pool, level_no);
    for li in (0..levels.len()).rev() {
        level_no += 1;
        let finer: &PlaceInstance = if li == 0 { inst } else { &levels[li - 1].inst };
        assign = levels[li].cluster_of.iter().map(|&cl| assign[cl]).collect();
        refine_level(finer, &grid, &mut assign, cap, opts, pool, level_no);
    }
    obs::counter_add("place.kway.levels", (level_no + 1) as u64);

    // finest level: spread each region's cells inside its rectangle,
    // then polish toward per-cell medians (serial, deterministic)
    let nets_of_cell = inst.nets_of_cells();
    let mut pos: Vec<Point> = assign.iter().map(|&r| grid.center(r)).collect();
    let cells_of = cells_of_regions(&assign, k);
    for (r, cells) in cells_of.iter().enumerate() {
        spread_in_rect(grid.rect(r), cells, inst, &nets_of_cell, &mut pos);
    }
    // multi-resolution polish: coarse bins first so cells can cross the
    // die toward their medians, then finer bins to settle local detail.
    // The coarse stages keep a tight density cap so long-range moves
    // cannot pile cells into one corner of a large bin, and every stage
    // ends by unstacking near-coincident cells (medians pull all the
    // cells sharing a net onto one point; the density cap only gates
    // cross-bin moves) so the next stage re-optimizes from spread-out
    // positions instead of compounding the pile-up — the k-way
    // counterpart of the bisection placer's leaf spread.
    let mut polish_moves = 0usize;
    for (bin_size, max_density) in [(4.0 * 12.8, 1.2), (2.0 * 12.8, 1.4)] {
        let ropts = RefineOptions { iterations: 4, bin_size, max_density };
        polish_moves += median_improve(inst, fp, &mut pos, &ropts);
        unstack_bins(inst, fp, &nets_of_cell, &mut pos, 1.6);
    }

    // bound the gcell-level density the router will feel: push excess
    // cells out of over-full fine bins into the cheapest neighbouring
    // bin with slack, then separate any still-coincident cells
    relax_density(inst, fp, &nets_of_cell, &mut pos, 12.8, 1.8);
    unstack_bins(inst, fp, &nets_of_cell, &mut pos, 1.6);
    // last mile: greedy position swaps between nearby cells — a swap
    // permutes occupied locations, so the density profile (and therefore
    // routability) is untouched while HPWL strictly decreases
    polish_moves += swap_polish(inst, fp, &nets_of_cell, &mut pos, 12.8, 4);
    obs::counter_add("place.kway.polish_moves", polish_moves as u64);
    pos
}

/// Greedy tail polish that swaps the positions of two cells whenever the
/// swap lowers the summed HPWL of their nets. Candidate pairs come from
/// the same or right/upper neighbouring `bin_size` bin, visited in index
/// order over `passes` sweeps; a swap relocates no occupied site, so cell
/// density is invariant. Returns the number of swaps applied.
fn swap_polish(
    inst: &PlaceInstance,
    fp: &Floorplan,
    nets_of_cell: &[Vec<usize>],
    pos: &mut [Point],
    bin_size: f64,
    passes: usize,
) -> usize {
    let nx = ((fp.die_width / bin_size).ceil() as usize).max(1);
    let ny = ((fp.die_height / bin_size).ceil() as usize).max(1);
    // summed HPWL of the union of both cells' nets under current `pos`
    let pair_cost = |a: usize, b: usize, pos: &[Point]| -> f64 {
        let mut cost = 0.0;
        for (which, &c) in [a, b].iter().enumerate() {
            for &ni in &nets_of_cell[c] {
                // count shared nets once (when seen from `a`)
                if which == 1 && nets_of_cell[a].contains(&ni) {
                    continue;
                }
                let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) =
                    (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
                for pin in &inst.nets[ni].pins {
                    let p = match pin {
                        PinRef::Cell(o) => pos[*o],
                        PinRef::Fixed(p) => *p,
                    };
                    lo_x = lo_x.min(p.x);
                    hi_x = hi_x.max(p.x);
                    lo_y = lo_y.min(p.y);
                    hi_y = hi_y.max(p.y);
                }
                if lo_x.is_finite() {
                    cost += (hi_x - lo_x) + (hi_y - lo_y);
                }
            }
        }
        cost
    };
    let mut swaps = 0usize;
    for _ in 0..passes {
        let mut bin_cells: Vec<Vec<usize>> = vec![Vec::new(); nx * ny];
        for (c, p) in pos.iter().enumerate() {
            let bx = ((p.x / bin_size) as usize).min(nx - 1);
            let by = ((p.y / bin_size) as usize).min(ny - 1);
            bin_cells[by * nx + bx].push(c);
        }
        let mut moved = false;
        for b in 0..nx * ny {
            let (bx, by) = (b % nx, b / nx);
            // candidates: own bin plus right and upper neighbours, so
            // every adjacent bin pair is tried exactly once
            let mut cand = bin_cells[b].clone();
            if bx + 1 < nx {
                cand.extend_from_slice(&bin_cells[b + 1]);
            }
            if by + 1 < ny {
                cand.extend_from_slice(&bin_cells[b + nx]);
            }
            for &a in &bin_cells[b] {
                for &c in &cand {
                    if c <= a {
                        continue;
                    }
                    let before = pair_cost(a, c, pos);
                    pos.swap(a, c);
                    let after = pair_cost(a, c, pos);
                    if before - after > MIN_GAIN {
                        swaps += 1;
                        moved = true;
                    } else {
                        pos.swap(a, c); // undo
                    }
                }
            }
        }
        if !moved {
            break;
        }
    }
    swaps
}

/// Caps the per-bin cell-width density at `max_density` times the die
/// average by walking excess cells out of over-full `bin_size` bins into
/// a 4-neighbour bin with slack, cheapest HPWL delta first. A few rounds
/// let excess percolate across several bins. Deterministic: bins, cells
/// and neighbours are visited in index order, ties resolve by cell index.
fn relax_density(
    inst: &PlaceInstance,
    fp: &Floorplan,
    nets_of_cell: &[Vec<usize>],
    pos: &mut [Point],
    bin_size: f64,
    max_density: f64,
) {
    const ROUNDS: usize = 8;
    let nx = ((fp.die_width / bin_size).ceil() as usize).max(1);
    let ny = ((fp.die_height / bin_size).ceil() as usize).max(1);
    if nx * ny < 2 {
        return;
    }
    let max_w = inst.cell_width.iter().copied().fold(0.0f64, f64::max);
    // never set the cap below one cell: a die with few cells would
    // otherwise see every occupied bin as over-full and thrash
    let cap = (inst.total_width() / (nx * ny) as f64 * max_density).max(max_w);
    let bin_of = |p: Point| -> (usize, usize) {
        (((p.x / bin_size) as usize).min(nx - 1), ((p.y / bin_size) as usize).min(ny - 1))
    };
    // nearest point of bin (bx, by) to `p`, inset so bin_of maps into it
    let point_in_bin = |p: Point, bx: usize, by: usize| -> Point {
        let inset = bin_size / 16.0;
        // edge bins may be partial: keep lo <= hi even when the die
        // boundary cuts into the inset band
        let hi_x = ((bx + 1) as f64 * bin_size - inset).min(fp.die_width);
        let lo_x = (bx as f64 * bin_size + inset).min(hi_x);
        let hi_y = ((by + 1) as f64 * bin_size - inset).min(fp.die_height);
        let lo_y = (by as f64 * bin_size + inset).min(hi_y);
        Point::new(p.x.clamp(lo_x, hi_x), p.y.clamp(lo_y, hi_y))
    };
    // HPWL delta of moving cell `c` to `q` with every other pin frozen
    let move_cost = |c: usize, q: Point, pos: &[Point]| -> f64 {
        let mut delta = 0.0;
        for &ni in &nets_of_cell[c] {
            let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) =
                (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
            for pin in &inst.nets[ni].pins {
                let p = match pin {
                    PinRef::Cell(o) if *o == c => continue,
                    PinRef::Cell(o) => pos[*o],
                    PinRef::Fixed(p) => *p,
                };
                lo_x = lo_x.min(p.x);
                hi_x = hi_x.max(p.x);
                lo_y = lo_y.min(p.y);
                hi_y = hi_y.max(p.y);
            }
            if !lo_x.is_finite() {
                continue;
            }
            let hpwl = |p: Point| (hi_x.max(p.x) - lo_x.min(p.x)) + (hi_y.max(p.y) - lo_y.min(p.y));
            delta += hpwl(q) - hpwl(pos[c]);
        }
        delta
    };
    for _ in 0..ROUNDS {
        let mut fill = vec![0.0f64; nx * ny];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nx * ny];
        for (c, p) in pos.iter().enumerate() {
            let (bx, by) = bin_of(*p);
            fill[by * nx + bx] += inst.cell_width[c];
            members[by * nx + bx].push(c);
        }
        let mut moved_any = false;
        for b in 0..nx * ny {
            if fill[b] <= cap {
                continue;
            }
            let (bx, by) = (b % nx, b / nx);
            let neighbours: Vec<(usize, usize)> =
                [(bx.wrapping_sub(1), by), (bx + 1, by), (bx, by.wrapping_sub(1)), (bx, by + 1)]
                    .into_iter()
                    .filter(|&(x, y)| x < nx && y < ny)
                    .collect();
            // cheapest outbound move per member cell
            let mut candidates: Vec<(f64, usize, usize)> = Vec::new(); // (cost, cell, dest bin)
            for &c in &members[b] {
                let mut best: Option<(f64, usize)> = None;
                for &(x, y) in &neighbours {
                    let nb = y * nx + x;
                    if fill[nb] + inst.cell_width[c] > cap {
                        continue;
                    }
                    let cost = move_cost(c, point_in_bin(pos[c], x, y), pos);
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, nb));
                    }
                }
                if let Some((cost, nb)) = best {
                    candidates.push((cost, c, nb));
                }
            }
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (_, c, nb) in candidates {
                if fill[b] <= cap {
                    break;
                }
                if fill[nb] + inst.cell_width[c] > cap {
                    continue; // the chosen neighbour filled up this round
                }
                pos[c] = point_in_bin(pos[c], nb % nx, nb / nx);
                fill[b] -= inst.cell_width[c];
                fill[nb] += inst.cell_width[c];
                moved_any = true;
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// Spreads every stack of near-coincident cells (cells whose median
/// polish converged on the same point) over a small rectangle around the
/// stack, sized so each cell gets about one standard-cell slot of area.
/// Local by construction: a lone cell never moves, and a stack of `m`
/// cells moves at most ~`sqrt(m)` cell widths.
fn unstack_bins(
    inst: &PlaceInstance,
    fp: &Floorplan,
    nets_of_cell: &[Vec<usize>],
    pos: &mut [Point],
    bin_size: f64,
) {
    let nx = ((fp.die_width / bin_size).ceil() as usize).max(1);
    let ny = ((fp.die_height / bin_size).ceil() as usize).max(1);
    let mut bin_cells: Vec<Vec<usize>> = vec![Vec::new(); nx * ny];
    for (c, p) in pos.iter().enumerate() {
        let bx = ((p.x / bin_size) as usize).min(nx - 1);
        let by = ((p.y / bin_size) as usize).min(ny - 1);
        bin_cells[by * nx + bx].push(c);
    }
    for cells in bin_cells.iter().filter(|cells| cells.len() >= 2) {
        // centre of mass of the stack, one standard-cell slot per member
        let (mut cx, mut cy, mut area) = (0.0, 0.0, 0.0);
        for &c in cells {
            cx += pos[c].x;
            cy += pos[c].y;
            area += inst.cell_width[c] * (crate::image::ROW_HEIGHT / 2.0);
        }
        let (cx, cy) = (cx / cells.len() as f64, cy / cells.len() as f64);
        let half = (area.sqrt() / 2.0).clamp(bin_size / 4.0, 2.0 * bin_size);
        let rect = Rect {
            x0: (cx - half).clamp(0.0, (fp.die_width - 2.0 * half).max(0.0)),
            y0: (cy - half).clamp(0.0, (fp.die_height - 2.0 * half).max(0.0)),
            x1: (cx + half).clamp((2.0 * half).min(fp.die_width), fp.die_width),
            y1: (cy + half).clamp((2.0 * half).min(fp.die_height), fp.die_height),
        };
        spread_in_rect(rect, cells, inst, nets_of_cell, pos);
    }
}

/// Connectivity-averaged anchor positions used to seed the initial
/// assignment: clusters touching fixed pins start at their centroid,
/// the rest at the die centre, and a few Jacobi sweeps pull every
/// cluster toward the average of its connected pins.
fn anchor_positions(inst: &PlaceInstance, fp: &Floorplan) -> Vec<Point> {
    const SWEEPS: usize = 40;
    let n = inst.num_cells();
    let nets_of_cell = inst.nets_of_cells();
    let center = Point::new(fp.die_width / 2.0, fp.die_height / 2.0);
    let mut pos = vec![center; n];
    for c in 0..n {
        let (mut x, mut y, mut m) = (0.0, 0.0, 0.0);
        for &ni in &nets_of_cell[c] {
            for pin in &inst.nets[ni].pins {
                if let PinRef::Fixed(p) = pin {
                    x += p.x;
                    y += p.y;
                    m += 1.0;
                }
            }
        }
        if m > 0.0 {
            pos[c] = Point::new(x / m, y / m);
        }
    }
    for _ in 0..SWEEPS {
        let prev = pos.clone();
        for c in 0..n {
            let (mut x, mut y, mut m) = (0.0, 0.0, 0.0);
            for &ni in &nets_of_cell[c] {
                for pin in &inst.nets[ni].pins {
                    let p = match pin {
                        PinRef::Cell(o) if *o == c => continue,
                        PinRef::Cell(o) => prev[*o],
                        PinRef::Fixed(p) => *p,
                    };
                    x += p.x;
                    y += p.y;
                    m += 1.0;
                }
            }
            if m > 0.0 {
                pos[c] = Point::new(x / m, y / m);
            }
        }
    }
    pos
}

/// Assigns clusters to regions: heaviest first (ties by index), each to
/// the nearest region with remaining capacity, falling back to the
/// least-filled region when none fits.
fn initial_assign(
    inst: &PlaceInstance,
    grid: &RegionGrid,
    anchors: &[Point],
    cap: f64,
) -> Vec<usize> {
    let k = grid.k();
    let n = inst.num_cells();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| inst.cell_width[b].total_cmp(&inst.cell_width[a]).then(a.cmp(&b)));
    let mut fill = vec![0.0f64; k];
    let mut assign = vec![0usize; n];
    for &c in &order {
        let w = inst.cell_width[c];
        // fast path: the region containing the anchor, when it has room
        let home = grid.nearest(anchors[c]);
        if fill[home] + w <= cap {
            fill[home] += w;
            assign[c] = home;
            continue;
        }
        let mut best: Option<usize> = None;
        let mut best_d = f64::INFINITY;
        for (r, f) in fill.iter().enumerate() {
            if f + w > cap {
                continue;
            }
            let d = anchors[c].manhattan(grid.center(r));
            if d < best_d {
                best_d = d;
                best = Some(r);
            }
        }
        let r = best.unwrap_or_else(|| {
            // every region is at capacity: spill into the least filled
            (0..k).min_by(|&a, &b| fill[a].total_cmp(&fill[b]).then(a.cmp(&b))).expect("k >= 1")
        });
        fill[r] += w;
        assign[c] = r;
    }
    assign
}

/// Index-sorted cell lists per region.
fn cells_of_regions(assign: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); k];
    for (c, &r) in assign.iter().enumerate() {
        out[r].push(c);
    }
    out
}

/// Refines one level's assignment: `kway_passes` sweeps over the four
/// brick-wall pair rounds, each round's pair jobs fanned out on the pool
/// against the start-of-round snapshot.
fn refine_level(
    inst: &PlaceInstance,
    grid: &RegionGrid,
    assign: &mut [usize],
    cap: f64,
    opts: &PlacerOptions,
    pool: &Pool,
    level_no: usize,
) {
    let k = grid.k();
    if k < 2 || inst.num_cells() == 0 {
        return;
    }
    let mut span = obs::trace::span("place.kway.level");
    span.attr_num("level", level_no as f64);
    span.attr_num("cells", inst.num_cells() as f64);
    span.attr_num("regions", k as f64);
    let nets_of_cell = inst.nets_of_cells();
    let rounds = grid.pair_rounds();
    let mut fill = vec![0.0f64; k];
    for (c, &r) in assign.iter().enumerate() {
        fill[r] += inst.cell_width[c];
    }
    let mut level_moves = 0u64;
    for _pass in 0..opts.kway_passes.max(1) {
        let mut pass_moves = 0u64;
        for round in &rounds {
            if round.is_empty() {
                continue;
            }
            let cells_of = cells_of_regions(assign, k);
            // snapshot-round fan-out: each pair job is a pure function of
            // the frozen `assign`/`fill`, results come back in pair order
            let snapshot: &[usize] = assign;
            let moves_of_pair = pool.par_map(round, |&(a, b)| {
                refine_pair(
                    inst,
                    &nets_of_cell,
                    grid,
                    snapshot,
                    (a, &cells_of[a], fill[a]),
                    (b, &cells_of[b], fill[b]),
                    cap,
                )
            });
            for moves in &moves_of_pair {
                for &(c, to) in moves {
                    fill[assign[c]] -= inst.cell_width[c];
                    fill[to] += inst.cell_width[c];
                    assign[c] = to;
                    pass_moves += 1;
                }
            }
        }
        level_moves += pass_moves;
        if pass_moves == 0 {
            break;
        }
    }
    span.attr_num("moves", level_moves as f64);
    obs::counter_add("place.kway.moves", level_moves);
    obs::counter_add("place.kway.rounds", (rounds.len() * opts.kway_passes.max(1)) as u64);
}

/// Improves one region pair against the round snapshot: cells of `a` and
/// `b` are visited in index order and moved to the opposite region when
/// that strictly reduces the summed HPWL of their nets (evaluated with
/// pair cells at their *local* region centres and all external cells at
/// their snapshot centres), subject to the capacity cap. Returns the
/// surviving moves as `(cell, new_region)`.
#[allow(clippy::too_many_arguments)]
fn refine_pair(
    inst: &PlaceInstance,
    nets_of_cell: &[Vec<usize>],
    grid: &RegionGrid,
    snapshot: &[usize],
    (a, cells_a, fill_a): (usize, &[usize], f64),
    (b, cells_b, fill_b): (usize, &[usize], f64),
    cap: f64,
) -> Vec<(usize, usize)> {
    let mut cells: Vec<usize> = Vec::with_capacity(cells_a.len() + cells_b.len());
    cells.extend_from_slice(cells_a);
    cells.extend_from_slice(cells_b);
    cells.sort_unstable();
    let mut local: HashMap<usize, usize> = HashMap::with_capacity(cells.len());
    for &c in cells_a {
        local.insert(c, a);
    }
    for &c in cells_b {
        local.insert(c, b);
    }
    let (mut fa, mut fb) = (fill_a, fill_b);
    for _ in 0..PAIR_PASSES {
        let mut changed = false;
        for &c in &cells {
            let cur = local[&c];
            let other = if cur == a { b } else { a };
            let w = inst.cell_width[c];
            let other_fill = if other == a { fa } else { fb };
            if other_fill + w > cap {
                continue;
            }
            // delta HPWL of moving c from cur to other, everything else
            // at its current (local or snapshot) region centre
            let mut delta = 0.0;
            for &ni in &nets_of_cell[c] {
                delta += net_hpwl_at(inst, ni, c, grid.center(other), &local, snapshot, grid)
                    - net_hpwl_at(inst, ni, c, grid.center(cur), &local, snapshot, grid);
            }
            if delta < -MIN_GAIN {
                if cur == a {
                    fa -= w;
                    fb += w;
                } else {
                    fb -= w;
                    fa += w;
                }
                local.insert(c, other);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut moves = Vec::new();
    for &c in &cells {
        let r = local[&c];
        if r != snapshot[c] {
            moves.push((c, r));
        }
    }
    moves
}

/// HPWL of net `ni` with cell `c` at `c_pos`, pair cells at their local
/// region centres and everything else at its snapshot region centre.
fn net_hpwl_at(
    inst: &PlaceInstance,
    ni: usize,
    c: usize,
    c_pos: Point,
    local: &HashMap<usize, usize>,
    snapshot: &[usize],
    grid: &RegionGrid,
) -> f64 {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for pin in &inst.nets[ni].pins {
        let p = match pin {
            PinRef::Cell(o) if *o == c => c_pos,
            PinRef::Cell(o) => grid.center(local.get(o).copied().unwrap_or(snapshot[*o])),
            PinRef::Fixed(p) => *p,
        };
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if min_x > max_x {
        return 0.0;
    }
    (max_x - min_x) + (max_y - min_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PlaceNet;
    use crate::metrics::total_hpwl_of_instance;
    use crate::PlacerBackend;

    fn kway_opts() -> PlacerOptions {
        PlacerOptions { backend: PlacerBackend::KWay, ..Default::default() }
    }

    fn chain_instance(n: usize) -> PlaceInstance {
        let mut inst = PlaceInstance { cell_width: vec![1.92; n], nets: Vec::new() };
        for i in 0..n - 1 {
            inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(i), PinRef::Cell(i + 1)] });
        }
        inst
    }

    #[test]
    fn grid_geometry_and_pairs_are_disjoint() {
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 640.0);
        let grid = RegionGrid::new(&fp, 12);
        assert!(grid.k() >= 12);
        for r in 0..grid.k() {
            let rect = grid.rect(r);
            assert!(rect.x0 < rect.x1 && rect.y0 < rect.y1);
            assert_eq!(grid.nearest(grid.center(r)), r, "centre maps back to its region");
        }
        for round in grid.pair_rounds() {
            let mut seen = std::collections::HashSet::new();
            for (a, b) in round {
                assert!(seen.insert(a), "region {a} paired twice in one round");
                assert!(seen.insert(b), "region {b} paired twice in one round");
            }
        }
    }

    #[test]
    fn all_cells_inside_die() {
        let inst = chain_instance(100);
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 64.0 * 10.0);
        let pos = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
        assert_eq!(pos.len(), 100);
        for p in &pos {
            assert!(p.x >= 0.0 && p.x <= fp.die_width, "x out of die: {p:?}");
            assert!(p.y >= 0.0 && p.y <= fp.die_height, "y out of die: {p:?}");
        }
    }

    #[test]
    fn chain_places_better_than_pathological() {
        let inst = chain_instance(128);
        let fp = Floorplan::with_rows_and_area(8, 6.4 * 8.0 * 51.2);
        let pos = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
        let placed = total_hpwl_of_instance(&inst, &pos);
        let bad: Vec<Point> = (0..128)
            .map(|i| {
                if i % 2 == 0 {
                    Point::new(0.0, 0.0)
                } else {
                    Point::new(fp.die_width, fp.die_height)
                }
            })
            .collect();
        let worst = total_hpwl_of_instance(&inst, &bad);
        assert!(
            placed < worst / 4.0,
            "k-way placement ({placed:.1}) should beat the pathological one ({worst:.1})"
        );
    }

    #[test]
    fn fixed_terminals_attract_connected_cells() {
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 100.0);
        let inst = PlaceInstance {
            cell_width: vec![1.92, 1.92],
            nets: vec![
                PlaceNet { pins: vec![PinRef::Fixed(Point::new(0.0, 12.8)), PinRef::Cell(0)] },
                PlaceNet {
                    pins: vec![PinRef::Fixed(Point::new(fp.die_width, 12.8)), PinRef::Cell(1)],
                },
                PlaceNet { pins: vec![PinRef::Cell(0), PinRef::Cell(1)] },
            ],
        };
        let opts = PlacerOptions { region_cells: 1, ..kway_opts() };
        let pos = place_kway(&inst, &fp, &opts, &Pool::serial());
        assert!(
            pos[0].x < pos[1].x,
            "cell 0 ({:?}) should sit left of cell 1 ({:?})",
            pos[0],
            pos[1]
        );
    }

    #[test]
    fn parallel_refinement_is_bit_identical_to_serial() {
        for n in [37usize, 128, 300] {
            let inst = chain_instance(n);
            let fp = Floorplan::with_rows_and_area(10, 10.0 * 6.4 * (n as f64));
            let serial = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
            for workers in [2, 4, 8] {
                let par = place_kway(&inst, &fp, &kway_opts(), &Pool::new(workers));
                assert_eq!(serial, par, "n={n} workers={workers} diverged from serial");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = chain_instance(64);
        let fp = Floorplan::with_rows_and_area(8, 8.0 * 6.4 * 40.0);
        let a = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
        let b = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_cell_instances() {
        let fp = Floorplan::with_rows_and_area(2, 1000.0);
        assert!(
            place_kway(&PlaceInstance::default(), &fp, &kway_opts(), &Pool::serial()).is_empty()
        );
        let one = PlaceInstance { cell_width: vec![1.92], nets: Vec::new() };
        let pos = place_kway(&one, &fp, &kway_opts(), &Pool::serial());
        assert_eq!(pos.len(), 1);
        assert!(pos[0].x > 0.0 && pos[0].x < fp.die_width);
    }

    #[test]
    fn no_duplicate_positions_after_spread() {
        let inst = PlaceInstance { cell_width: vec![1.92; 7], nets: Vec::new() };
        let fp = Floorplan::with_rows_and_area(4, 4.0 * 6.4 * 30.0);
        let pos = place_kway(&inst, &fp, &kway_opts(), &Pool::serial());
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                assert!(
                    pos[i].manhattan(pos[j]) > 1e-9,
                    "cells {i} and {j} coincide at {:?}",
                    pos[i]
                );
            }
        }
    }

    #[test]
    fn region_capacity_is_respected_by_initial_assignment() {
        let inst = chain_instance(64);
        let fp = Floorplan::with_rows_and_area(8, 8.0 * 6.4 * 40.0);
        let grid = RegionGrid::new(&fp, 8);
        let cap = inst.total_width() / grid.k() as f64 * 1.3;
        let anchors = anchor_positions(&inst, &fp);
        let assign = initial_assign(&inst, &grid, &anchors, cap);
        let mut fill = vec![0.0f64; grid.k()];
        for (c, &r) in assign.iter().enumerate() {
            fill[r] += inst.cell_width[c];
        }
        for (r, &f) in fill.iter().enumerate() {
            assert!(f <= cap + 1e-9, "region {r} overfull: {f} > {cap}");
        }
    }
}
