//! DAG partitioning: breaking the subject graph into a forest of trees.
//!
//! Three schemes are implemented:
//!
//! * [`PartitionScheme::Dagon`] — cut *every* fanout edge of a
//!   multi-fanout vertex (Keutzer's DAGON): each multi-fanout vertex roots
//!   its own tree.
//! * [`PartitionScheme::Cone`] — MIS-style cones: a multi-fanout vertex
//!   joins the tree of the fanout first reached by a DFS from the primary
//!   outputs, so results depend on output order (the drawback the paper
//!   notes).
//! * [`PartitionScheme::PlacementDriven`] — the paper's contribution
//!   (its Fig. 2): a multi-fanout vertex joins the tree of its *nearest*
//!   fanout on the layout image; every other fanout edge is detached and
//!   becomes a tree leaf referencing the vertex's signal. Partitioning
//!   then depends only on physical locations, not on traversal order, and
//!   the resulting subject trees cluster vertices placed in the same
//!   neighbourhood.
//!
//! A vertex absorbed into a fanout's tree may still be needed elsewhere
//! (its other fanouts, or a primary output). The mapper resolves this
//! after covering by also extracting a cover rooted at that vertex from
//! the same dynamic-programming table — the logic duplication the paper
//! says is "comparable with" cone partitioning.

use casyn_netlist::subject::{BaseKind, GateId, SubjectGraph};
use casyn_netlist::Point;

/// The partitioning scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionScheme {
    /// Break at every multi-fanout vertex (DAGON).
    Dagon,
    /// DFS cones from the primary outputs (MIS-like, order dependent).
    Cone,
    /// The paper's placement-driven partitioning: keep the edge to the
    /// nearest fanout.
    PlacementDriven,
}

/// One node of a subject tree. Nodes are stored in topological order
/// (children before parents); the root is the last node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// A leaf referencing an external signal: a primary input or a gate
    /// hosted in another tree (or absorbed elsewhere in this one).
    Leaf {
        /// The subject vertex whose signal enters here.
        signal: GateId,
    },
    /// An internal inverter.
    Inv {
        /// Child tree-node index.
        child: u32,
        /// The subject gate this node corresponds to.
        gate: GateId,
    },
    /// An internal two-input NAND.
    Nand {
        /// Left child tree-node index.
        a: u32,
        /// Right child tree-node index.
        b: u32,
        /// The subject gate this node corresponds to.
        gate: GateId,
    },
}

/// A subject tree.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Nodes in topological order; the root is last.
    pub nodes: Vec<TreeNode>,
    /// The subject gate computed at the root.
    pub root_gate: GateId,
}

impl Tree {
    /// Index of the root node.
    pub fn root(&self) -> u32 {
        (self.nodes.len() - 1) as u32
    }

    /// For each node, the first index of its (contiguous, post-order)
    /// subtree: node `l` lies in the subtree of `n` iff
    /// `starts[n] <= l && l <= n`.
    pub fn subtree_starts(&self) -> Vec<u32> {
        let mut starts = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            starts[i] = match node {
                TreeNode::Leaf { .. } => i as u32,
                TreeNode::Inv { child, .. } => starts[*child as usize],
                TreeNode::Nand { a, b, .. } => starts[*a as usize].min(starts[*b as usize]),
            };
        }
        starts
    }

    /// Number of internal (non-leaf) nodes.
    pub fn num_internal(&self) -> usize {
        self.nodes.iter().filter(|n| !matches!(n, TreeNode::Leaf { .. })).count()
    }
}

/// A forest over the subject graph.
#[derive(Debug, Clone)]
pub struct Forest {
    /// The trees.
    pub trees: Vec<Tree>,
    /// For each subject vertex: the `(tree, node)` hosting it as an
    /// internal vertex. `None` for primary inputs.
    pub host: Vec<Option<(u32, u32)>>,
    /// The father assignment (the paper's `father` array): for each
    /// vertex, the fanout gate whose tree absorbed it, or `None` for tree
    /// roots and primary inputs.
    pub father: Vec<Option<GateId>>,
}

/// Partitions `graph` into a forest. `positions` (one per subject vertex)
/// are required by [`PartitionScheme::PlacementDriven`] and ignored
/// otherwise; the paper's `distance()` is Manhattan, matching rectilinear
/// routing.
///
/// # Panics
///
/// Panics if `positions.len() != graph.num_vertices()` when the
/// placement-driven scheme is selected.
pub fn partition(graph: &SubjectGraph, scheme: PartitionScheme, positions: &[Point]) -> Forest {
    let n = graph.num_vertices();
    let fanouts = graph.fanout_lists();
    let fanout_counts = graph.fanout_counts();
    let mut father: Vec<Option<GateId>> = vec![None; n];
    match scheme {
        PartitionScheme::Dagon => {
            for id in graph.ids() {
                if graph.kind(id) == BaseKind::Input {
                    continue;
                }
                // single fanout to a gate (and no PO reference): absorbed
                if fanout_counts[id.index()] == 1 && fanouts[id.index()].len() == 1 {
                    father[id.index()] = Some(fanouts[id.index()][0]);
                }
            }
        }
        PartitionScheme::Cone => {
            // DFS from primary outputs in declaration order; the first
            // fanout to reach a vertex becomes its father
            let mut visited = vec![false; n];
            let mut stack: Vec<GateId> = Vec::new();
            for (_, po) in graph.outputs() {
                stack.push(*po);
                while let Some(v) = stack.pop() {
                    if visited[v.index()] {
                        continue;
                    }
                    visited[v.index()] = true;
                    for &f in graph.fanins(v) {
                        if graph.kind(f) != BaseKind::Input
                            && !visited[f.index()]
                            && father[f.index()].is_none()
                        {
                            father[f.index()] = Some(v);
                        }
                        stack.push(f);
                    }
                }
            }
            // vertices driving only POs keep father = None (roots)
        }
        PartitionScheme::PlacementDriven => {
            assert_eq!(
                positions.len(),
                n,
                "placement-driven partitioning needs one position per vertex"
            );
            for id in graph.ids() {
                if graph.kind(id) == BaseKind::Input {
                    continue;
                }
                // nearest fanout gate by Manhattan distance (the paper's
                // PDP inner loop); PO references are pads, not gates, so
                // they never become fathers
                let mut best: Option<(f64, GateId)> = None;
                for &u in &fanouts[id.index()] {
                    let d = positions[id.index()].manhattan(positions[u.index()]);
                    if best.is_none_or(|(bd, bu)| d < bd || (d == bd && u < bu)) {
                        best = Some((d, u));
                    }
                }
                father[id.index()] = best.map(|(_, u)| u);
            }
        }
    }
    build_forest(graph, father)
}

/// Builds the forest implied by a father assignment.
fn build_forest(graph: &SubjectGraph, father: Vec<Option<GateId>>) -> Forest {
    let n = graph.num_vertices();
    let mut host: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut trees: Vec<Tree> = Vec::new();
    // roots: non-input gates without a father
    for root in graph.ids() {
        if graph.kind(root) == BaseKind::Input || father[root.index()].is_some() {
            continue;
        }
        let tree_idx = trees.len() as u32;
        let mut nodes: Vec<TreeNode> = Vec::new();
        // iterative post-order build
        build_subtree(graph, &father, root, tree_idx, &mut nodes, &mut host);
        trees.push(Tree { nodes, root_gate: root });
    }
    Forest { trees, host, father }
}

/// Recursively materializes the subtree computing `gate` into `nodes`,
/// returning its node index. A fanin is internal exactly when its father
/// is `gate` (and it has not been used as internal by the other NAND slot,
/// which matters for `nand(x, x)` degeneracies).
fn build_subtree(
    graph: &SubjectGraph,
    father: &[Option<GateId>],
    gate: GateId,
    tree_idx: u32,
    nodes: &mut Vec<TreeNode>,
    host: &mut Vec<Option<(u32, u32)>>,
) -> u32 {
    let child_node = |graph: &SubjectGraph,
                      father: &[Option<GateId>],
                      f: GateId,
                      already_internal: bool,
                      nodes: &mut Vec<TreeNode>,
                      host: &mut Vec<Option<(u32, u32)>>|
     -> u32 {
        let internal = graph.kind(f) != BaseKind::Input
            && father[f.index()] == Some(gate)
            && !already_internal;
        if internal {
            build_subtree(graph, father, f, tree_idx, nodes, host)
        } else {
            let idx = nodes.len() as u32;
            nodes.push(TreeNode::Leaf { signal: f });
            idx
        }
    };
    let idx = match graph.kind(gate) {
        BaseKind::Input => unreachable!("inputs are never internal"),
        BaseKind::Inv => {
            let f = graph.fanins(gate)[0];
            let c = child_node(graph, father, f, false, nodes, host);
            let idx = nodes.len() as u32;
            nodes.push(TreeNode::Inv { child: c, gate });
            idx
        }
        BaseKind::Nand2 => {
            let fa = graph.fanins(gate)[0];
            let fb = graph.fanins(gate)[1];
            let a = child_node(graph, father, fa, false, nodes, host);
            // nand(x, x): the second slot must become a leaf
            let b = child_node(graph, father, fb, fa == fb, nodes, host);
            let idx = nodes.len() as u32;
            nodes.push(TreeNode::Nand { a, b, gate });
            idx
        }
    };
    host[gate.index()] = Some((tree_idx, idx));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a, b inputs; n = nand(a,b); i1 = inv(n); i2 = inv(n);
    /// outputs from i1 and i2 — n is a multi-fanout vertex.
    fn diamond() -> (SubjectGraph, GateId, GateId, GateId) {
        let mut g = SubjectGraph::without_hashing();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i1 = g.add_inv(n);
        let i2 = g.add_inv(n);
        g.add_output("o1", i1);
        g.add_output("o2", i2);
        (g, n, i1, i2)
    }

    fn uniform_positions(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn dagon_breaks_at_multifanout() {
        let (g, n, i1, i2) = diamond();
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        // three trees: one rooted at n, one at i1, one at i2
        assert_eq!(f.trees.len(), 3);
        assert!(f.father[n.index()].is_none());
        let roots: Vec<GateId> = f.trees.iter().map(|t| t.root_gate).collect();
        assert!(roots.contains(&n) && roots.contains(&i1) && roots.contains(&i2));
        // the inverter trees see n as a leaf
        for t in &f.trees {
            if t.root_gate == i1 || t.root_gate == i2 {
                assert!(t
                    .nodes
                    .iter()
                    .any(|nd| matches!(nd, TreeNode::Leaf { signal } if *signal == n)));
            }
        }
    }

    #[test]
    fn dagon_keeps_single_fanout_chains_together() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("o", i);
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        assert_eq!(f.trees.len(), 1);
        assert_eq!(f.trees[0].root_gate, i);
        assert_eq!(f.trees[0].num_internal(), 2);
        // leaves are the two inputs
        let leaves = f.trees[0].nodes.iter().filter(|n| matches!(n, TreeNode::Leaf { .. })).count();
        assert_eq!(leaves, 2);
    }

    #[test]
    fn placement_driven_follows_nearest_fanout() {
        let (g, n, i1, i2) = diamond();
        // place i2 right next to n, i1 far away
        let mut pos = uniform_positions(g.num_vertices());
        pos[n.index()] = Point::new(10.0, 0.0);
        pos[i1.index()] = Point::new(100.0, 0.0);
        pos[i2.index()] = Point::new(11.0, 0.0);
        let f = partition(&g, PartitionScheme::PlacementDriven, &pos);
        assert_eq!(f.father[n.index()], Some(i2), "n must join its nearest fanout i2");
        // trees rooted at i1 and i2 only; n is internal to i2's tree
        assert_eq!(f.trees.len(), 2);
        let (t, _) = f.host[n.index()].unwrap();
        assert_eq!(f.trees[t as usize].root_gate, i2);
        // i1's tree references n as a leaf
        let t1 = f.trees.iter().find(|t| t.root_gate == i1).unwrap();
        assert!(t1.nodes.iter().any(|nd| matches!(nd, TreeNode::Leaf { signal } if *signal == n)));
    }

    #[test]
    fn placement_driven_is_order_independent_but_position_dependent() {
        let (g, n, i1, i2) = diamond();
        let mut pos = uniform_positions(g.num_vertices());
        // flip the geometry: i1 near, i2 far
        pos[n.index()] = Point::new(10.0, 0.0);
        pos[i1.index()] = Point::new(11.0, 0.0);
        pos[i2.index()] = Point::new(100.0, 0.0);
        let f = partition(&g, PartitionScheme::PlacementDriven, &pos);
        assert_eq!(f.father[n.index()], Some(i1));
    }

    #[test]
    fn cone_scheme_absorbs_by_dfs_order() {
        let (g, n, i1, _i2) = diamond();
        let f = partition(&g, PartitionScheme::Cone, &[]);
        // DFS starts from o1 (declared first), so n joins i1's cone
        assert_eq!(f.father[n.index()], Some(i1));
        assert_eq!(f.trees.len(), 2);
    }

    #[test]
    fn every_gate_hosted_exactly_once() {
        let (g, ..) = diamond();
        for scheme in [PartitionScheme::Dagon, PartitionScheme::Cone] {
            let f = partition(&g, scheme, &[]);
            for id in g.ids() {
                match g.kind(id) {
                    BaseKind::Input => assert!(f.host[id.index()].is_none()),
                    _ => {
                        let (t, nidx) = f.host[id.index()].expect("gate hosted");
                        let node = &f.trees[t as usize].nodes[nidx as usize];
                        match node {
                            TreeNode::Inv { gate, .. } | TreeNode::Nand { gate, .. } => {
                                assert_eq!(*gate, id)
                            }
                            TreeNode::Leaf { .. } => panic!("host must be internal"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nand_of_same_signal_becomes_leaf_on_second_slot() {
        let mut g = SubjectGraph::without_hashing();
        let a = g.add_input("a");
        let i = g.add_inv(a);
        let n = g.add_nand2(i, i);
        g.add_output("o", n);
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        // i has fanout 2 (two slots of n) -> it is its own root in DAGON
        let t = f.trees.iter().find(|t| t.root_gate == n).unwrap();
        let leaves = t
            .nodes
            .iter()
            .filter(|nd| matches!(nd, TreeNode::Leaf { signal } if *signal == i))
            .count();
        assert_eq!(leaves, 2);
    }

    #[test]
    fn roots_are_last_nodes() {
        let (g, ..) = diamond();
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        for t in &f.trees {
            match &t.nodes[t.root() as usize] {
                TreeNode::Inv { gate, .. } | TreeNode::Nand { gate, .. } => {
                    assert_eq!(*gate, t.root_gate)
                }
                TreeNode::Leaf { .. } => panic!("root cannot be a leaf"),
            }
        }
    }
}
