//! Boolean matching: cut enumeration + truth-table canonization.
//!
//! Structural pattern matching (the DAGON/[`crate::matcher`] approach the
//! paper uses) only finds cells whose NAND2/INV decomposition is embedded
//! verbatim in the subject tree. Boolean matching instead enumerates
//! *cuts* of each tree node (up to four leaves), computes the node's
//! function over the cut as a truth table, canonizes it under input
//! permutation, and looks the P-class up in a table built from the
//! library — finding every match the cell's function admits regardless of
//! decomposition (Mailhot–De Micheli). The produced [`Match`]es are
//! interchangeable with structural ones, so the same covering DP runs on
//! either.

use crate::matcher::Match;
use crate::partition::{Tree, TreeNode};
use casyn_library::Library;
use casyn_netlist::subject::GateId;
use std::collections::HashMap;

/// Maximum cut width (inputs of a match). The library tops out at
/// four-input cells.
pub const MAX_CUT: usize = 4;
/// Maximum cuts kept per node (priority cuts).
const CUTS_PER_NODE: usize = 24;

/// A truth table over up to [`MAX_CUT`] variables, bit `i` holding the
/// output for input assignment `i`.
pub type TruthTable = u16;

/// Precomputed Boolean-matching table for a library: canonical truth
/// table → `(cell, input permutation)` of the cheapest matching cell.
#[derive(Debug, Clone)]
pub struct BoolMatcher {
    /// canonical (tt, arity) → (cell id, permutation mapping cut-leaf
    /// position -> cell pin)
    table: HashMap<(TruthTable, u8), (u32, Vec<u8>)>,
}

impl BoolMatcher {
    /// Builds the matcher table from a library (sequential masters are
    /// skipped). For every cell, every input permutation of its function
    /// is registered so lookups need only one canonical form.
    pub fn new(lib: &Library) -> Self {
        let mut table: HashMap<(TruthTable, u8), (u32, Vec<u8>)> = HashMap::new();
        for (cid, cell) in lib.cells().iter().enumerate() {
            if cell.sequential || cell.num_pins > MAX_CUT {
                continue;
            }
            let k = cell.num_pins;
            for perm in permutations(k) {
                // tt of the cell with cut leaf j feeding pin perm[j]
                let mut tt: TruthTable = 0;
                for m in 0..(1u16 << k) {
                    let mut pins = vec![false; k];
                    for (j, p) in perm.iter().enumerate() {
                        pins[*p as usize] = m >> j & 1 == 1;
                    }
                    if cell.eval(&pins) {
                        tt |= 1 << m;
                    }
                }
                let key = (canon_tt(tt, k), k as u8);
                // keep the cheapest cell per class (then lowest id)
                let entry = table.entry(key).or_insert((cid as u32, perm.clone()));
                if lib.cell(entry.0).area > cell.area {
                    *entry = (cid as u32, perm.clone());
                }
            }
        }
        BoolMatcher { table }
    }

    /// Number of distinct function classes the library covers.
    pub fn num_classes(&self) -> usize {
        self.table.len()
    }

    /// Looks up a function over `k` cut leaves; returns `(cell,
    /// pin_of_leaf)` on a hit.
    pub fn lookup(&self, tt: TruthTable, k: usize) -> Option<(u32, Vec<u8>)> {
        // canonize the query the same way; the stored permutation tells
        // which pin each canonical position feeds, so recover the leaf
        // order by canonizing with tracking
        let (canon, perm_to_canon) = canon_tt_tracked(tt, k);
        let (cell, cell_perm) = self.table.get(&(canon, k as u8))?;
        // leaf j maps to canonical position perm_to_canon[j], which feeds
        // cell pin cell_perm[perm_to_canon[j]]
        let pins: Vec<u8> = (0..k).map(|j| cell_perm[perm_to_canon[j] as usize]).collect();
        Some((*cell, pins))
    }
}

/// All permutations of `0..k` (k ≤ 4: at most 24).
fn permutations(k: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut items: Vec<u8> = (0..k as u8).collect();
    permute(&mut items, 0, &mut out);
    out
}

fn permute(items: &mut Vec<u8>, start: usize, out: &mut Vec<Vec<u8>>) {
    if start == items.len() {
        out.push(items.clone());
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, out);
        items.swap(start, i);
    }
}

/// Applies an input permutation to a truth table: variable `j` of the
/// result reads variable `perm[j]` of the input.
fn permute_tt(tt: TruthTable, k: usize, perm: &[u8]) -> TruthTable {
    let mut out: TruthTable = 0;
    for m in 0..(1u16 << k) {
        let mut src = 0u16;
        for (j, p) in perm.iter().enumerate() {
            if m >> j & 1 == 1 {
                src |= 1 << p;
            }
        }
        if tt >> src & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

/// P-canonical form: the minimum truth table over all input permutations.
pub fn canon_tt(tt: TruthTable, k: usize) -> TruthTable {
    permutations(k).iter().map(|p| permute_tt(tt, k, p)).min().unwrap_or(tt)
}

/// Like [`canon_tt`] but also returns the permutation that achieves the
/// canonical form (mapping original variable -> canonical position).
fn canon_tt_tracked(tt: TruthTable, k: usize) -> (TruthTable, Vec<u8>) {
    let mut best: Option<(TruthTable, Vec<u8>)> = None;
    for p in permutations(k) {
        let t = permute_tt(tt, k, &p);
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, p));
        }
    }
    let (canon, perm) = best.expect("k >= 0 always yields at least one permutation");
    // perm maps canonical variable j -> original variable perm[j];
    // invert: original variable v -> canonical position
    let mut inv = vec![0u8; k];
    for (j, v) in perm.iter().enumerate() {
        inv[*v as usize] = j as u8;
    }
    (canon, inv)
}

/// Enumerates Boolean matches at every internal node of `tree`:
/// cut enumeration bottom-up, then table lookup per cut. `shared` marks
/// externally demanded nodes recorded in [`Match::through`] when covered
/// through (same contract as structural matching).
pub fn bool_matches(tree: &Tree, matcher: &BoolMatcher, shared: &[bool]) -> Vec<Vec<Match>> {
    let n = tree.nodes.len();
    // cuts[node] = list of leaf sets (sorted node indices)
    let mut cuts: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    let mut out: Vec<Vec<Match>> = vec![Vec::new(); n];
    for idx in 0..n {
        match &tree.nodes[idx] {
            TreeNode::Leaf { .. } => {
                cuts[idx] = vec![vec![idx as u32]];
            }
            TreeNode::Inv { child, .. } => {
                let mut set: Vec<Vec<u32>> = vec![vec![idx as u32]];
                for c in &cuts[*child as usize] {
                    push_cut(&mut set, c.clone());
                }
                truncate_cuts(&mut set);
                cuts[idx] = set;
            }
            TreeNode::Nand { a, b, .. } => {
                let mut set: Vec<Vec<u32>> = vec![vec![idx as u32]];
                for ca in &cuts[*a as usize] {
                    for cb in &cuts[*b as usize] {
                        let mut merged: Vec<u32> = ca.iter().chain(cb.iter()).copied().collect();
                        merged.sort_unstable();
                        merged.dedup();
                        if merged.len() <= MAX_CUT {
                            push_cut(&mut set, merged);
                        }
                    }
                }
                truncate_cuts(&mut set);
                cuts[idx] = set;
            }
        }
        if matches!(tree.nodes[idx], TreeNode::Leaf { .. }) {
            continue;
        }
        // lookup each non-trivial cut
        for cut in &cuts[idx] {
            if cut.len() == 1 && cut[0] == idx as u32 {
                continue; // the trivial cut is not a match
            }
            let Some((tt, covered, through)) = cut_function(tree, idx as u32, cut, shared) else {
                continue;
            };
            if let Some((cell, pins)) = matcher.lookup(tt, cut.len()) {
                // leaves in pin order: pins[j] is the pin of cut leaf j
                let mut leaves = vec![0u32; cut.len()];
                for (j, pin) in pins.iter().enumerate() {
                    leaves[*pin as usize] = cut[j];
                }
                out[idx].push(Match { cell, leaves, covered, through });
            }
        }
    }
    out
}

fn push_cut(set: &mut Vec<Vec<u32>>, cut: Vec<u32>) {
    if !set.contains(&cut) {
        set.push(cut);
    }
}

fn truncate_cuts(set: &mut Vec<Vec<u32>>) {
    // prefer smaller cuts (they compose into more parents)
    set.sort_by_key(|c| c.len());
    set.truncate(CUTS_PER_NODE);
}

/// Evaluates the function of `root` over the cut leaves by simulating the
/// cone; also collects the covered internal nodes and the shared ones
/// covered through. Returns `None` when the cone is malformed (a path
/// from root escapes the cut — cannot happen for genuine cuts).
fn cut_function(
    tree: &Tree,
    root: u32,
    cut: &[u32],
    shared: &[bool],
) -> Option<(TruthTable, Vec<GateId>, Vec<u32>)> {
    let k = cut.len();
    // collect cone nodes by DFS from root stopping at cut leaves
    let mut cone: Vec<u32> = Vec::new();
    let mut stack = vec![root];
    while let Some(nd) = stack.pop() {
        if cut.contains(&nd) {
            continue;
        }
        if cone.contains(&nd) {
            continue;
        }
        cone.push(nd);
        match &tree.nodes[nd as usize] {
            TreeNode::Leaf { .. } => return None, // escaped the cut
            TreeNode::Inv { child, .. } => stack.push(*child),
            TreeNode::Nand { a, b, .. } => {
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
    cone.sort_unstable(); // topological: tree nodes are in topo order
    let mut covered = Vec::with_capacity(cone.len());
    let mut through = Vec::new();
    for nd in &cone {
        match &tree.nodes[*nd as usize] {
            TreeNode::Inv { gate, .. } | TreeNode::Nand { gate, .. } => {
                covered.push(*gate);
                if *nd != root && shared.get(*nd as usize).copied().unwrap_or(false) {
                    through.push(*nd);
                }
            }
            TreeNode::Leaf { .. } => unreachable!("leaves never enter the cone"),
        }
    }
    // simulate the cone for every cut assignment
    let mut tt: TruthTable = 0;
    let mut value: HashMap<u32, bool> = HashMap::new();
    for m in 0..(1u16 << k) {
        value.clear();
        for (j, leaf) in cut.iter().enumerate() {
            value.insert(*leaf, m >> j & 1 == 1);
        }
        for nd in &cone {
            let v = match &tree.nodes[*nd as usize] {
                TreeNode::Inv { child, .. } => !value[child],
                TreeNode::Nand { a, b, .. } => !(value[a] && value[b]),
                TreeNode::Leaf { .. } => unreachable!(),
            };
            value.insert(*nd, v);
        }
        if value[&root] {
            tt |= 1 << m;
        }
    }
    Some((tt, covered, through))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{matches_at, SharedPolicy};
    use crate::partition::{partition, PartitionScheme};
    use casyn_library::corelib018;
    use casyn_netlist::subject::SubjectGraph;

    #[test]
    fn canonization_identifies_permuted_functions() {
        // AND(a, b) over 2 vars: tt = 0b1000; swapping inputs is identical
        let and_tt: TruthTable = 0b1000;
        assert_eq!(canon_tt(and_tt, 2), canon_tt(permute_tt(and_tt, 2, &[1, 0]), 2));
        // a AND !b vs !a AND b are P-equivalent
        let a_nb: TruthTable = 0b0010;
        let na_b: TruthTable = 0b0100;
        assert_eq!(canon_tt(a_nb, 2), canon_tt(na_b, 2));
        // but AND and OR are not
        let or_tt: TruthTable = 0b1110;
        assert_ne!(canon_tt(and_tt, 2), canon_tt(or_tt, 2));
    }

    #[test]
    fn matcher_table_covers_library_classes() {
        let lib = corelib018();
        let m = BoolMatcher::new(&lib);
        // at least: INV/BUF (1-in), NAND/NOR/AND/OR (2-in), the 3-in and
        // 4-in classes
        assert!(m.num_classes() >= 10, "classes: {}", m.num_classes());
        // lookup NAND2: tt over (a, b) = !(ab) = 0b0111
        let (cell, pins) = m.lookup(0b0111, 2).expect("nand2 class");
        assert_eq!(lib.cell(cell).name, "ND2");
        assert_eq!(pins.len(), 2);
    }

    #[test]
    fn finds_matches_structural_matching_misses() {
        // AOI21 subject decomposed the "wrong" way:
        // !(ab + c) = !(ab) AND !c = inv(nand( inv(nand(a,b))... no —
        // build: and(nand(a,b), inv(c)) via inv(nand(nand(a,b)', ...)).
        // Use: x = nand(a, b); y = inv(c); z = inv(nand(inv(x), y))?
        // Simpler guaranteed case: AND3 as a *left* chain
        // and(and(a,b), c) when the AN3 pattern is the right chain
        // and(a, and(b,c)) — commutative matching covers that, so use a
        // genuinely different shape: OR2 built as inv(nand(inv(nand(a,a))..))
        // Instead verify equivalence of match sets on a NAND3 both ways
        // and that bool matching finds AN2 on and-structure.
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("o", i);
        let lib = corelib018();
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let matcher = BoolMatcher::new(&lib);
        let shared = vec![false; f.trees[0].nodes.len()];
        let bm = bool_matches(&f.trees[0], &matcher, &shared);
        let root = f.trees[0].root() as usize;
        assert!(
            bm[root].iter().any(|m| lib.cell(m.cell).name == "AN2"),
            "boolean matcher must find AN2 at the AND root"
        );
        // structural matcher agrees
        let sm = matches_at(&f.trees[0], f.trees[0].root(), &lib, &shared, SharedPolicy::Price);
        assert!(sm.iter().any(|m| lib.cell(m.cell).name == "AN2"));
    }

    #[test]
    fn bool_match_truth_tables_are_correct() {
        // random-ish tree; every boolean match's cell function must equal
        // the cone function it claims to implement
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let n1 = g.add_nand2(a, b);
        let i1 = g.add_inv(n1);
        let n2 = g.add_nand2(i1, c);
        let i2 = g.add_inv(n2);
        g.add_output("o", i2);
        let lib = corelib018();
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let tree = &f.trees[0];
        let matcher = BoolMatcher::new(&lib);
        let shared = vec![false; tree.nodes.len()];
        let bm = bool_matches(tree, &matcher, &shared);
        for (idx, ms) in bm.iter().enumerate() {
            for m in ms {
                let cut: Vec<u32> = {
                    // reconstruct the cut in leaf order from the match
                    m.leaves.clone()
                };
                // recompute the cone function with leaves in pin order
                let (tt, _, _) = cut_function(tree, idx as u32, &sorted(&cut), &shared).unwrap();
                // evaluate cell on each assignment of *its pins* and
                // compare through the sorted-cut indexing
                let k = cut.len();
                let scut = sorted(&cut);
                for asg in 0..(1u16 << k) {
                    // value of each tree leaf under this sorted-cut assignment
                    let leaf_val = |node: u32| -> bool {
                        let j = scut.iter().position(|&x| x == node).unwrap();
                        asg >> j & 1 == 1
                    };
                    let pins: Vec<bool> = m.leaves.iter().map(|l| leaf_val(*l)).collect();
                    let want = tt >> asg & 1 == 1;
                    assert_eq!(
                        lib.cell(m.cell).eval(&pins),
                        want,
                        "match {} at node {idx} mis-implements its cone",
                        lib.cell(m.cell).name
                    );
                }
            }
        }
    }

    fn sorted(v: &[u32]) -> Vec<u32> {
        let mut s = v.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    }
}
