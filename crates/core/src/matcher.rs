//! Structural pattern matching of library cells on subject trees.
//!
//! A pattern matches at a tree node when its NAND/INV structure embeds
//! into the tree with pattern leaves landing on arbitrary tree nodes
//! (internal or leaf). NAND commutativity is handled by trying both child
//! orders, so libraries only need one pattern per distinct tree shape.

use crate::partition::{Tree, TreeNode};
use casyn_library::{Library, PatternTree};
use casyn_netlist::subject::GateId;

/// How matching treats tree nodes whose signal is demanded externally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedPolicy {
    /// Never cover through a shared node (DAGON semantics: minimum-area
    /// covering must not duplicate logic).
    Forbid,
    /// Allow covering through; the covering DP prices the duplication.
    Price,
}

/// One way of implementing a tree node with a library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Library cell index.
    pub cell: u32,
    /// Tree-node indices bound to each input pin, in pin order.
    pub leaves: Vec<u32>,
    /// Subject gates covered by the match (the internal embedded nodes).
    pub covered: Vec<GateId>,
    /// Tree nodes with external demand (multi-fanout vertices) that this
    /// match covers *through*: their signal disappears inside the cell,
    /// so a separate cover rooted there must be emitted for the other
    /// fanouts — logic duplication. The covering cost function charges
    /// the estimated duplicated area/wire for each.
    pub through: Vec<u32>,
}

/// Enumerates all matches of all library cells at `node` of `tree`.
/// The result is non-empty for every internal node as long as the library
/// contains an inverter and a two-input NAND.
///
/// `shared[n]` marks tree nodes whose signal is demanded outside the
/// match under construction (multi-fanout vertices absorbed by
/// placement-driven or cone partitioning). A match may be *rooted* at a
/// shared node and its leaves may *bind* to one; covering *through* one
/// is allowed but recorded in [`Match::through`], because it hides the
/// shared signal and forces a duplicate cover to be emitted for the other
/// fanouts. The covering cost function prices that duplication, so
/// minimum-area covering avoids it (degenerating to DAGON behaviour)
/// while wire-driven covering may embrace it — the paper's area-for-
/// congestion trade.
pub fn matches_at(
    tree: &Tree,
    node: u32,
    lib: &Library,
    shared: &[bool],
    policy: SharedPolicy,
) -> Vec<Match> {
    let mut out = Vec::new();
    if matches!(tree.nodes[node as usize], TreeNode::Leaf { .. }) {
        return out;
    }
    for (cid, cell) in lib.cells().iter().enumerate() {
        if cell.sequential {
            continue; // flip-flops are never produced by combinational covering
        }
        for pat in &cell.patterns {
            let mut bindings: Vec<Binding> = Vec::new();
            match_rec(
                tree,
                node,
                pat,
                &Binding::new(cell.num_pins),
                true,
                shared,
                policy,
                &mut bindings,
            );
            for b in bindings {
                let leaves: Vec<u32> =
                    b.pins.iter().map(|p| p.expect("linear pattern binds all pins")).collect();
                let m = Match { cell: cid as u32, leaves, covered: b.covered, through: b.through };
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
    }
    out
}

#[derive(Debug, Clone)]
struct Binding {
    pins: Vec<Option<u32>>,
    covered: Vec<GateId>,
    through: Vec<u32>,
}

impl Binding {
    fn new(num_pins: usize) -> Self {
        Binding { pins: vec![None; num_pins], covered: Vec::new(), through: Vec::new() }
    }
}

/// Tries to embed `pat` at `node`, extending `partial`; pushes every
/// complete embedding onto `out`. `at_root` is true only for the node the
/// whole match is rooted at, which is exempt from the barrier test.
#[allow(clippy::too_many_arguments)]
fn match_rec(
    tree: &Tree,
    node: u32,
    pat: &PatternTree,
    partial: &Binding,
    at_root: bool,
    shared: &[bool],
    policy: SharedPolicy,
    out: &mut Vec<Binding>,
) {
    let is_shared = |n: u32| !at_root && shared.get(n as usize).copied().unwrap_or(false);
    match pat {
        PatternTree::Leaf(pin) => {
            let mut b = partial.clone();
            debug_assert!(b.pins[*pin as usize].is_none(), "linear patterns bind each pin once");
            b.pins[*pin as usize] = Some(node);
            out.push(b);
        }
        PatternTree::Inv(inner) => {
            if let TreeNode::Inv { child, gate } = tree.nodes[node as usize] {
                if is_shared(node) && policy == SharedPolicy::Forbid {
                    return;
                }
                let mut b = partial.clone();
                b.covered.push(gate);
                if is_shared(node) {
                    b.through.push(node);
                }
                match_rec(tree, child, inner, &b, false, shared, policy, out);
            }
        }
        PatternTree::Nand(pa, pb) => {
            if let TreeNode::Nand { a, b, gate } = tree.nodes[node as usize] {
                if is_shared(node) && policy == SharedPolicy::Forbid {
                    return;
                }
                let mut base = partial.clone();
                base.covered.push(gate);
                if is_shared(node) {
                    base.through.push(node);
                }
                // both child orders (NAND is commutative)
                for (ta, tb) in [(a, b), (b, a)] {
                    let mut lefts = Vec::new();
                    match_rec(tree, ta, pa, &base, false, shared, policy, &mut lefts);
                    for l in lefts {
                        match_rec(tree, tb, pb, &l, false, shared, policy, out);
                    }
                    if a == b {
                        break; // identical children: one order suffices
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionScheme};
    use casyn_library::corelib018;
    use casyn_netlist::subject::SubjectGraph;

    fn single_tree(g: &SubjectGraph) -> Tree {
        let f = partition(g, PartitionScheme::Dagon, &[]);
        assert_eq!(f.trees.len(), 1, "test circuit must form one tree");
        f.trees.into_iter().next().unwrap()
    }

    #[test]
    fn inv_node_matches_inverter_cells() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let i = g.add_inv(a);
        g.add_output("o", i);
        let lib = corelib018();
        let tree = single_tree(&g);
        let ms = matches_at(&tree, tree.root(), &lib, &[], SharedPolicy::Price);
        let names: Vec<&str> = ms.iter().map(|m| lib.cell(m.cell).name.as_str()).collect();
        assert!(names.contains(&"IV"));
        assert!(names.contains(&"IVD2"));
        assert!(!names.contains(&"ND2"));
    }

    #[test]
    fn and_structure_matches_an2_and_inv() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("o", i);
        let lib = corelib018();
        let tree = single_tree(&g);
        let ms = matches_at(&tree, tree.root(), &lib, &[], SharedPolicy::Price);
        let an2 = ms.iter().find(|m| lib.cell(m.cell).name == "AN2").expect("AN2 match");
        assert_eq!(an2.covered.len(), 2);
        assert_eq!(an2.leaves.len(), 2);
        // BUF also matches? no: inv(nand) is not inv(inv)
        assert!(ms.iter().all(|m| lib.cell(m.cell).name != "BUF"));
    }

    #[test]
    fn nand3_matches_both_skews_via_commutativity() {
        let lib = corelib018();
        // shape 1: nand(a, inv(nand(b, c)))
        let mut g1 = SubjectGraph::new();
        let a = g1.add_input("a");
        let b = g1.add_input("b");
        let c = g1.add_input("c");
        let nbc = g1.add_nand2(b, c);
        let inner = g1.add_inv(nbc);
        let root = g1.add_nand2(a, inner);
        g1.add_output("o", root);
        let t1 = single_tree(&g1);
        let ms1 = matches_at(&t1, t1.root(), &lib, &[], SharedPolicy::Price);
        assert!(ms1.iter().any(|m| lib.cell(m.cell).name == "ND3"));
        // shape 2: nand(inv(nand(b, c)), a) — swapped at construction
        let mut g2 = SubjectGraph::new();
        let a = g2.add_input("a");
        let b = g2.add_input("b");
        let c = g2.add_input("c");
        let nb = g2.add_nand2(b, c);
        let inner = g2.add_inv(nb);
        let root = g2.add_nand2(inner, a);
        g2.add_output("o", root);
        let t2 = single_tree(&g2);
        let ms2 = matches_at(&t2, t2.root(), &lib, &[], SharedPolicy::Price);
        assert!(ms2.iter().any(|m| lib.cell(m.cell).name == "ND3"));
    }

    #[test]
    fn leaves_land_on_internal_nodes_too() {
        // inv(inv(x)): the outer INV can match with its leaf on the inner
        // INV (an internal node)
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let i1 = g.add_inv(a);
        let i2 = g.add_inv(i1);
        g.add_output("o", i2);
        let lib = corelib018();
        let tree = single_tree(&g);
        let ms = matches_at(&tree, tree.root(), &lib, &[], SharedPolicy::Price);
        // IV match with leaf bound to the inner INV node
        let iv = ms.iter().find(|m| lib.cell(m.cell).name == "IV").unwrap();
        let leaf_node = iv.leaves[0];
        assert!(matches!(tree.nodes[leaf_node as usize], TreeNode::Inv { .. }));
        // BUF match consuming both inverters
        let buf = ms.iter().find(|m| lib.cell(m.cell).name == "BUF").unwrap();
        assert_eq!(buf.covered.len(), 2);
    }

    #[test]
    fn no_matches_at_leaf_nodes() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let i = g.add_inv(a);
        g.add_output("o", i);
        let lib = corelib018();
        let tree = single_tree(&g);
        // node 0 is the leaf referencing `a`
        assert!(matches!(tree.nodes[0], TreeNode::Leaf { .. }));
        assert!(matches_at(&tree, 0, &lib, &[], SharedPolicy::Price).is_empty());
    }

    #[test]
    fn every_internal_node_has_a_match() {
        // a random-ish structure: all internal nodes must be coverable
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let n1 = g.add_nand2(a, b);
        let i1 = g.add_inv(n1);
        let n2 = g.add_nand2(i1, c);
        let i2 = g.add_inv(n2);
        g.add_output("o", i2);
        let lib = corelib018();
        let tree = single_tree(&g);
        for (idx, node) in tree.nodes.iter().enumerate() {
            if !matches!(node, TreeNode::Leaf { .. }) {
                assert!(
                    !matches_at(&tree, idx as u32, &lib, &[], SharedPolicy::Price).is_empty(),
                    "no match at internal node {idx}"
                );
            }
        }
    }

    #[test]
    fn aoi21_covers_four_gates() {
        // subject: inv(nand(nand(a,b), inv(c)))
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let n1 = g.add_nand2(a, b);
        let ic = g.add_inv(c);
        let n2 = g.add_nand2(n1, ic);
        let root = g.add_inv(n2);
        g.add_output("o", root);
        let lib = corelib018();
        let tree = single_tree(&g);
        let ms = matches_at(&tree, tree.root(), &lib, &[], SharedPolicy::Price);
        let aoi = ms.iter().find(|m| lib.cell(m.cell).name == "AOI21").expect("AOI21");
        assert_eq!(aoi.covered.len(), 4);
        // its three leaves are the three input leaf nodes
        for &l in &aoi.leaves {
            assert!(matches!(tree.nodes[l as usize], TreeNode::Leaf { .. }));
        }
    }
}
