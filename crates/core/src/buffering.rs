//! Fanout buffering of mapped netlists.
//!
//! The paper's introduction blames "gates with a high fanout count" for
//! wire meandering and delay; after mapping, the classic remedy is to
//! split heavily loaded nets with buffer trees. This pass finds nets
//! whose sink count exceeds a threshold, clusters the sinks spatially,
//! and inserts one buffer per cluster at the cluster's centre of mass —
//! shortening the driver's net, reducing its load, and spreading the
//! wiring.

use casyn_library::Library;
use casyn_netlist::mapped::{MappedCell, MappedNetlist};
use casyn_netlist::Point;

/// Options for [`buffer_fanout`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferOptions {
    /// Nets with more sinks than this get buffered.
    pub max_fanout: usize,
    /// Sinks per inserted buffer (cluster size).
    pub sinks_per_buffer: usize,
}

impl Default for BufferOptions {
    fn default() -> Self {
        BufferOptions { max_fanout: 16, sinks_per_buffer: 8 }
    }
}

/// Statistics of one buffering pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Nets that were split.
    pub nets_buffered: usize,
    /// Buffers inserted.
    pub buffers_inserted: usize,
}

/// Inserts buffer trees on high-fanout nets of `nl` in place. The
/// library must contain a non-inverting buffer (a single-input cell whose
/// output equals its input); primary-output connections are left on the
/// original driver so the port logic function is untouched.
///
/// # Panics
///
/// Panics if the library has no buffer cell.
pub fn buffer_fanout(nl: &mut MappedNetlist, lib: &Library, opts: &BufferOptions) -> BufferStats {
    let buf_id = lib
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.num_pins == 1 && c.eval(&[true]) && !c.eval(&[false]))
        .min_by(|a, b| a.1.area.total_cmp(&b.1.area))
        .map(|(i, _)| i as u32)
        .expect("library must contain a buffer");
    let buf = lib.cell(buf_id).clone();
    let mut stats = BufferStats::default();
    // examine current nets once; inserted buffers create small nets that
    // are below threshold by construction
    let nets = nl.nets();
    for net in nets {
        if net.sinks.len() <= opts.max_fanout {
            continue;
        }
        stats.nets_buffered += 1;
        // sort sinks by angle-free spatial order (x then y) and chunk
        let mut sinks: Vec<(u32, u32)> = net.sinks.clone();
        sinks.sort_by(|a, b| {
            let pa = nl.cells()[a.0 as usize].pos;
            let pb = nl.cells()[b.0 as usize].pos;
            pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y)).then(a.cmp(b))
        });
        for chunk in sinks.chunks(opts.sinks_per_buffer) {
            // cluster centre of mass
            let mut cx = 0.0;
            let mut cy = 0.0;
            for (c, _) in chunk {
                let p = nl.cells()[*c as usize].pos;
                cx += p.x;
                cy += p.y;
            }
            let pos = Point::new(cx / chunk.len() as f64, cy / chunk.len() as f64);
            let b = nl.add_cell(MappedCell {
                lib_cell: buf_id,
                name: buf.name.clone(),
                inputs: vec![net.driver],
                area: buf.area,
                width: buf.width,
                pos,
                source_tree: None,
            });
            stats.buffers_inserted += 1;
            for (c, pin) in chunk {
                nl.cells_mut()[*c as usize].inputs[*pin as usize] = b;
            }
        }
    }
    stats
}

/// The maximum sink count over all nets — the fanout figure the pass
/// bounds.
pub fn max_fanout(nl: &MappedNetlist) -> usize {
    nl.nets().iter().map(|n| n.sinks.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::corelib018;
    use casyn_netlist::mapped::SignalRef;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn star_netlist(fanout: usize) -> MappedNetlist {
        let lib = corelib018();
        let iv = lib.find("IV").unwrap();
        let master = lib.cell(iv).clone();
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let drv = nl.add_cell(MappedCell {
            lib_cell: iv,
            name: master.name.clone(),
            inputs: vec![a],
            area: master.area,
            width: master.width,
            pos: Point::new(0.0, 0.0),
            source_tree: None,
        });
        for k in 0..fanout {
            let s = nl.add_cell(MappedCell {
                lib_cell: iv,
                name: master.name.clone(),
                inputs: vec![drv],
                area: master.area,
                width: master.width,
                pos: Point::new((k % 10) as f64 * 10.0, (k / 10) as f64 * 10.0),
                source_tree: None,
            });
            nl.add_output(format!("o{k}"), s);
        }
        nl
    }

    #[test]
    fn splits_high_fanout_net() {
        let lib = corelib018();
        let mut nl = star_netlist(40);
        assert_eq!(max_fanout(&nl), 40);
        let stats = buffer_fanout(&mut nl, &lib, &BufferOptions::default());
        assert_eq!(stats.nets_buffered, 1);
        assert_eq!(stats.buffers_inserted, 5); // 40 sinks / 8 per buffer
        assert!(max_fanout(&nl) <= 16);
    }

    #[test]
    fn preserves_function() {
        let lib = corelib018();
        let mut nl = star_netlist(40);
        let golden = nl.clone();
        buffer_fanout(&mut nl, &lib, &BufferOptions::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let a = rng.gen::<bool>();
            assert_eq!(
                golden.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &[a]),
                nl.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &[a])
            );
        }
    }

    #[test]
    fn below_threshold_untouched() {
        let lib = corelib018();
        let mut nl = star_netlist(8);
        let cells_before = nl.num_cells();
        let stats = buffer_fanout(&mut nl, &lib, &BufferOptions::default());
        assert_eq!(stats.buffers_inserted, 0);
        assert_eq!(nl.num_cells(), cells_before);
    }

    #[test]
    fn buffers_sit_at_cluster_centroids() {
        let lib = corelib018();
        let mut nl = star_netlist(40);
        buffer_fanout(&mut nl, &lib, &BufferOptions::default());
        // every buffer must be inside the sink bounding box
        for c in nl.cells() {
            if c.name == "BUF" {
                assert!(c.pos.x >= 0.0 && c.pos.x <= 90.0);
                assert!(c.pos.y >= 0.0 && c.pos.y <= 30.0);
            }
        }
    }

    #[test]
    fn po_connections_keep_original_driver() {
        let lib = corelib018();
        let mut nl = star_netlist(40);
        let drivers_before: Vec<SignalRef> = nl.outputs().iter().map(|(_, s)| *s).collect();
        buffer_fanout(&mut nl, &lib, &BufferOptions::default());
        // outputs in this fixture are driven by the sink inverters, which
        // are cells, so they are unchanged by construction
        let drivers_after: Vec<SignalRef> = nl.outputs().iter().map(|(_, s)| *s).collect();
        assert_eq!(drivers_before, drivers_after);
    }
}
