//! The mapping driver: partition → cover → demand-driven emission.
//!
//! After covering every tree, the mapper emits library cells for exactly
//! the signals the design needs: primary outputs first, then every signal
//! referenced as a match leaf. A vertex absorbed inside another tree but
//! still required externally gets its own cover extracted from the same
//! DP table — logic duplication, as in MIS cone partitioning. Each
//! emitted cell is placed at the centre of mass of the base gates it
//! covers, realizing the paper's incremental companion-placement update.

use crate::boolmatch::{bool_matches, BoolMatcher};
use crate::cover::{cover_tree_with, CostKind, TreeCover};
use crate::partition::{partition, Forest, PartitionScheme, TreeNode};
use casyn_library::Library;
use casyn_netlist::mapped::{MappedCell, MappedNetlist, SignalRef};
use casyn_netlist::subject::{BaseKind, GateId, SubjectGraph};
use casyn_netlist::Point;
use casyn_obs as obs;
use std::collections::HashMap;

/// Mapping configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapOptions {
    /// How the subject DAG is partitioned into trees.
    pub scheme: PartitionScheme,
    /// The covering objective.
    pub cost: CostKind,
    /// Also enumerate cut-based Boolean matches (beyond the structural
    /// pattern matches) — finds cells whose decomposition differs from
    /// the subject structure, at some matching cost.
    pub boolean_matching: bool,
}

impl Default for MapOptions {
    /// DAGON defaults: multi-fanout partitioning, minimum area,
    /// structural matching only.
    fn default() -> Self {
        MapOptions { scheme: PartitionScheme::Dagon, cost: CostKind::Area, boolean_matching: false }
    }
}

/// Statistics of one mapping run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapStats {
    /// Number of subject trees.
    pub num_trees: usize,
    /// External signal demands served from covers rooted *inside* another
    /// tree (at a multi-fanout barrier node). With barrier-respecting
    /// matching these covers are shared, not duplicated; the count
    /// measures how often placement-driven absorption crossed tree
    /// boundaries.
    pub duplicated_covers: usize,
    /// Total estimated wirelength of the emitted netlist (star model over
    /// centre-of-mass positions), in micrometres.
    pub est_wirelength: f64,
}

/// The result of technology mapping.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The mapped, centre-of-mass-placed netlist.
    pub netlist: MappedNetlist,
    /// Run statistics.
    pub stats: MapStats,
}

/// Maps `graph` onto `lib`. `positions` is the technology-independent
/// placement (one point per subject vertex); it drives both the
/// placement-driven partitioning and the wire term of the cost function.
///
/// # Panics
///
/// Panics if `positions.len() != graph.num_vertices()`, or if the library
/// cannot cover some tree (it must contain an inverter and a NAND2).
pub fn map(
    graph: &SubjectGraph,
    positions: &[Point],
    lib: &Library,
    opts: &MapOptions,
) -> MapResult {
    assert_eq!(positions.len(), graph.num_vertices(), "one position per subject vertex");
    let forest = {
        let mut span = obs::trace::span("map.partition");
        let forest = partition(graph, opts.scheme, positions);
        span.attr_num("trees", forest.trees.len() as f64);
        forest
    };
    let fanout_counts = graph.fanout_counts();
    let bool_matcher = opts.boolean_matching.then(|| BoolMatcher::new(lib));
    let covers: Vec<TreeCover> = {
        let mut span = obs::trace::span("map.cover");
        span.attr_num("trees", forest.trees.len() as f64);
        forest
            .trees
            .iter()
            .map(|t| {
                // per-tree spans only for non-trivial trees: small trees
                // dominate the count but not the time, and would swamp
                // the trace
                let mut tree_span = (t.nodes.len() >= 16).then(|| {
                    let mut s = obs::trace::span("map.cover_tree");
                    s.attr_num("nodes", t.nodes.len() as f64);
                    s
                });
                let shared = shared_nodes(t, &fanout_counts);
                let extra = match &bool_matcher {
                    Some(bm) => bool_matches(t, bm, &shared),
                    None => Vec::new(),
                };
                let cover = cover_tree_with(t, lib, positions, &shared, opts.cost, &extra);
                tree_span.take();
                cover
            })
            .collect()
    };
    let mut emitter = Emitter {
        graph,
        lib,
        forest: &forest,
        covers: &covers,
        netlist: MappedNetlist::new(),
        gate_signal: HashMap::new(),
        node_signal: HashMap::new(),
        duplicated: 0,
    };
    for (i, (name, gate)) in graph.inputs().iter().enumerate() {
        emitter.netlist.add_input(name.clone());
        // seed the port at the subject vertex position; a floorplan pass
        // (assign_mapped_ports) overrides this with real pad locations
        emitter.netlist.set_input_pos(i as u32, positions[gate.index()]);
    }
    for (o, (name, gate)) in graph.outputs().iter().enumerate() {
        let sig = emitter.signal_of_gate(*gate);
        emitter.netlist.add_output(name.clone(), sig);
        emitter.netlist.set_output_pos(o as u32, positions[gate.index()]);
    }
    let est_wirelength = star_wirelength(&emitter.netlist);
    if obs::enabled() {
        obs::counter_add("partition.trees", forest.trees.len() as u64);
        obs::counter_add("map.duplicated_covers", emitter.duplicated as u64);
        obs::counter_add("map.cells_emitted", emitter.netlist.num_cells() as u64);
        obs::gauge_set("map.est_wirelength", est_wirelength);
    }
    obs::log::debug(&format!(
        "map: {} trees, {} cells, {} duplicated covers, est wirelength {est_wirelength:.1}",
        forest.trees.len(),
        emitter.netlist.num_cells(),
        emitter.duplicated
    ));
    MapResult {
        stats: MapStats {
            num_trees: forest.trees.len(),
            duplicated_covers: emitter.duplicated,
            est_wirelength,
        },
        netlist: emitter.netlist,
    }
}

/// Marks the tree nodes whose signal is demanded outside any single
/// cover: internal vertices with more than one fanout (including
/// primary-output references). A match covering through one of these is
/// charged the estimated duplication cost by the covering DP.
fn shared_nodes(tree: &crate::partition::Tree, fanout_counts: &[u32]) -> Vec<bool> {
    tree.nodes
        .iter()
        .map(|n| match n {
            TreeNode::Leaf { .. } => false,
            TreeNode::Inv { gate, .. } | TreeNode::Nand { gate, .. } => {
                fanout_counts[gate.index()] > 1
            }
        })
        .collect()
}

/// Total star wirelength (driver-to-sink Manhattan) over the netlist's
/// current positions.
pub fn star_wirelength(nl: &MappedNetlist) -> f64 {
    let mut total = 0.0;
    for net in nl.nets() {
        let d = nl.signal_pos(net.driver);
        for (c, _) in &net.sinks {
            total += d.manhattan(nl.cells()[*c as usize].pos);
        }
        for o in &net.po_sinks {
            total += d.manhattan(nl.output_pos(*o));
        }
    }
    total
}

struct Emitter<'a> {
    graph: &'a SubjectGraph,
    lib: &'a Library,
    forest: &'a Forest,
    covers: &'a [TreeCover],
    netlist: MappedNetlist,
    /// Emitted signal per subject gate (for externally required signals).
    gate_signal: HashMap<GateId, SignalRef>,
    /// Emitted signal per (tree, node).
    node_signal: HashMap<(u32, u32), SignalRef>,
    duplicated: usize,
}

impl Emitter<'_> {
    /// The mapped signal computing subject vertex `g`, emitting its cover
    /// on demand.
    fn signal_of_gate(&mut self, g: GateId) -> SignalRef {
        if let Some(s) = self.gate_signal.get(&g) {
            return *s;
        }
        let sig = if self.graph.kind(g) == BaseKind::Input {
            let idx =
                self.graph.inputs().iter().position(|(_, id)| *id == g).expect("input registered");
            SignalRef::Pi(idx as u32)
        } else {
            let (t, n) = self.forest.host[g.index()].expect("gate hosted in a tree");
            if n != self.forest.trees[t as usize].root() {
                // externally required but internal to another cover: the
                // duplication case
                self.duplicated += 1;
            }
            self.extract(t, n)
        };
        self.gate_signal.insert(g, sig);
        sig
    }

    /// Emits the chosen cover rooted at tree node `(t, n)`.
    fn extract(&mut self, t: u32, n: u32) -> SignalRef {
        if let Some(s) = self.node_signal.get(&(t, n)) {
            return *s;
        }
        let tree = &self.forest.trees[t as usize];
        let sol = &self.covers[t as usize].solutions[n as usize];
        let sig = match &tree.nodes[n as usize] {
            TreeNode::Leaf { signal } => {
                let s = self.signal_of_gate(*signal);
                // do not memoize leaves under (t, n) as cells; the gate
                // memo already covers them
                s
            }
            _ => {
                let m = sol.chosen.as_ref().expect("internal node has a match");
                // reserve the slot to guard against accidental cycles
                let inputs: Vec<SignalRef> = m
                    .leaves
                    .iter()
                    .map(|&leaf| match &tree.nodes[leaf as usize] {
                        TreeNode::Leaf { signal } => self.signal_of_gate(*signal),
                        _ => self.extract(t, leaf),
                    })
                    .collect();
                let cell = self.lib.cell(m.cell);
                self.netlist.add_cell(MappedCell {
                    lib_cell: m.cell,
                    name: cell.name.clone(),
                    inputs,
                    area: cell.area,
                    width: cell.width,
                    pos: sol.pos,
                    source_tree: Some(t),
                })
            }
        };
        self.node_signal.insert((t, n), sig);
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::corelib018;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_positions(g: &SubjectGraph) -> Vec<Point> {
        let n = g.num_vertices();
        let cols = (n as f64).sqrt().ceil() as usize;
        (0..n).map(|i| Point::new((i % cols) as f64 * 10.0, (i / cols) as f64 * 10.0)).collect()
    }

    fn assert_mapped_equivalent(g: &SubjectGraph, nl: &MappedNetlist, lib: &Library, seed: u64) {
        let n = g.inputs().len();
        let trials: Vec<Vec<bool>> = if n <= 10 {
            (0..(1u64 << n)).map(|m| (0..n).map(|i| m >> i & 1 == 1).collect()).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| (0..n).map(|_| rng.gen()).collect()).collect()
        };
        for asg in trials {
            assert_eq!(
                g.simulate_outputs(&asg),
                nl.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg),
                "mismatch at {asg:?}"
            );
        }
    }

    fn and_or_circuit() -> SubjectGraph {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let ab = g.add_and2(a, b);
        let cd = g.add_and2(c, d);
        let o = g.add_or2(ab, cd);
        g.add_output("o", o);
        g
    }

    #[test]
    fn min_area_mapping_is_equivalent() {
        let g = and_or_circuit();
        let lib = corelib018();
        let pos = grid_positions(&g);
        let r = map(&g, &pos, &lib, &MapOptions::default());
        assert_mapped_equivalent(&g, &r.netlist, &lib, 1);
        assert!(r.netlist.num_cells() >= 1);
        assert!(r.netlist.cell_area() > 0.0);
    }

    #[test]
    fn all_schemes_and_costs_are_equivalent() {
        let g = and_or_circuit();
        let lib = corelib018();
        let pos = grid_positions(&g);
        for scheme in
            [PartitionScheme::Dagon, PartitionScheme::Cone, PartitionScheme::PlacementDriven]
        {
            for cost in [
                CostKind::Area,
                CostKind::Delay,
                CostKind::AreaWire { k: 0.001 },
                CostKind::AreaWire { k: 1.0 },
            ] {
                let r = map(&g, &pos, &lib, &MapOptions { scheme, cost, ..Default::default() });
                assert_mapped_equivalent(&g, &r.netlist, &lib, 2);
            }
        }
    }

    #[test]
    fn multifanout_shared_gate_is_emitted_once_in_dagon() {
        // y1 = !(ab), y2 = !!(ab): nand shared by both outputs
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("y1", n);
        g.add_output("y2", i);
        let lib = corelib018();
        let pos = grid_positions(&g);
        let r = map(&g, &pos, &lib, &MapOptions::default());
        assert_mapped_equivalent(&g, &r.netlist, &lib, 3);
        // DAGON: nand is a tree root, emitted once: 1 ND2 + 1 IV
        assert_eq!(r.netlist.num_cells(), 2);
        assert_eq!(r.stats.duplicated_covers, 0);
    }

    #[test]
    fn placement_driven_duplicates_absorbed_logic_when_needed() {
        // n = nand(a,b) has two fanouts placed far apart; PDP absorbs it
        // into the nearest one and must duplicate for the other — unless
        // the cover happens to leave the signal visible.
        let mut g = SubjectGraph::without_hashing();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i1 = g.add_inv(n);
        let i2 = g.add_inv(n);
        g.add_output("o1", i1);
        g.add_output("o2", i2);
        let lib = corelib018();
        let mut pos = vec![Point::default(); g.num_vertices()];
        pos[a.index()] = Point::new(0.0, 0.0);
        pos[b.index()] = Point::new(0.0, 8.0);
        pos[n.index()] = Point::new(4.0, 4.0);
        pos[i1.index()] = Point::new(6.0, 4.0); // nearest
        pos[i2.index()] = Point::new(400.0, 4.0);
        let r = map(
            &g,
            &pos,
            &lib,
            &MapOptions {
                scheme: PartitionScheme::PlacementDriven,
                cost: CostKind::Area,
                ..Default::default()
            },
        );
        assert_mapped_equivalent(&g, &r.netlist, &lib, 4);
        // i1's tree contains n internally: min-area cover of inv(nand) is
        // AN2, hiding n — so o2's need for n forces a duplicate cover
        assert!(r.stats.duplicated_covers >= 1);
    }

    #[test]
    fn cells_get_center_of_mass_positions() {
        let g = and_or_circuit();
        let lib = corelib018();
        let pos = grid_positions(&g);
        let r = map(&g, &pos, &lib, &MapOptions::default());
        // every cell position must be inside the bounding box of the
        // placed subject gates
        let (mut maxx, mut maxy) = (0.0f64, 0.0f64);
        for p in &pos {
            maxx = maxx.max(p.x);
            maxy = maxy.max(p.y);
        }
        for c in r.netlist.cells() {
            assert!(c.pos.x >= 0.0 && c.pos.x <= maxx);
            assert!(c.pos.y >= 0.0 && c.pos.y <= maxy);
        }
    }

    /// With a strong wire term, the mapper may cover *through* a shared
    /// vertex and duplicate it (the paper's area-for-congestion trade);
    /// at K = 0 the same circuit maps without duplication.
    #[test]
    fn wire_term_can_buy_duplication() {
        // shared AND feeding two far-apart inverting consumers
        let mut g = SubjectGraph::without_hashing();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i1 = g.add_inv(n);
        let i2 = g.add_inv(n);
        g.add_output("o1", i1);
        g.add_output("o2", i2);
        let lib = corelib018();
        let mut pos = vec![Point::default(); g.num_vertices()];
        pos[a.index()] = Point::new(0.0, 0.0);
        pos[b.index()] = Point::new(0.0, 10.0);
        pos[n.index()] = Point::new(5.0, 5.0);
        pos[i1.index()] = Point::new(10.0, 5.0);
        pos[i2.index()] = Point::new(500.0, 5.0);
        let k0 = map(
            &g,
            &pos,
            &lib,
            &MapOptions {
                scheme: PartitionScheme::PlacementDriven,
                cost: CostKind::Area,
                ..Default::default()
            },
        );
        let kbig = map(
            &g,
            &pos,
            &lib,
            &MapOptions {
                scheme: PartitionScheme::PlacementDriven,
                cost: CostKind::AreaWire { k: 50.0 },
                ..Default::default()
            },
        );
        assert_mapped_equivalent(&g, &k0.netlist, &lib, 11);
        assert_mapped_equivalent(&g, &kbig.netlist, &lib, 12);
        // K=0 never duplicates: ND2 + 2 IV (3 cells)
        assert_eq!(k0.netlist.num_cells(), 3);
        // the high-K mapping is allowed to duplicate; area must be >= K0
        assert!(kbig.netlist.cell_area() >= k0.netlist.cell_area());
    }

    #[test]
    fn dead_logic_is_not_emitted() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let dead = g.add_nand2(a, b);
        let _deader = g.add_inv(dead);
        let live = g.add_inv(a);
        g.add_output("o", live);
        let lib = corelib018();
        let pos = grid_positions(&g);
        let r = map(&g, &pos, &lib, &MapOptions::default());
        assert_eq!(r.netlist.num_cells(), 1);
        assert_eq!(lib.cell(r.netlist.cells()[0].lib_cell).name, "IV");
    }

    #[test]
    fn po_driven_by_pi_maps_directly() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        g.add_output("o", a);
        let lib = corelib018();
        let pos = grid_positions(&g);
        let r = map(&g, &pos, &lib, &MapOptions::default());
        assert_eq!(r.netlist.num_cells(), 0);
        assert_eq!(r.netlist.outputs()[0].1, SignalRef::Pi(0));
    }

    /// Boolean matching can only improve (or tie) the min-area cover and
    /// must stay functionally correct.
    #[test]
    fn boolean_matching_is_correct_and_no_worse() {
        use casyn_logic::decompose;
        use casyn_netlist::bench::{random_pla, PlaGenConfig};
        let pla = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 18,
            min_literals: 2,
            max_literals: 5,
            mean_outputs_per_term: 1.4,
            seed: 21,
        });
        let dec = decompose(&pla.to_network());
        let (graph, _) = dec.graph.sweep();
        let lib = corelib018();
        let pos = grid_positions(&graph);
        let structural = map(&graph, &pos, &lib, &MapOptions::default());
        let boolean =
            map(&graph, &pos, &lib, &MapOptions { boolean_matching: true, ..Default::default() });
        assert_mapped_equivalent(&graph, &boolean.netlist, &lib, 31);
        assert!(
            boolean.netlist.cell_area() <= structural.netlist.cell_area() + 1e-9,
            "more matches cannot worsen the optimal cover: {} vs {}",
            boolean.netlist.cell_area(),
            structural.netlist.cell_area()
        );
    }

    #[test]
    fn larger_random_circuit_all_schemes() {
        use casyn_logic::decompose;
        use casyn_netlist::bench::{random_pla, PlaGenConfig};
        let pla = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 16,
            min_literals: 2,
            max_literals: 5,
            mean_outputs_per_term: 1.4,
            seed: 77,
        });
        let net = pla.to_network();
        let dec = decompose(&net);
        let lib = corelib018();
        let pos = grid_positions(&dec.graph);
        for scheme in
            [PartitionScheme::Dagon, PartitionScheme::Cone, PartitionScheme::PlacementDriven]
        {
            let r = map(
                &dec.graph,
                &pos,
                &lib,
                &MapOptions { scheme, cost: CostKind::AreaWire { k: 0.01 }, ..Default::default() },
            );
            assert_mapped_equivalent(&dec.graph, &r.netlist, &lib, 5);
        }
    }
}
