//! Dynamic-programming tree covering with pluggable cost functions.
//!
//! This is Keutzer's optimal tree covering, extended exactly as Section
//! 3.2 of the paper describes: beside the area term (Eq. 1), each match
//! carries a wire term made of `WIRE1` — the distance between the match's
//! centre of mass and the centres of mass of its fanin matches (Eq. 2) —
//! and `WIRE2` — the stored wire cost of those fanins (Eq. 3). The
//! combined objective is `COST(m, v) = AREA(m, v) + K · WIRE(m, v)`
//! (Eq. 5), with `K = 0` degenerating to plain minimum-area DAGON.
//!
//! Wire cost is deliberately *local* (fanins and their children only, not
//! transitive fanins to the primary inputs): the paper argues at length
//! that Pedram–Bhat's transitive formulation perturbs the cost function
//! unpredictably.
//!
//! Matches that cover *through* a multi-fanout vertex hide a shared
//! signal, forcing a duplicate cover to be emitted for the other fanouts;
//! such matches are charged the estimated duplicated area and wire
//! (the subtree's cover cost minus whatever the match's own leaves
//! already share). Under minimum-area covering duplication is therefore
//! never chosen gratuitously — `K = 0` behaves exactly like DAGON — while
//! a strong wire term can justify it, reproducing the paper's cell-count
//! growth at large K.

use crate::matcher::{matches_at, Match, SharedPolicy};
use crate::partition::{Tree, TreeNode};
use casyn_library::Library;
use casyn_netlist::Point;
use casyn_obs as obs;

/// The covering objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostKind {
    /// Minimum cell area — DAGON's objective (and the paper's `K = 0`).
    Area,
    /// Minimum arrival time under a constant-load delay model
    /// (Rudell-style delay mapping).
    Delay,
    /// The paper's congestion-aware objective `AREA + K × WIRE`.
    AreaWire {
        /// The congestion minimization factor K (µm² per µm of wire).
        k: f64,
    },
    /// Minimum area subject to an arrival-time budget (Touati's
    /// performance-oriented mapping, which the paper cites): solutions
    /// missing the budget are penalized lexicographically, so the DP
    /// meets timing first and minimizes area second.
    AreaUnderDelay {
        /// Arrival budget in nanoseconds (constant-load model).
        budget: f64,
    },
}

/// The chosen solution at one tree node.
#[derive(Debug, Clone)]
pub struct NodeSolution {
    /// The selected match (`None` at leaves).
    pub chosen: Option<Match>,
    /// Minimum combined cost at this node.
    pub cost: f64,
    /// Area component (`areaCost(v)` of Eq. 1).
    pub area: f64,
    /// Wire component (`wireCost(v)` of Eqs. 2–4).
    pub wire: f64,
    /// Arrival estimate under the constant-load model.
    pub arrival: f64,
    /// Centre of mass of the chosen match (`pos(match(v), v)`); for
    /// leaves, the placed position of the referenced subject vertex.
    pub pos: Point,
}

/// The DP table of a covered tree.
#[derive(Debug, Clone)]
pub struct TreeCover {
    /// One solution per tree node.
    pub solutions: Vec<NodeSolution>,
}

impl TreeCover {
    /// The solution at the root.
    pub fn root(&self) -> &NodeSolution {
        self.solutions.last().expect("tree has nodes")
    }
}

/// Load assumed per output in the constant-load delay model (two standard
/// pin loads).
const CONST_LOAD: f64 = 0.008;

/// Covers `tree` bottom-up. `positions` holds the placed position of
/// every subject vertex (the tech-independent placement); they anchor
/// both leaf positions and match centres of mass.
///
/// # Panics
///
/// Panics if some internal node has no match (the library must contain at
/// least an inverter and a NAND2).
pub fn cover_tree(
    tree: &Tree,
    lib: &Library,
    positions: &[Point],
    shared: &[bool],
    cost: CostKind,
) -> TreeCover {
    cover_tree_with(tree, lib, positions, shared, cost, &[])
}

/// [`cover_tree`] with additional pre-enumerated matches per tree node
/// (e.g. from Boolean matching, [`crate::boolmatch::bool_matches`]),
/// merged with the structural ones before the DP chooses. An empty slice
/// adds nothing.
pub fn cover_tree_with(
    tree: &Tree,
    lib: &Library,
    positions: &[Point],
    shared: &[bool],
    cost: CostKind,
    extra: &[Vec<Match>],
) -> TreeCover {
    let starts = tree.subtree_starts();
    let mut solutions: Vec<NodeSolution> = Vec::with_capacity(tree.nodes.len());
    // batched locally; one registry flush per covered tree
    let mut matches_tried = 0u64;
    let wants_wire = matches!(cost, CostKind::AreaWire { .. });
    for (idx, node) in tree.nodes.iter().enumerate() {
        match node {
            TreeNode::Leaf { signal } => solutions.push(NodeSolution {
                chosen: None,
                cost: 0.0,
                area: 0.0,
                wire: 0.0,
                arrival: 0.0,
                pos: positions[signal.index()],
            }),
            _ => {
                // K = 0 must degenerate to DAGON exactly, so a zero wire
                // weight also forbids duplication
                let policy = match cost {
                    CostKind::Area
                    | CostKind::AreaWire { k: 0.0 }
                    | CostKind::AreaUnderDelay { .. } => SharedPolicy::Forbid,
                    _ => SharedPolicy::Price,
                };
                let mut ms = matches_at(tree, idx as u32, lib, shared, policy);
                if let Some(more) = extra.get(idx) {
                    for m in more {
                        // respect the duplication policy for merged matches
                        if policy == SharedPolicy::Forbid && !m.through.is_empty() {
                            continue;
                        }
                        if !ms.contains(m) {
                            ms.push(m.clone());
                        }
                    }
                }
                assert!(!ms.is_empty(), "no match at internal node {idx}");
                matches_tried += ms.len() as u64;
                let mut best: Option<NodeSolution> = None;
                for m in ms {
                    let cand = evaluate(&m, lib, positions, &solutions, &starts, cost);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            cand.cost < b.cost || (cand.cost == b.cost && cand.area < b.area)
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                solutions.push(best.expect("at least one match"));
            }
        }
    }
    if obs::enabled() {
        obs::counter_add("map.matches_tried", matches_tried);
        if wants_wire {
            obs::counter_add("map.wire_evals", matches_tried);
        }
        obs::hist_record("map.tree_nodes", tree.nodes.len() as f64);
    }
    TreeCover { solutions }
}

/// Computes AREA (Eq. 1), WIRE1/WIRE2 (Eqs. 2–4) and the combined cost
/// (Eq. 5) of one match.
fn evaluate(
    m: &Match,
    lib: &Library,
    positions: &[Point],
    solutions: &[NodeSolution],
    starts: &[u32],
    cost: CostKind,
) -> NodeSolution {
    let cell = lib.cell(m.cell);
    // centre of mass of the covered base gates, from the tech-independent
    // placement (pos(m, v) in the paper)
    let com = {
        let mut x = 0.0;
        let mut y = 0.0;
        for g in &m.covered {
            x += positions[g.index()].x;
            y += positions[g.index()].y;
        }
        let n = m.covered.len().max(1) as f64;
        Point::new(x / n, y / n)
    };
    let mut area = cell.area;
    let mut wire1 = 0.0;
    let mut wire2 = 0.0;
    let mut worst_arrival = 0.0f64;
    for &leaf in &m.leaves {
        let s = &solutions[leaf as usize];
        area += s.area;
        wire1 += com.manhattan(s.pos);
        wire2 += s.wire;
        worst_arrival = worst_arrival.max(s.arrival);
    }
    // duplication charge: every shared node covered through will be
    // re-emitted as its own cover; its leaves that this match reuses are
    // shared, everything else is duplicated
    let mut dup_area = 0.0;
    let mut dup_wire = 0.0;
    for &w in &m.through {
        let ws = &solutions[w as usize];
        let mut shared_area = 0.0;
        let mut shared_wire = 0.0;
        for &l in &m.leaves {
            if l >= starts[w as usize] && l < w {
                shared_area += solutions[l as usize].area;
                shared_wire += solutions[l as usize].wire;
            }
        }
        dup_area += (ws.area - shared_area).max(0.0);
        dup_wire += (ws.wire - shared_wire).max(0.0);
    }
    let area = area + dup_area;
    let wire = wire1 + wire2 + dup_wire;
    let arrival = worst_arrival + cell.intrinsic + cell.drive_res * CONST_LOAD;
    let combined = match cost {
        CostKind::Area => area,
        CostKind::Delay => arrival,
        CostKind::AreaWire { k } => area + k * wire,
        CostKind::AreaUnderDelay { budget } => {
            // lexicographic: overshoot dominates, then area
            let overshoot = (arrival - budget).max(0.0);
            overshoot * 1.0e9 + area
        }
    };
    NodeSolution { chosen: Some(m.clone()), cost: combined, area, wire, arrival, pos: com }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionScheme};
    use casyn_library::corelib018;
    use casyn_netlist::subject::SubjectGraph;

    /// The AND-gate tree: min-area cover must pick AN2 (4 sites) over
    /// ND2+IV (5 sites).
    #[test]
    fn min_area_prefers_complex_cell() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("o", i);
        let lib = corelib018();
        let positions = vec![Point::default(); g.num_vertices()];
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        let root = cover.root();
        let cell = lib.cell(root.chosen.as_ref().unwrap().cell);
        assert_eq!(cell.name, "AN2");
        assert!((root.area - cell.area).abs() < 1e-9);
    }

    /// With K = 0 the AreaWire objective must equal pure area cost.
    #[test]
    fn k_zero_equals_dagon() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let n1 = g.add_nand2(a, b);
        let i1 = g.add_inv(n1);
        let n2 = g.add_nand2(i1, c);
        let root = g.add_inv(n2);
        g.add_output("o", root);
        let lib = corelib018();
        let positions: Vec<Point> =
            (0..g.num_vertices()).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let a_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        let w_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::AreaWire { k: 0.0 });
        assert_eq!(a_cover.root().area, w_cover.root().area);
    }

    /// A large K must be able to change the chosen cover when the
    /// geometry punishes the min-area cell.
    #[test]
    fn wire_term_can_override_area() {
        // Structure: and(a, b) where a and b sit far from the AND's gates
        // in *opposite* directions. Covering with AN2 puts one cell at the
        // centre of mass; covering with ND2+IV lets the DP keep the same
        // wiring but costs more area — so instead build the Figure-1-style
        // case: or(and(a,b), c)-ish tree where AOI/complex cells
        // concentrate everything at one far centroid while small cells
        // stay near their fanins.
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let n1 = g.add_nand2(a, b);
        let ic = g.add_inv(c);
        let n2 = g.add_nand2(n1, ic);
        let root = g.add_inv(n2);
        g.add_output("o", root);
        let lib = corelib018();
        // geometry: a,b cluster at x=0; c at x=1000; internal gates spread
        let mut positions = vec![Point::default(); g.num_vertices()];
        positions[a.index()] = Point::new(0.0, 0.0);
        positions[b.index()] = Point::new(0.0, 10.0);
        positions[n1.index()] = Point::new(5.0, 5.0);
        positions[c.index()] = Point::new(1000.0, 0.0);
        positions[ic.index()] = Point::new(995.0, 0.0);
        positions[n2.index()] = Point::new(500.0, 0.0);
        positions[root.index()] = Point::new(500.0, 5.0);
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let area_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        let wire_cover =
            cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::AreaWire { k: 10.0 });
        let area_cell = lib.cell(area_cover.root().chosen.as_ref().unwrap().cell);
        assert_eq!(area_cell.name, "AOI21", "min-area picks the complex cell");
        // the heavy-K cover must have strictly less wire
        assert!(
            wire_cover.root().wire <= area_cover.root().wire,
            "wire {} vs {}",
            wire_cover.root().wire,
            area_cover.root().wire
        );
        // and (given the punishing geometry) a different structure
        assert!(wire_cover.root().area >= area_cover.root().area);
    }

    /// Delay covering prefers shallow structures on a long chain.
    #[test]
    fn delay_cover_is_no_deeper_than_area_cover() {
        let mut g = SubjectGraph::new();
        let mut x = g.add_input("x0");
        let inputs: Vec<_> = (1..5).map(|i| g.add_input(format!("x{i}"))).collect();
        for b in inputs {
            let n = g.add_nand2(x, b);
            x = g.add_inv(n);
        }
        g.add_output("o", x);
        let lib = corelib018();
        let positions = vec![Point::default(); g.num_vertices()];
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let area_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        let delay_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Delay);
        assert!(delay_cover.root().arrival <= area_cover.root().arrival + 1e-9);
    }

    /// Area-under-delay: with a loose budget the cover equals the
    /// min-area one; with an impossible budget it chases minimum arrival.
    #[test]
    fn area_under_delay_interpolates() {
        let mut g = SubjectGraph::new();
        let mut x = g.add_input("x0");
        let inputs: Vec<_> = (1..6).map(|i| g.add_input(format!("x{i}"))).collect();
        for b in inputs {
            let n = g.add_nand2(x, b);
            x = g.add_inv(n);
        }
        g.add_output("o", x);
        let lib = corelib018();
        let positions = vec![Point::default(); g.num_vertices()];
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let area_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        let delay_cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Delay);
        let loose = cover_tree(
            &f.trees[0],
            &lib,
            &positions,
            &[],
            CostKind::AreaUnderDelay { budget: 1.0e6 },
        );
        assert!((loose.root().area - area_cover.root().area).abs() < 1e-9);
        let tight = cover_tree(
            &f.trees[0],
            &lib,
            &positions,
            &[],
            CostKind::AreaUnderDelay { budget: 0.0 },
        );
        assert!(tight.root().arrival <= area_cover.root().arrival + 1e-9);
        assert!(
            (tight.root().arrival - delay_cover.root().arrival).abs() < 1e-9,
            "an impossible budget must chase minimum delay"
        );
        // a budget between the two arrivals buys area back
        let mid = (area_cover.root().arrival + delay_cover.root().arrival) / 2.0;
        let balanced = cover_tree(
            &f.trees[0],
            &lib,
            &positions,
            &[],
            CostKind::AreaUnderDelay { budget: mid },
        );
        assert!(balanced.root().arrival <= mid + 1e-9);
        assert!(
            balanced.root().area <= loose.root().area + 1e-9
                || balanced.root().area >= area_cover.root().area
        );
    }

    /// Dynamic-programming consistency: the root area equals the cell
    /// areas of the extracted cover.
    #[test]
    fn root_area_equals_sum_of_chosen_cells() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let n1 = g.add_nand2(a, b);
        let n2 = g.add_nand2(c, d);
        let i1 = g.add_inv(n1);
        let i2 = g.add_inv(n2);
        let n3 = g.add_nand2(i1, i2);
        g.add_output("o", n3);
        let lib = corelib018();
        let positions = vec![Point::default(); g.num_vertices()];
        let f = partition(&g, PartitionScheme::Dagon, &[]);
        let cover = cover_tree(&f.trees[0], &lib, &positions, &[], CostKind::Area);
        // walk the chosen cover from the root and sum areas
        let mut total = 0.0;
        let mut stack = vec![f.trees[0].root()];
        while let Some(n) = stack.pop() {
            let s = &cover.solutions[n as usize];
            if let Some(m) = &s.chosen {
                total += lib.cell(m.cell).area;
                for &l in &m.leaves {
                    stack.push(l);
                }
            }
        }
        assert!((total - cover.root().area).abs() < 1e-9);
        // the whole structure is ND4: 4-input NAND
        let root_cell = lib.cell(cover.root().chosen.as_ref().unwrap().cell);
        assert_eq!(root_cell.name, "ND4");
    }
}
