//! Congestion-aware technology mapping — the primary contribution of
//! *Congestion-Aware Logic Synthesis* (Pandini, Pileggi, Strojwas,
//! DATE 2002).
//!
//! The mapper consumes a placed NAND2/INV subject graph and a pattern
//! library, and produces a placed gate-level netlist:
//!
//! 1. [`partition`] — the subject DAG becomes a forest of trees. Beside
//!    the classic DAGON and MIS cone schemes, the paper's
//!    *placement-driven DAG partitioning* keeps each multi-fanout vertex
//!    attached to its **nearest** fanout on the layout image (Fig. 2 of
//!    the paper).
//! 2. [`matcher`] — library pattern trees are structurally matched
//!    against every tree node.
//! 3. [`cover`] — optimal dynamic-programming covering under a pluggable
//!    cost: minimum area (DAGON), constant-load delay, or the paper's
//!    `COST(m, v) = AREA(m, v) + K · WIRE(m, v)` with the local wire
//!    terms of Eqs. 2–4.
//! 4. [`mapper`] — demand-driven emission with logic duplication and
//!    centre-of-mass placement of every emitted cell.
//!
//! # Example
//!
//! ```
//! use casyn_core::{map, MapOptions, CostKind, PartitionScheme};
//! use casyn_library::corelib018;
//! use casyn_netlist::{subject::SubjectGraph, Point};
//!
//! let mut g = SubjectGraph::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let n = g.add_nand2(a, b);
//! let y = g.add_inv(n);
//! g.add_output("y", y);
//! let positions = vec![Point::default(); g.num_vertices()];
//! let lib = corelib018();
//! let result = map(&g, &positions, &lib, &MapOptions {
//!     scheme: PartitionScheme::PlacementDriven,
//!     cost: CostKind::AreaWire { k: 0.001 },
//!     ..Default::default()
//! });
//! assert_eq!(result.netlist.num_cells(), 1); // one AN2
//! ```

pub mod boolmatch;
pub mod buffering;
pub mod cover;
pub mod mapper;
pub mod matcher;
pub mod partition;

pub use boolmatch::{bool_matches, canon_tt, BoolMatcher, TruthTable};
pub use buffering::{buffer_fanout, max_fanout, BufferOptions, BufferStats};
pub use cover::{cover_tree, cover_tree_with, CostKind, NodeSolution, TreeCover};
pub use mapper::{map, star_wirelength, MapOptions, MapResult, MapStats};
pub use matcher::{matches_at, Match, SharedPolicy};
pub use partition::{partition, Forest, PartitionScheme, Tree, TreeNode};
