//! Embeds `git describe` output (when available) so `/healthz` can
//! report exactly which tree the binary was built from. Failure is
//! fine — release tarballs and vendored builds just report the crate
//! version.

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=CASYN_GIT_DESCRIBE={describe}");
}
