//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Deliberately small: one request per connection (`Connection: close`
//! on every response), bodies delimited by `Content-Length` only.
//! `Transfer-Encoding: chunked` is rejected up front with 411 — the
//! service wants a declared length so it can refuse oversized bodies
//! (413) before reading them.

use casyn_obs::json::JsonValue;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum size of the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query string after `?` (empty when absent).
    pub query: String,
    /// Header name → value, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length` delimited).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// True when the query string contains `key=1` or a bare `key`.
    pub fn query_flag(&self, key: &str) -> bool {
        self.query.split('&').any(|p| p == key || p == format!("{key}=1"))
    }

    /// The value of query parameter `key` (`?key=value`), if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|p| {
            let (k, v) = p.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A typed HTTP failure, rendered as a JSON error response.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message (the response body's `error` field).
    pub message: String,
    /// Seconds to wait before retrying (a `Retry-After` header); set by
    /// overload shedding so well-behaved clients back off.
    pub retry_after: Option<u64>,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into(), retry_after: None }
    }
    pub fn bad_request(msg: impl Into<String>) -> Self {
        HttpError::new(400, msg)
    }
    pub fn not_found(msg: impl Into<String>) -> Self {
        HttpError::new(404, msg)
    }
    pub fn method_not_allowed() -> Self {
        HttpError::new(405, "method not allowed")
    }
    pub fn conflict(msg: impl Into<String>) -> Self {
        HttpError::new(409, msg)
    }
    pub fn length_required() -> Self {
        HttpError::new(411, "chunked transfer encoding is not supported; send Content-Length")
    }
    pub fn too_large(limit: usize) -> Self {
        HttpError::new(413, format!("body exceeds the {limit} byte limit"))
    }
    pub fn backpressure(msg: impl Into<String>) -> Self {
        HttpError::new(429, msg)
    }
    pub fn unavailable(msg: impl Into<String>) -> Self {
        HttpError::new(503, msg)
    }
    /// Adds a `Retry-After: secs` header to the rendered response.
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// The standard reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`. Bodies longer than
/// `max_body` are refused with 413 *before* being read, so a hostile
/// client cannot make the server buffer them.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::bad_request("request head too large"));
        }
        let n = stream
            .read(&mut tmp)
            .map_err(|e| HttpError::bad_request(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad_request("truncated request"));
        }
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| HttpError::bad_request("missing method"))?.to_string();
    let target = parts.next().ok_or_else(|| HttpError::bad_request("missing path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let req_head = Request { method, path, query, headers, body: Vec::new() };
    if req_head.header("transfer-encoding").is_some() {
        return Err(HttpError::length_required());
    }
    let content_length: usize = match req_head.header("content-length") {
        None => 0,
        Some(v) => v.parse().map_err(|_| HttpError::bad_request("bad Content-Length"))?,
    };
    if content_length > max_body {
        return Err(HttpError::too_large(max_body));
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let n = stream
            .read(&mut tmp)
            .map_err(|e| HttpError::bad_request(format!("body read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad_request("truncated body"));
        }
        let want = content_length - body.len();
        body.extend_from_slice(&tmp[..n.min(want)]);
    }
    Ok(Request { body, ..req_head })
}

/// Writes a JSON response with `Content-Length` and `Connection: close`.
/// Returns the body size in bytes (for the access log).
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    doc: &JsonValue,
) -> std::io::Result<usize> {
    respond_json_with(stream, status, doc, &[])
}

/// [`respond_json`] with extra response headers (name, value) lines.
pub fn respond_json_with(
    stream: &mut TcpStream,
    status: u16,
    doc: &JsonValue,
    extra_headers: &[(String, String)],
) -> std::io::Result<usize> {
    let body = doc.to_string_pretty();
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(body.len())
}

/// Writes a plain-text response (the Prometheus exposition surface).
/// Returns the body size in bytes.
pub fn respond_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<usize> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(body.len())
}

/// Writes an [`HttpError`] as a JSON response (including its
/// `Retry-After` header when set). Returns the body size in bytes.
pub fn respond_error(stream: &mut TcpStream, err: &HttpError) -> std::io::Result<usize> {
    let mut doc = vec![
        ("error".into(), JsonValue::Str(err.message.clone())),
        ("status".into(), JsonValue::Number(err.status as f64)),
    ];
    let mut headers = Vec::new();
    if let Some(secs) = err.retry_after {
        doc.push(("retry_after_s".into(), JsonValue::Number(secs as f64)));
        headers.push(("Retry-After".to_string(), secs.to_string()));
    }
    respond_json_with(stream, err.status, &JsonValue::object(doc), &headers)
}

/// Starts a close-delimited NDJSON stream (no `Content-Length`; the
/// stream ends when the connection closes). Used by `/jobs/<id>/events`.
pub fn start_ndjson_stream(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let r = read_request(&mut conn, max_body);
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_request_with_body() {
        let r = roundtrip(
            "POST /jobs?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert!(r.query_flag("wait"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn query_param_extracts_values() {
        let r = roundtrip("GET /metrics?format=prom&wait HTTP/1.1\r\nHost: x\r\n\r\n", 16).unwrap();
        assert_eq!(r.query_param("format"), Some("prom"));
        assert_eq!(r.query_param("wait"), None, "bare flags have no value");
        assert_eq!(r.query_param("absent"), None);
        assert!(r.query_flag("wait"));
    }

    #[test]
    fn rejects_chunked_with_411() {
        let e = roundtrip(
            "POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcd\r\n0\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(e.status, 411);
    }

    #[test]
    fn rejects_oversized_with_413_before_reading_body() {
        let e = roundtrip("POST /jobs HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 16).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(roundtrip("\r\n\r\n", 16).unwrap_err().status, 400);
        let e = roundtrip("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 16).unwrap_err();
        assert_eq!(e.status, 400);
    }
}
