//! Bounded least-recently-used caches keyed by 64-bit content hashes.
//!
//! Two instances back the service: the *result cache* (content address →
//! finished row documents) and the *prepare cache* (design + prepare
//! parameters → shared [`casyn_flow::Prepared`] front end), so jobs that
//! differ only in their K schedule reuse the expensive prefix.

use std::collections::HashMap;

/// A fixed-capacity LRU map over `u64` keys. Recency is a logical tick
/// bumped on every access; eviction scans for the stalest entry (the
/// caches hold at most a few hundred entries, so O(n) eviction is
/// cheaper than maintaining an ordered index).
#[derive(Debug)]
pub struct Lru<V> {
    cap: usize,
    tick: u64,
    map: HashMap<u64, (u64, V)>,
}

impl<V> Lru<V> {
    /// An empty cache holding at most `cap` entries (`cap` 0 disables
    /// caching: every insert is immediately dropped).
    pub fn new(cap: usize) -> Self {
        Lru { cap, tick: 0, map: HashMap::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently used.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((t, v)) => {
                *t = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(stalest) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k) {
                self.map.remove(&stalest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = Lru::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }
}
