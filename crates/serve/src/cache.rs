//! Bounded least-recently-used caches keyed by 64-bit content hashes,
//! plus the checksummed disk spill behind `--state-dir`.
//!
//! Two LRU instances back the service: the *result cache* (content
//! address → finished row documents) and the *prepare cache* (design +
//! prepare parameters → shared [`casyn_flow::Prepared`] front end), so
//! jobs that differ only in their K schedule reuse the expensive
//! prefix. When the server runs with a state directory, finished
//! results additionally spill to a [`DiskCache`]: one
//! FNV-1a-checksummed JSON file per content address, verified on every
//! read-back and quarantined (never served) on mismatch.

use casyn_exec::FaultPlan;
use casyn_flow::durable;
use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A fixed-capacity LRU map over `u64` keys. Recency is a logical tick
/// bumped on every access; eviction scans for the stalest entry (the
/// caches hold at most a few hundred entries, so O(n) eviction is
/// cheaper than maintaining an ordered index).
#[derive(Debug)]
pub struct Lru<V> {
    cap: usize,
    tick: u64,
    map: HashMap<u64, (u64, V)>,
}

impl<V> Lru<V> {
    /// An empty cache holding at most `cap` entries (`cap` 0 disables
    /// caching: every insert is immediately dropped).
    pub fn new(cap: usize) -> Self {
        Lru { cap, tick: 0, map: HashMap::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently used.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((t, v)) => {
                *t = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(stalest) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k) {
                self.map.remove(&stalest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

/// The content-addressed disk cache under `<state-dir>/cache`: one
/// checksummed JSON file per `(domain, key)` at
/// `cache/<domain>/<key16>.json`, written atomically through
/// [`casyn_flow::durable`].
///
/// Integrity failures are never surfaced as data: a file whose FNV-1a
/// trailer does not verify (or whose payload no longer parses) is moved
/// to `cache/quarantine/` — preserving the evidence — counted under
/// `serve.cache.corrupt`, and reported as a miss so the caller
/// recomputes.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    fault: Option<FaultPlan>,
}

impl DiskCache {
    /// Opens (creating as needed) the cache rooted at `root`, with an
    /// optional fault plan armed at stage `"cache"` on every write.
    pub fn open(root: &Path, fault: Option<FaultPlan>) -> io::Result<DiskCache> {
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(DiskCache { root: root.to_path_buf(), fault })
    }

    /// The file backing `(domain, key)`.
    pub fn path_for(&self, domain: &str, key: u64) -> PathBuf {
        self.root.join(domain).join(format!("{key:016x}.json"))
    }

    /// Writes `doc` for `(domain, key)`: atomic replace with a checksum
    /// trailer. Failures (real I/O or an injected `cache:disk_full` /
    /// `cache:torn_write`) leave any previous entry intact.
    pub fn put(&self, domain: &str, key: u64, doc: &JsonValue) -> io::Result<()> {
        let path = self.path_for(domain, key);
        fs::create_dir_all(path.parent().expect("cache entry has a parent"))?;
        let fault = self.fault.as_ref().map(|p| (p, "cache"));
        durable::write_checksummed(&path, &doc.to_string_pretty(), fault)?;
        obs::counter_add("serve.cache.disk_writes", 1);
        Ok(())
    }

    /// Reads `(domain, key)` back, verifying the checksum trailer and
    /// re-parsing the payload. Corruption quarantines the file and
    /// reads as a miss — a damaged entry is recomputed, never served.
    pub fn get(&self, domain: &str, key: u64) -> Option<JsonValue> {
        let path = self.path_for(domain, key);
        let corrupt = |what: String| {
            self.quarantine(&path, domain, key);
            obs::counter_add("serve.cache.corrupt", 1);
            obs::log::warn(&format!("cache: quarantined {domain}/{key:016x}: {what}"));
            None
        };
        match durable::read_checksummed(&path) {
            Ok(payload) => match JsonValue::parse(&payload) {
                Ok(doc) => {
                    obs::counter_add("serve.cache.disk_hits", 1);
                    Some(doc)
                }
                Err(e) => corrupt(format!("verified payload is not JSON: {e}")),
            },
            Err(durable::DurableError::Io { source, .. })
                if source.kind() == io::ErrorKind::NotFound =>
            {
                None
            }
            Err(e) => corrupt(e.to_string()),
        }
    }

    fn quarantine(&self, path: &Path, domain: &str, key: u64) {
        let dest = self.root.join("quarantine").join(format!("{domain}-{key:016x}.json"));
        if let Err(e) = fs::rename(path, &dest) {
            // renaming within one filesystem should not fail; if it does,
            // fall back to removal so the poisoned entry cannot be re-read
            obs::log::warn(&format!("cache: cannot quarantine {}: {e}", path.display()));
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = Lru::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("casyn-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn doc(v: f64) -> JsonValue {
        JsonValue::object(vec![("v".into(), JsonValue::Number(v))])
    }

    #[test]
    fn disk_cache_round_trips() {
        let dir = tmpdir("rt");
        let c = DiskCache::open(&dir, None).unwrap();
        assert!(c.get("job", 7).is_none(), "miss before put");
        c.put("job", 7, &doc(1.0)).unwrap();
        let back = c.get("job", 7).unwrap();
        assert_eq!(back.get("v").unwrap().as_f64(), Some(1.0));
        // domains are separate namespaces
        assert!(c.get("prep", 7).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_quarantines_corruption() {
        let dir = tmpdir("q");
        let c = DiskCache::open(&dir, None).unwrap();
        c.put("job", 9, &doc(2.0)).unwrap();
        let path = c.path_for("job", 9);
        // flip payload bytes without touching the trailer
        let text = fs::read_to_string(&path).unwrap().replace("2", "3");
        fs::write(&path, text).unwrap();
        assert!(c.get("job", 9).is_none(), "corruption reads as a miss");
        assert!(!path.exists(), "the damaged file is moved away");
        assert!(dir.join("quarantine").join("job-0000000000000009.json").exists());
        // a recompute can repopulate the same address
        c.put("job", 9, &doc(4.0)).unwrap();
        assert_eq!(c.get("job", 9).unwrap().get("v").unwrap().as_f64(), Some(4.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_injected_disk_full_keeps_previous_entry() {
        let dir = tmpdir("df");
        let plan = FaultPlan::parse("cache:disk_full:2").unwrap();
        let c = DiskCache::open(&dir, Some(plan)).unwrap();
        c.put("job", 1, &doc(1.0)).unwrap();
        assert!(c.put("job", 1, &doc(2.0)).is_err(), "second write hits disk_full");
        assert_eq!(c.get("job", 1).unwrap().get("v").unwrap().as_f64(), Some(1.0));
        fs::remove_dir_all(&dir).unwrap();
    }
}
