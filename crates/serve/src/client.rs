//! A tiny blocking HTTP/1.1 client for talking to a [`crate::Server`].
//!
//! The server closes the connection after every response, so bodies are
//! read to EOF — no chunked decoding, no keep-alive. This is what the
//! CLI's `submit`, `shutdown` and `loadgen` commands use, and what CI
//! smoke tests drive the daemon with (no curl dependency).
//!
//! Failures are typed ([`ClientError`]): a refused connection, a
//! per-attempt timeout and a connection dropped mid-body are different
//! events with different retry semantics. Idempotent requests (GETs)
//! retry transient kinds with *deterministic* exponential backoff — a
//! fixed delay ladder, no jitter — so loadgen runs remain reproducible.

use casyn_obs::json::JsonValue;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (close-delimited).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<JsonValue, String> {
        JsonValue::parse(&self.body).map_err(|e| format!("bad response body: {e}"))
    }
}

/// What went wrong with one request, after any retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientErrorKind {
    /// The server actively refused the connection (nothing listening).
    ConnectRefused,
    /// Any other connect failure (unreachable, DNS, ...).
    Connect,
    /// The per-attempt read deadline expired before a full response.
    Timeout,
    /// The connection closed before a complete response arrived —
    /// either before any bytes, or mid-body with fewer bytes than the
    /// declared `Content-Length`.
    MidBodyEof,
    /// Writing the request failed and no response was readable.
    SendFailed,
    /// A complete-looking response that could not be parsed.
    Malformed,
}

impl ClientErrorKind {
    /// Whether retrying can help, *given an idempotent request*. A
    /// malformed response is a server bug, not a transient.
    fn transient(self) -> bool {
        !matches!(self, ClientErrorKind::Malformed)
    }
}

/// A typed client failure: the kind, the peer, how many attempts were
/// made, and the underlying detail.
#[derive(Debug, Clone)]
pub struct ClientError {
    /// What class of failure this is.
    pub kind: ClientErrorKind,
    /// The address the request targeted.
    pub addr: String,
    /// Attempts performed (1 = no retry happened).
    pub attempts: u32,
    /// Human-readable detail from the failing operation.
    pub detail: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            ClientErrorKind::ConnectRefused => "connection refused",
            ClientErrorKind::Connect => "connect failed",
            ClientErrorKind::Timeout => "timed out",
            ClientErrorKind::MidBodyEof => "connection closed mid-response",
            ClientErrorKind::SendFailed => "send failed",
            ClientErrorKind::Malformed => "malformed response",
        };
        write!(f, "{}: {kind} after {} attempt(s): {}", self.addr, self.attempts, self.detail)
    }
}

impl std::error::Error for ClientError {}

/// Retry schedule for idempotent requests: `attempts` tries total, with
/// a deterministic exponential delay ladder between them
/// (`base * 2^i`, capped at `max_delay`) — no randomness, so two
/// identical loadgen runs issue identical request timelines.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Per-attempt socket read/write timeout.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            attempt_timeout: Duration::from_secs(120),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (for non-idempotent requests).
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, ..Default::default() }
    }

    /// The deterministic delay before retry `i` (0-based).
    pub fn delay(&self, i: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << i.min(20));
        exp.min(self.max_delay)
    }
}

/// Sends `raw` bytes to `addr` and reads the response to EOF — one
/// attempt, no retries, `timeout` bounding each socket operation.
pub fn raw_once(addr: &str, raw: &str, timeout: Duration) -> Result<Response, ClientError> {
    let err = |kind: ClientErrorKind, detail: String| ClientError {
        kind,
        addr: addr.to_string(),
        attempts: 1,
        detail,
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| {
        let kind = if e.kind() == std::io::ErrorKind::ConnectionRefused {
            ClientErrorKind::ConnectRefused
        } else {
            ClientErrorKind::Connect
        };
        err(kind, e.to_string())
    })?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| err(ClientErrorKind::Connect, format!("socket: {e}")))?;
    // The server may respond and close before the whole request is
    // written (413 refuses oversized bodies up front), which can fail the
    // write or reset the read mid-flight — surface those errors only when
    // no response arrived at all.
    let send_err = stream.write_all(raw.as_bytes()).err();
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) if bytes.is_empty() => {
                return Err(match send_err {
                    Some(se) => err(ClientErrorKind::SendFailed, format!("send failed: {se}")),
                    None if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                    {
                        err(ClientErrorKind::Timeout, format!("no response within {timeout:?}"))
                    }
                    None => err(ClientErrorKind::MidBodyEof, format!("read failed: {e}")),
                });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(err(
                    ClientErrorKind::Timeout,
                    format!("response stalled after {} bytes", bytes.len()),
                ));
            }
            Err(_) => break,
        }
    }
    if bytes.is_empty() {
        return Err(match send_err {
            Some(se) => err(ClientErrorKind::SendFailed, format!("send failed: {se}")),
            None => err(
                ClientErrorKind::MidBodyEof,
                "connection closed before any response bytes".into(),
            ),
        });
    }
    let text = String::from_utf8(bytes)
        .map_err(|e| err(ClientErrorKind::Malformed, format!("non-UTF-8 response: {e}")))?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
        err(ClientErrorKind::MidBodyEof, "connection closed inside the response head".into())
    })?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ClientErrorKind::Malformed, "bad status line".into()))?;
    // a declared Content-Length makes mid-body truncation detectable
    if let Some(expect) = head
        .lines()
        .find_map(|l| l.split_once(':').filter(|(k, _)| k.eq_ignore_ascii_case("content-length")))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
    {
        if body.len() < expect {
            return Err(err(
                ClientErrorKind::MidBodyEof,
                format!("body truncated at {} of {expect} bytes", body.len()),
            ));
        }
    }
    Ok(Response { status, body: body.to_string() })
}

/// Sends `raw` bytes with the default single-attempt policy. Kept for
/// callers that manage retries themselves.
pub fn raw(addr: &str, raw_text: &str) -> Result<Response, String> {
    raw_once(addr, raw_text, RetryPolicy::default().attempt_timeout).map_err(|e| e.to_string())
}

fn format_request(addr: &str, method: &str, path: &str, body: Option<&str>) -> String {
    let body = body.unwrap_or("");
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Performs one request under `policy`. Only idempotent methods (GET)
/// retry; everything else gets exactly one attempt regardless of the
/// policy, because a resubmitted POST could double-admit jobs.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    let text = format_request(addr, method, path, body);
    let attempts = if method == "GET" { policy.attempts.max(1) } else { 1 };
    let mut last: Option<ClientError> = None;
    for i in 0..attempts {
        if i > 0 {
            std::thread::sleep(policy.delay(i - 1));
        }
        match raw_once(addr, &text, policy.attempt_timeout) {
            Ok(r) => return Ok(r),
            Err(e) => {
                let transient = e.kind.transient();
                last = Some(ClientError { attempts: i + 1, ..e });
                if !transient {
                    break;
                }
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Performs one request (`GET /jobs/3`, `POST /jobs` + manifest, ...)
/// with the default retry policy (GETs retry transient failures).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    request_with(addr, method, path, body, &RetryPolicy::default()).map_err(|e| e.to_string())
}

/// [`request`] plus JSON parsing of the body.
pub fn request_json(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, JsonValue), String> {
    let r = request(addr, method, path, body)?;
    let doc = r.json()?;
    Ok((r.status, doc))
}

/// Polls `GET /healthz` until the server answers 200 or `timeout`
/// expires. Used by CI smoke tests after daemonizing the server.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    let policy =
        RetryPolicy { attempts: 1, attempt_timeout: Duration::from_secs(5), ..Default::default() };
    loop {
        if let Ok(r) = request_with(addr, "GET", "/healthz", None, &policy) {
            if r.status == 200 {
                return Ok(());
            }
        }
        if t0.elapsed() > timeout {
            return Err(format!("server at {addr} not ready after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn backoff_ladder_is_deterministic_and_capped() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
            attempt_timeout: Duration::from_secs(1),
        };
        let delays: Vec<u64> = (0..5).map(|i| p.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, vec![50, 100, 200, 300, 300], "base*2^i capped at max");
        // and it is a pure function — same ladder every time
        assert_eq!(p.delay(2), p.delay(2));
    }

    #[test]
    fn connect_refused_is_typed_and_counted() {
        // bind-then-drop leaves a port with nothing listening
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            attempt_timeout: Duration::from_millis(200),
        };
        let e = request_with(&addr, "GET", "/healthz", None, &policy).unwrap_err();
        assert_eq!(e.kind, ClientErrorKind::ConnectRefused);
        assert_eq!(e.attempts, 3, "idempotent GETs exhaust the retry budget");
    }

    #[test]
    fn post_never_retries() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            attempt_timeout: Duration::from_millis(200),
        };
        let e = request_with(&addr, "POST", "/jobs", Some("{}"), &policy).unwrap_err();
        assert_eq!(e.attempts, 1, "a POST must not be resubmitted");
    }

    /// A server that closes mid-body is distinguishable from one that
    /// refused the connection.
    #[test]
    fn mid_body_eof_is_typed() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = l.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = std::io::Read::read(&mut s, &mut buf);
                // claim 100 bytes, deliver 5, hang up
                let _ = s.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\nConnection: close\r\n\r\nhello",
                );
            }
        });
        let policy = RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            attempt_timeout: Duration::from_millis(500),
        };
        let e = request_with(&addr, "GET", "/x", None, &policy).unwrap_err();
        assert_eq!(e.kind, ClientErrorKind::MidBodyEof);
        assert_eq!(e.attempts, 2, "mid-body EOF is transient for a GET");
        server.join().unwrap();
    }
}
