//! A tiny blocking HTTP/1.1 client for talking to a [`crate::Server`].
//!
//! The server closes the connection after every response, so bodies are
//! read to EOF — no chunked decoding, no keep-alive. This is what the
//! CLI's `submit`, `shutdown` and `loadgen` commands use, and what CI
//! smoke tests drive the daemon with (no curl dependency).

use casyn_obs::json::JsonValue;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (close-delimited).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<JsonValue, String> {
        JsonValue::parse(&self.body).map_err(|e| format!("bad response body: {e}"))
    }
}

/// Sends `raw` bytes to `addr` and reads the response to EOF.
pub fn raw(addr: &str, raw: &str) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(120))).map_err(|e| format!("socket: {e}"))?;
    // The server may respond and close before the whole request is
    // written (413 refuses oversized bodies up front), which can fail the
    // write or reset the read mid-flight — surface those errors only when
    // no response arrived at all.
    let send_err = stream.write_all(raw.as_bytes()).err();
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) if bytes.is_empty() => {
                return Err(match send_err {
                    Some(se) => format!("send failed: {se}"),
                    None => format!("read failed: {e}"),
                });
            }
            Err(_) => break,
        }
    }
    if bytes.is_empty() {
        if let Some(se) = send_err {
            return Err(format!("send failed: {se}"));
        }
    }
    let text = String::from_utf8(bytes).map_err(|e| format!("non-UTF-8 response: {e}"))?;
    let (head, body) =
        text.split_once("\r\n\r\n").ok_or_else(|| format!("malformed response from {addr}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}"))?;
    Ok(Response { status, body: body.to_string() })
}

/// Performs one request (`GET /jobs/3`, `POST /jobs` + manifest, ...).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let body = body.unwrap_or("");
    let text = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    raw(addr, &text)
}

/// [`request`] plus JSON parsing of the body.
pub fn request_json(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, JsonValue), String> {
    let r = request(addr, method, path, body)?;
    let doc = r.json()?;
    Ok((r.status, doc))
}

/// Polls `GET /healthz` until the server answers 200 or `timeout`
/// expires. Used by CI smoke tests after daemonizing the server.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if let Ok(r) = request(addr, "GET", "/healthz", None) {
            if r.status == 200 {
                return Ok(());
            }
        }
        if t0.elapsed() > timeout {
            return Err(format!("server at {addr} not ready after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
