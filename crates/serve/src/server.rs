//! The synthesis service: job table, bounded admission queue, batch
//! dispatcher, content-addressed artifact cache and graceful drain.
//!
//! ## Architecture
//!
//! One accept-loop thread spawns a handler thread per connection
//! (requests are short; the only long-lived handlers are `result?wait=1`
//! and `/jobs/<id>/events` streams, which block on a condvar, not a
//! core). One dispatcher thread drains the admission queue in batches
//! into [`casyn_flow::batch::run_batch_observed`] on the shared
//! `casyn-exec` pool — so serve jobs inherit the batch runner's panic
//! isolation, retries, per-job deadlines and cancellation semantics
//! unchanged.
//!
//! ## Caching and dedup
//!
//! Each cacheable job gets a content address from [`KeyBuilder`]
//! (design hash + library fingerprint + flow parameters, never
//! timings). Submission classifies jobs in one pass under the state
//! lock: result-cache hit (answered instantly), in-flight duplicate
//! (attached as a follower of the running compute), or fresh (admitted
//! to the queue, 429 when the whole request does not fit). The prepare
//! cache additionally shares the expensive flow front end between jobs
//! that differ only in their K schedule.

use crate::cache::{DiskCache, Lru};
use crate::http::{self, HttpError, Request};
use casyn_exec::{CancelToken, FaultKind, FaultPlan, Pool};
use casyn_flow::batch::{
    run_batch_job, run_batch_observed, BatchJob, BatchJobReport, BatchOptions, JobSuccess,
};
use casyn_flow::durable::Wal;
use casyn_flow::telemetry::snapshot_json;
use casyn_flow::{
    congestion_flow_prepared, fnv1a64, k_row_json, library_fingerprint, parse_manifest_value,
    prepare, FlowError, FlowErrorKind, FlowOptions, KSweepEntry, KeyBuilder, ManifestDefaults,
    ManifestJob, Prepared, Stage,
};
use casyn_netlist::network::Network;
use casyn_obs as obs;
use casyn_obs::json::{JsonErrorKind, JsonLimits, JsonValue};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The service version: crate version plus the git describe string when
/// the build script could obtain one (`0.1.0+gabc1234`).
pub fn version() -> String {
    match option_env!("CASYN_GIT_DESCRIBE") {
        Some(git) if !git.is_empty() => format!("{}+{git}", env!("CARGO_PKG_VERSION")),
        _ => env!("CARGO_PKG_VERSION").to_string(),
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Synthesis worker threads (0 = `Pool::from_env`).
    pub workers: usize,
    /// Maximum queued (admitted but not yet started) jobs; submissions
    /// that do not fit are rejected whole with 429.
    pub queue_capacity: usize,
    /// Maximum request body size; larger submissions get 413.
    pub max_body_bytes: usize,
    /// Batch-runner retries per failed job.
    pub retries: u32,
    /// Entries in the result cache (content address → finished rows).
    pub result_cache_cap: usize,
    /// Entries in the prepare cache (front-end artifacts).
    pub prepare_cache_cap: usize,
    /// Durable state directory: the `casyn.wal.v1` job journal plus the
    /// checksummed disk cache live here, and startup replays them.
    /// `None` keeps all state in memory (the pre-durability behavior).
    pub state_dir: Option<PathBuf>,
    /// Live-heap byte budget: new submissions are shed with
    /// 503 + `Retry-After` while the counting allocator reports more
    /// live bytes than this. 0 disables the watchdog.
    pub mem_limit_bytes: u64,
    /// How long `GET /jobs/<id>/result?wait=1` blocks before answering
    /// 409 (previously a hardcoded 600 s).
    pub result_wait_secs: u64,
    /// Per-connection socket read *and* write timeout, so a slow-reader
    /// event stream cannot pin a handler thread forever.
    pub io_timeout_secs: u64,
    /// I/O chaos plan, armed at stage `"wal"` (journal appends),
    /// `"cache"` (disk-cache writes) and `"conn"` (drops the connection
    /// before the response). Test-only in practice; counters are shared
    /// across all connections so `nth` is global.
    pub io_fault: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
            queue_capacity: 64,
            max_body_bytes: 8 << 20,
            retries: 0,
            result_cache_cap: 256,
            prepare_cache_cap: 32,
            state_dir: None,
            mem_limit_bytes: 0,
            result_wait_secs: 600,
            io_timeout_secs: 30,
            io_fault: None,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled)
    }
}

/// One row of the job table.
struct JobRecord {
    name: String,
    design: String,
    /// The id of the HTTP request that admitted this job; stamped into
    /// every event line, journal record and span so one id correlates
    /// the access log, NDJSON stream and trace.
    request_id: String,
    status: JobStatus,
    /// How the result was (or will be) obtained: `"hit"`, `"dedup"`,
    /// `"miss"`, or `"bypass"` for fault-plan jobs that skip the cache.
    cache: &'static str,
    rows: Option<Arc<JsonValue>>,
    degraded: bool,
    error: Option<String>,
    wall_ms: f64,
    events: Vec<String>,
    submitted: Instant,
}

/// A finished result in the content-addressed cache.
#[derive(Clone)]
struct CachedResult {
    rows: Arc<JsonValue>,
    degraded: bool,
}

/// A prepare-cache slot: per-key mutex so concurrent jobs with the same
/// front end compute it exactly once while distinct keys proceed in
/// parallel.
type PrepSlot = Arc<Mutex<Option<Arc<Prepared>>>>;

/// An admitted job waiting for (or being run by) the dispatcher.
struct Task {
    job_id: usize,
    request_id: String,
    mjob: ManifestJob,
    network: Network,
    fault: Option<FaultPlan>,
    prep_key: u64,
    /// `None` for fault-plan jobs: injected failures must never be
    /// cached or deduped onto healthy submissions.
    result_key: Option<u64>,
}

struct Inner {
    jobs: Vec<JobRecord>,
    queue: VecDeque<Task>,
    /// Content address → follower job ids waiting on the in-flight
    /// compute of the same artifact.
    inflight: HashMap<u64, Vec<usize>>,
    results: Lru<CachedResult>,
    prepared: Lru<PrepSlot>,
    draining: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Wakes the dispatcher (queue or drain-state changed).
    queue_cv: Condvar,
    /// Wakes result/event waiters (a job changed state).
    state_cv: Condvar,
    /// Fired by `POST /shutdown {"mode": "cancel"}`; queued jobs that
    /// have not started are skipped and flushed as cancelled.
    cancel: CancelToken,
    stop_accept: AtomicBool,
    addr: SocketAddr,
    config: ServeConfig,
    /// The WAL + disk cache pair behind `--state-dir`; `None` when the
    /// server runs memory-only.
    durable: Option<Durable>,
    /// Windowed per-second series, fed by the sampler thread (and
    /// refreshed on demand by `/stats` and `/metrics?format=prom`).
    /// Seconds are measured from `started`, a monotonic clock.
    store: obs::SeriesStore,
    started: Instant,
    /// Source of generated request ids (`r000001`, ...).
    req_seq: AtomicU64,
    /// Access-log rate limiter state (second, emitted, suppressed).
    log_window: Mutex<LogWindow>,
}

/// Per-second access-log budget; above it lines are counted, not
/// printed, so loadgen cannot drown the log.
const ACCESS_LOG_MAX_PER_SEC: u32 = 50;

#[derive(Default)]
struct LogWindow {
    sec: u64,
    emitted: u32,
    suppressed: u64,
}

fn lock_inner(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(|p| p.into_inner())
}

/// A running synthesis service. Dropping the handle does not stop the
/// server; use `POST /shutdown` (or [`Server::wait`] after one) to end
/// it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and dispatcher, and returns.
    /// Metrics collection is switched on (the service exposes
    /// `/metrics`).
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        obs::set_enabled(true);
        let pool = if config.workers == 0 { Pool::from_env() } else { Pool::new(config.workers) };
        let mut inner = Inner {
            jobs: Vec::new(),
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            results: Lru::new(config.result_cache_cap),
            prepared: Lru::new(config.prepare_cache_cap),
            draining: false,
        };
        let durable = match &config.state_dir {
            None => None,
            Some(dir) => Some(recover_into(dir, config.io_fault.clone(), &mut inner)?),
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
            queue_cv: Condvar::new(),
            state_cv: Condvar::new(),
            cancel: CancelToken::new(),
            stop_accept: AtomicBool::new(false),
            addr,
            config,
            durable,
            store: obs::SeriesStore::new(),
            started: Instant::now(),
            req_seq: AtomicU64::new(0),
            log_window: Mutex::new(LogWindow::default()),
        });
        let dispatcher = {
            let shared = shared.clone();
            thread::spawn(move || dispatcher_loop(&shared, &pool))
        };
        let acceptor = {
            let shared = shared.clone();
            thread::spawn(move || accept_loop(&shared, listener))
        };
        let sampler = {
            let shared = shared.clone();
            thread::spawn(move || sampler_loop(&shared))
        };
        Ok(Server { addr, shared, threads: vec![dispatcher, acceptor, sampler] })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address as `host:port`, ready for [`crate::client`].
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    /// Blocks until the server has fully drained after a
    /// `POST /shutdown`.
    pub fn wait(self) -> Result<(), String> {
        for t in self.threads {
            t.join().map_err(|_| "server thread panicked".to_string())?;
        }
        Ok(())
    }

    /// True once a shutdown has been requested.
    pub fn draining(&self) -> bool {
        lock_inner(&self.shared).draining
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop_accept.load(Ordering::SeqCst) {
                    return; // the self-connect that unblocked us
                }
                let shared = shared.clone();
                thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(_) => {
                if shared.stop_accept.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// The request's correlation id: a client-supplied `X-Request-Id`
/// (sanitized, truncated) or a generated `r000001`-style sequence id.
fn request_id(shared: &Shared, req: &Request) -> String {
    match req.header("x-request-id") {
        Some(v) if !v.is_empty() => v
            .chars()
            .take(64)
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect(),
        _ => format!("r{:06}", shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1),
    }
}

/// One structured access-log line per HTTP request, rate-limited to
/// [`ACCESS_LOG_MAX_PER_SEC`] so loadgen cannot drown stderr; the
/// counters always fire, and suppressed lines surface as a per-second
/// summary plus the `serve.log_suppressed` counter.
fn access_log(
    shared: &Shared,
    rid: &str,
    method: &str,
    path: &str,
    status: u16,
    bytes: usize,
    t0: Instant,
) {
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    obs::counter_add("serve.http_requests", 1);
    obs::hist_record("serve.request_ms", ms);
    if !obs::log::enabled(obs::log::Level::Info) {
        return;
    }
    let now_s = shared.started.elapsed().as_secs();
    let suppressed = {
        let mut w = shared.log_window.lock().unwrap_or_else(|p| p.into_inner());
        if w.sec != now_s {
            let prior = w.suppressed;
            *w = LogWindow { sec: now_s, emitted: 0, suppressed: 0 };
            if prior > 0 {
                obs::log::info(&format!("access: {prior} lines suppressed under load"));
            }
        }
        if w.emitted < ACCESS_LOG_MAX_PER_SEC {
            w.emitted += 1;
            false
        } else {
            w.suppressed += 1;
            true
        }
    };
    if suppressed {
        obs::counter_add("serve.log_suppressed", 1);
    } else {
        obs::log::info(&format!(
            "access {method} {path} {status} {bytes}B {ms:.1}ms request_id={rid}"
        ));
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let t0 = Instant::now();
    // read *and* write timeouts: a stalled client can neither starve the
    // parser nor pin a handler thread on an unread response or event
    // stream forever
    let io_t = Duration::from_secs(shared.config.io_timeout_secs.max(1));
    let _ = stream.set_read_timeout(Some(io_t));
    let _ = stream.set_write_timeout(Some(io_t));
    let req = match http::read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            let bytes = http::respond_error(&mut stream, &e).unwrap_or(0);
            access_log(shared, "-", "?", "?", e.status, bytes, t0);
            return;
        }
    };
    let rid = request_id(shared, &req);
    // chaos: drop the connection after the request is read but before
    // any response bytes are written — the client sees a clean close and
    // (for idempotent requests) retries
    if let Some(plan) = &shared.config.io_fault {
        if plan.fire("conn") == Some(FaultKind::ConnDrop) {
            obs::counter_add("serve.conn_dropped", 1);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            access_log(shared, &rid, &req.method, &req.path, 0, 0, t0);
            return;
        }
    }
    let segs: Vec<String> =
        req.path.split('/').filter(|s| !s.is_empty()).map(str::to_string).collect();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    // the events stream writes incrementally and owns the socket
    if let ["jobs", id, "events"] = seg_refs.as_slice() {
        if req.method == "GET" {
            handle_events(shared, &mut stream, id);
            access_log(shared, &rid, &req.method, &req.path, 200, 0, t0);
            return;
        }
    }
    // shutdown also owns the socket: the acknowledgement must be on the
    // wire before the drain starts, or process exit (wait() returning
    // once the accept loop and dispatcher join) races this detached
    // handler thread's response write and the client sees a bare close
    if seg_refs.as_slice() == ["shutdown"] && req.method == "POST" {
        handle_shutdown(shared, &mut stream, &req);
        access_log(shared, &rid, &req.method, &req.path, 200, 0, t0);
        return;
    }
    // the Prometheus exposition is the one text/plain surface
    if seg_refs.as_slice() == ["metrics"]
        && req.method == "GET"
        && req.query_param("format") == Some("prom")
    {
        let now_s = sample_now(shared);
        let text = obs::prom::render(&obs::snapshot(), Some((&shared.store, now_s)));
        let bytes =
            http::respond_text(&mut stream, 200, "text/plain; version=0.0.4", &text).unwrap_or(0);
        access_log(shared, &rid, &req.method, &req.path, 200, bytes, t0);
        return;
    }
    let result: Result<(u16, JsonValue), HttpError> = match seg_refs.as_slice() {
        ["jobs"] if req.method == "POST" => handle_submit(shared, &req, &rid),
        ["jobs"] => Err(HttpError::method_not_allowed()),
        ["jobs", id] if req.method == "GET" => handle_status(shared, id),
        ["jobs", _] => Err(HttpError::method_not_allowed()),
        ["jobs", id, "result"] if req.method == "GET" => {
            handle_result(shared, id, req.query_flag("wait"))
        }
        ["jobs", _, "result"] | ["jobs", _, "events"] => Err(HttpError::method_not_allowed()),
        ["metrics"] if req.method == "GET" => Ok((200, metrics_doc(shared))),
        ["metrics"] => Err(HttpError::method_not_allowed()),
        ["stats"] if req.method == "GET" => Ok((200, stats_doc(shared))),
        ["stats"] => Err(HttpError::method_not_allowed()),
        ["healthz"] if req.method == "GET" => Ok((200, healthz_doc(shared))),
        ["healthz"] => Err(HttpError::method_not_allowed()),
        ["shutdown"] => Err(HttpError::method_not_allowed()),
        _ => Err(HttpError::not_found(format!("no such endpoint: {}", req.path))),
    };
    let (status, bytes) = match result {
        Ok((status, doc)) => {
            let hdr = [("X-Request-Id".to_string(), rid.clone())];
            (status, http::respond_json_with(&mut stream, status, &doc, &hdr).unwrap_or(0))
        }
        Err(e) => (e.status, http::respond_error(&mut stream, &e).unwrap_or(0)),
    };
    access_log(shared, &rid, &req.method, &req.path, status, bytes, t0);
}

fn parse_job_id(shared: &Shared, id: &str) -> Result<usize, HttpError> {
    let id: usize = id.parse().map_err(|_| HttpError::not_found(format!("bad job id {id:?}")))?;
    if id >= lock_inner(shared).jobs.len() {
        return Err(HttpError::not_found(format!("no job {id}")));
    }
    Ok(id)
}

/// Replicates the CLI's fault-plan validation: unknown stage names fail
/// the job at submit time instead of silently never firing.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let plan = FaultPlan::parse(spec)?;
    for s in plan.specs() {
        if Stage::parse(&s.stage).is_none() {
            let known: Vec<&str> = Stage::ALL.iter().map(|st| st.name()).collect();
            return Err(format!(
                "fault plan: unknown stage {:?} (expected one of {})",
                s.stage,
                known.join(", ")
            ));
        }
    }
    Ok(plan)
}

/// Everything a manifest entry needs to run, plus its content address.
struct LoadedJob {
    network: Network,
    fault: Option<FaultPlan>,
    prep_key: u64,
    result_key: Option<u64>,
}

/// Loads the design and derives the job's content address: design text
/// hash, library fingerprint and flow parameters. Wall-clock never
/// enters a key, so a resubmit hits regardless of how long the original
/// run took.
fn load_and_key(m: &ManifestJob) -> Result<LoadedJob, String> {
    let plan_spec =
        m.fault_plan.clone().or_else(|| m.inject_panic.then(|| "decompose:panic:1".to_string()));
    let fault = plan_spec.as_deref().map(parse_fault_plan).transpose()?;
    let (network, raw) = m.load_network()?;
    let opts = m.flow_options(false);
    let design_hash = fnv1a64(raw.as_bytes());
    let lib_fp = library_fingerprint(&opts.lib);
    let placer = opts.placer.backend.name();
    let prep_key = KeyBuilder::new("casyn.serve.prep.v1")
        .hash(design_hash)
        .hash(lib_fp)
        .num(m.util)
        .int(m.layers as u64)
        .bool(m.optimize)
        .str(placer)
        .finish();
    let result_key = fault.is_none().then(|| {
        KeyBuilder::new("casyn.serve.job.v1")
            .hash(design_hash)
            .hash(lib_fp)
            .num(m.util)
            .int(m.layers as u64)
            .bool(m.optimize)
            .str(placer)
            .nums(&m.ks)
            .finish()
    });
    Ok(LoadedJob { network, fault, prep_key, result_key })
}

// ---------------------------------------------------------------------------
// Durability: the `casyn.wal.v1` job journal plus the checksummed disk
// cache under `--state-dir`, and the startup replay that restores the
// job table from them.
//
// Locking order is always `Inner` → `Wal`: lifecycle records are
// appended while the state lock is held so journal order matches job-id
// order (replay depends on `admitted` records arriving in id order).
// ---------------------------------------------------------------------------

/// The durable half of the server state.
struct Durable {
    wal: Mutex<Wal>,
    cache: DiskCache,
    /// When the last journal append succeeded; `serve.wal.lag_s` is the
    /// age of this stamp, a proxy for "the journal is keeping up".
    last_append: Mutex<Option<Instant>>,
}

impl Durable {
    fn new(wal: Wal, cache: DiskCache) -> Durable {
        Durable { wal: Mutex::new(wal), cache, last_append: Mutex::new(None) }
    }

    /// Appends one lifecycle record, downgrading failures to a warning:
    /// an unwritable journal degrades durability, not availability. The
    /// journal wedges itself after a torn append (the tail is in an
    /// unknown state), so a single bad write cannot corrupt replay.
    fn append(&self, rec: JsonValue) {
        let mut wal = self.wal.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(e) = wal.append(&rec) {
            obs::counter_add("serve.wal.errors", 1);
            obs::log::warn(&format!("wal: append failed ({e}); durability degraded"));
        } else {
            *self.last_append.lock().unwrap_or_else(|p| p.into_inner()) = Some(Instant::now());
        }
    }

    /// Seconds since the last successful journal append (0 before the
    /// first one).
    fn lag_s(&self) -> f64 {
        self.last_append
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }
}

fn wal_rec(t: &str, job: usize) -> Vec<(String, JsonValue)> {
    vec![("t".into(), JsonValue::Str(t.into())), ("job".into(), JsonValue::Number(job as f64))]
}

/// The `admitted` record: everything replay needs to re-run the job —
/// its display identity, content address, admitting request id and full
/// manifest entry.
fn wal_admitted(id: usize, m: &ManifestJob, result_key: Option<u64>, rid: &str) -> JsonValue {
    let mut f = wal_rec("admitted", id);
    f.push(("name".into(), JsonValue::Str(m.name.clone())));
    f.push(("design".into(), JsonValue::Str(m.design.clone())));
    f.push(("request_id".into(), JsonValue::Str(rid.to_string())));
    if let Some(k) = result_key {
        f.push(("result_key".into(), JsonValue::Str(format!("{k:016x}"))));
    }
    f.push(("manifest".into(), m.to_json()));
    JsonValue::object(f)
}

fn wal_done(id: usize, result_key: Option<u64>, degraded: bool, wall_ms: f64) -> JsonValue {
    let mut f = wal_rec("done", id);
    if let Some(k) = result_key {
        f.push(("result_key".into(), JsonValue::Str(format!("{k:016x}"))));
    }
    f.push(("degraded".into(), JsonValue::Bool(degraded)));
    f.push(("wall_ms".into(), JsonValue::Number(wall_ms)));
    JsonValue::object(f)
}

fn wal_failed(id: usize, error: &str) -> JsonValue {
    let mut f = wal_rec("failed", id);
    f.push(("error".into(), JsonValue::Str(error.into())));
    JsonValue::object(f)
}

/// Reads a finished result out of the disk cache. Corruption was
/// already quarantined (and counted) inside [`DiskCache::get`]; a doc
/// that verified but lacks `rows` is schema drift and reads as a miss.
fn disk_lookup(durable: &Durable, key: u64) -> Option<CachedResult> {
    let doc = durable.cache.get("job", key)?;
    let rows = doc.get("rows")?.clone();
    let degraded = doc.get("degraded").and_then(JsonValue::as_bool).unwrap_or(false);
    Some(CachedResult { rows: Arc::new(rows), degraded })
}

/// One job's state as folded from the replayed journal.
struct Replayed {
    name: String,
    design: String,
    request_id: String,
    status: JobStatus,
    error: Option<String>,
    degraded: bool,
    wall_ms: f64,
    result_key: Option<u64>,
    manifest: Option<JsonValue>,
}

/// Re-parses the manifest entry embedded in an `admitted` record.
fn replayed_manifest_job(mdoc: &JsonValue) -> Result<ManifestJob, String> {
    let one = JsonValue::Array(vec![mdoc.clone()]);
    let mut jobs = parse_manifest_value(&one, &ManifestDefaults::default())?;
    Ok(jobs.remove(0))
}

/// Opens the durable state under `dir` and replays the journal into
/// `inner`: jobs that reached `done` before the crash are served from
/// the disk cache (re-enqueued if their artifact is missing or was
/// quarantined), other terminal jobs keep their recorded outcome, and
/// admitted-but-unfinished jobs are re-enqueued through the normal
/// dispatcher path. A journal damaged anywhere but its final line is a
/// typed, line-numbered error and the server refuses to start.
fn recover_into(
    dir: &std::path::Path,
    fault: Option<FaultPlan>,
    inner: &mut Inner,
) -> Result<Durable, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("state-dir {}: {e}", dir.display()))?;
    let cache = DiskCache::open(&dir.join("cache"), fault.clone())
        .map_err(|e| format!("state-dir cache: {e}"))?;
    let wal_path = dir.join("casyn.wal.v1");
    let replay = Wal::replay(&wal_path).map_err(|e| {
        format!(
            "state-dir journal {}: {e}; refusing to start (move it aside to reset)",
            wal_path.display()
        )
    })?;
    obs::counter_add("serve.wal.replayed", replay.records.len() as u64);
    if replay.torn_tail {
        obs::log::warn("wal: tolerated a torn final record (crash artifact)");
    }

    // fold lifecycle records into per-job state (last record wins)
    let mut folded: Vec<Replayed> = Vec::new();
    for r in &replay.records {
        let t = r.get("t").and_then(JsonValue::as_str).unwrap_or("");
        let Some(id) = r.get("job").and_then(JsonValue::as_f64).map(|f| f as usize) else {
            continue; // forward-compat: jobless records are skipped
        };
        if t == "admitted" {
            if id != folded.len() {
                return Err(format!(
                    "state-dir journal: admitted job {id} out of order (expected {})",
                    folded.len()
                ));
            }
            folded.push(Replayed {
                name: r.get("name").and_then(JsonValue::as_str).unwrap_or("?").to_string(),
                design: r.get("design").and_then(JsonValue::as_str).unwrap_or("?").to_string(),
                request_id: r
                    .get("request_id")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                status: JobStatus::Queued,
                error: None,
                degraded: false,
                wall_ms: 0.0,
                result_key: r
                    .get("result_key")
                    .and_then(JsonValue::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok()),
                manifest: r.get("manifest").cloned(),
            });
            continue;
        }
        let Some(f) = folded.get_mut(id) else { continue };
        match t {
            "started" => f.status = JobStatus::Running,
            "done" => {
                f.status = JobStatus::Done;
                f.degraded = r.get("degraded").and_then(JsonValue::as_bool).unwrap_or(false);
                f.wall_ms = r.get("wall_ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
            }
            "failed" => {
                f.status = JobStatus::Failed;
                f.error = Some(
                    r.get("error").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
                );
            }
            "cancelled" => f.status = JobStatus::Cancelled,
            _ => {} // forward-compat: unknown record types are skipped
        }
    }

    let durable = Durable::new(cache_wal_open(&wal_path, fault)?, cache);
    for (id, f) in folded.iter().enumerate() {
        let mut rec = JobRecord {
            name: f.name.clone(),
            design: f.design.clone(),
            request_id: f.request_id.clone(),
            status: JobStatus::Queued,
            cache: "miss",
            rows: None,
            degraded: false,
            error: None,
            wall_ms: 0.0,
            events: Vec::new(),
            submitted: Instant::now(),
        };
        push_event(&mut rec, event("recovered"));
        match f.status {
            JobStatus::Done => {
                match f.result_key.and_then(|k| disk_lookup(&durable, k)) {
                    Some(c) => {
                        rec.status = JobStatus::Done;
                        rec.cache = "disk";
                        rec.rows = Some(c.rows.clone());
                        rec.degraded = c.degraded;
                        rec.wall_ms = f.wall_ms;
                        push_event(&mut rec, event("done"));
                        if let Some(k) = f.result_key {
                            inner.results.insert(k, c);
                        }
                    }
                    // the artifact is gone (never spilled, or quarantined
                    // as corrupt): recompute rather than serve nothing
                    None => requeue_replayed(inner, &durable, id, &mut rec, f),
                }
            }
            JobStatus::Failed | JobStatus::Cancelled => {
                rec.status = f.status;
                rec.cache = "none";
                rec.error = f.error.clone();
                rec.wall_ms = f.wall_ms;
                push_event(&mut rec, event(f.status.as_str()));
            }
            JobStatus::Queued | JobStatus::Running => {
                requeue_replayed(inner, &durable, id, &mut rec, f)
            }
        }
        inner.jobs.push(rec);
    }
    Ok(durable)
}

/// Opens the journal for appending (the replay above already validated
/// it). Split out so `recover_into` reads linearly.
fn cache_wal_open(path: &std::path::Path, fault: Option<FaultPlan>) -> Result<Wal, String> {
    Wal::open(path, fault).map_err(|e| format!("state-dir journal {}: {e}", path.display()))
}

/// Puts one unfinished (or artifact-less) replayed job back through the
/// admission classifier: disk hit, follower of an already re-enqueued
/// duplicate, or a fresh queue entry. The `admitted` record already
/// exists, so only terminal records will follow.
fn requeue_replayed(
    inner: &mut Inner,
    durable: &Durable,
    id: usize,
    rec: &mut JobRecord,
    f: &Replayed,
) {
    let loaded = match &f.manifest {
        None => Err("journal admitted record carries no manifest".to_string()),
        Some(mdoc) => replayed_manifest_job(mdoc).and_then(|m| load_and_key(&m).map(|l| (m, l))),
    };
    match loaded {
        Err(e) => {
            rec.status = JobStatus::Failed;
            rec.cache = "none";
            rec.error = Some(format!("recovery: {e}"));
            let mut ev = event("failed");
            ev.push(("error".into(), JsonValue::Str(format!("recovery: {e}"))));
            push_event(rec, ev);
            obs::counter_add("serve.jobs_failed", 1);
        }
        Ok((m, l)) => {
            if let Some(k) = l.result_key {
                if let Some(c) = disk_lookup(durable, k) {
                    rec.status = JobStatus::Done;
                    rec.cache = "disk";
                    rec.rows = Some(c.rows.clone());
                    rec.degraded = c.degraded;
                    push_event(rec, event("done"));
                    inner.results.insert(k, c);
                    return;
                }
                if let Some(followers) = inner.inflight.get_mut(&k) {
                    rec.cache = "dedup";
                    push_event(rec, event("deduped"));
                    followers.push(id);
                    return;
                }
                inner.inflight.insert(k, Vec::new());
            } else {
                rec.cache = "bypass";
            }
            push_event(rec, event("queued"));
            obs::counter_add("serve.recovered", 1);
            inner.queue.push_back(Task {
                job_id: id,
                request_id: f.request_id.clone(),
                mjob: m,
                network: l.network,
                fault: l.fault,
                prep_key: l.prep_key,
                result_key: l.result_key,
            });
        }
    }
}

fn push_event(rec: &mut JobRecord, mut fields: Vec<(String, JsonValue)>) {
    let t_ms = rec.submitted.elapsed().as_secs_f64() * 1e3;
    fields.push(("t_ms".into(), JsonValue::Number(t_ms)));
    if !rec.request_id.is_empty() {
        fields.push(("request_id".into(), JsonValue::Str(rec.request_id.clone())));
    }
    rec.events.push(JsonValue::object(fields).to_string_compact());
}

fn event(name: &str) -> Vec<(String, JsonValue)> {
    vec![("event".into(), JsonValue::Str(name.into()))]
}

/// How submission classified one manifest entry.
enum Admit {
    LoadError(String),
    /// Served from cache; the `&'static str` is the tag (`"hit"` for
    /// the in-memory LRU, `"disk"` for a spilled artifact).
    Hit(CachedResult, &'static str),
    Dedup(u64),
    Enqueue,
}

fn handle_submit(
    shared: &Arc<Shared>,
    req: &Request,
    rid: &str,
) -> Result<(u16, JsonValue), HttpError> {
    // memory watchdog: shed before parsing the body into yet more heap
    let limit = shared.config.mem_limit_bytes;
    if limit > 0 {
        let live = obs::alloc::current_bytes();
        if live > limit {
            obs::counter_add("serve.shed", 1);
            return Err(HttpError::unavailable(format!(
                "live heap {live} B exceeds the {limit} B --mem-limit; shedding"
            ))
            .with_retry_after(1));
        }
    }
    let text = String::from_utf8_lossy(&req.body).into_owned();
    let limits = JsonLimits { max_bytes: shared.config.max_body_bytes, ..Default::default() };
    let doc = JsonValue::parse_with_limits(&text, &limits).map_err(|e| match e.kind {
        JsonErrorKind::TooLarge => HttpError::too_large(shared.config.max_body_bytes),
        _ => HttpError::bad_request(format!("manifest: {e}")),
    })?;
    let manifest = parse_manifest_value(&doc, &ManifestDefaults::default())
        .map_err(|e| HttpError::bad_request(format!("manifest: {e}")))?;
    // design loading and content addressing happen outside the state lock
    let loaded: Vec<(ManifestJob, Result<LoadedJob, String>)> = manifest
        .into_iter()
        .map(|m| {
            let l = load_and_key(&m);
            (m, l)
        })
        .collect();

    let mut g = lock_inner(shared);
    if g.draining {
        return Err(HttpError::unavailable("server is draining"));
    }
    // classification pass: decide every job's fate before mutating, so a
    // 429 rejects the whole request without admitting a partial batch
    let mut admits = Vec::with_capacity(loaded.len());
    let mut pending: HashSet<u64> = HashSet::new();
    for (_, l) in &loaded {
        match l {
            Err(e) => admits.push(Admit::LoadError(e.clone())),
            Ok(l) => match l.result_key {
                Some(k) => {
                    if let Some(c) = g.results.get(k) {
                        admits.push(Admit::Hit(c.clone(), "hit"));
                    } else if g.inflight.contains_key(&k) || pending.contains(&k) {
                        admits.push(Admit::Dedup(k));
                    } else if let Some(c) = shared.durable.as_ref().and_then(|d| disk_lookup(d, k))
                    {
                        // spilled by an earlier run (possibly before a
                        // restart): promote back into the memory LRU
                        g.results.insert(k, c.clone());
                        admits.push(Admit::Hit(c, "disk"));
                    } else {
                        pending.insert(k);
                        admits.push(Admit::Enqueue);
                    }
                }
                None => admits.push(Admit::Enqueue),
            },
        }
    }
    let slots = admits.iter().filter(|a| matches!(a, Admit::Enqueue)).count();
    if g.queue.len() + slots > shared.config.queue_capacity {
        obs::counter_add("serve.rejected", loaded.len() as u64);
        return Err(HttpError::backpressure(format!(
            "queue full: {} queued of capacity {}, {slots} more requested",
            g.queue.len(),
            shared.config.queue_capacity
        )));
    }
    // admission pass
    let mut out = Vec::with_capacity(loaded.len());
    for ((m, l), admit) in loaded.into_iter().zip(admits) {
        let id = g.jobs.len();
        let mut rec = JobRecord {
            name: m.name.clone(),
            design: m.design.clone(),
            request_id: rid.to_string(),
            status: JobStatus::Queued,
            cache: "miss",
            rows: None,
            degraded: false,
            error: None,
            wall_ms: 0.0,
            events: Vec::new(),
            submitted: Instant::now(),
        };
        push_event(&mut rec, event("submitted"));
        obs::counter_add("serve.submitted", 1);
        // journal the admission before the outcome records below; the
        // `admitted` record carries the manifest so replay can re-run
        let result_key = l.as_ref().ok().and_then(|l| l.result_key);
        if let Some(d) = &shared.durable {
            d.append(wal_admitted(id, &m, result_key, rid));
        }
        match admit {
            Admit::LoadError(e) => {
                rec.status = JobStatus::Failed;
                rec.cache = "none";
                rec.error = Some(e.clone());
                let mut ev = event("failed");
                ev.push(("error".into(), JsonValue::Str(e.clone())));
                push_event(&mut rec, ev);
                obs::counter_add("serve.jobs_failed", 1);
                if let Some(d) = &shared.durable {
                    d.append(wal_failed(id, &e));
                }
            }
            Admit::Hit(c, tag) => {
                rec.status = JobStatus::Done;
                rec.cache = tag;
                rec.rows = Some(c.rows);
                rec.degraded = c.degraded;
                push_event(&mut rec, event("cache_hit"));
                push_event(&mut rec, event("done"));
                obs::counter_add("serve.cache_hits", 1);
                obs::counter_add("serve.jobs_done", 1);
                if let Some(d) = &shared.durable {
                    d.append(wal_done(id, result_key, rec.degraded, 0.0));
                }
            }
            Admit::Dedup(k) => {
                rec.cache = "dedup";
                push_event(&mut rec, event("deduped"));
                g.inflight.entry(k).or_default().push(id);
                obs::counter_add("serve.deduped", 1);
            }
            Admit::Enqueue => {
                let l = l.expect("classified Enqueue from Ok");
                if l.result_key.is_none() {
                    rec.cache = "bypass";
                }
                push_event(&mut rec, event("queued"));
                if let Some(k) = l.result_key {
                    g.inflight.insert(k, Vec::new());
                }
                g.queue.push_back(Task {
                    job_id: id,
                    request_id: rid.to_string(),
                    mjob: m.clone(),
                    network: l.network,
                    fault: l.fault,
                    prep_key: l.prep_key,
                    result_key: l.result_key,
                });
                obs::counter_add("serve.queued", 1);
            }
        }
        out.push(JsonValue::object(vec![
            ("id".into(), JsonValue::Number(id as f64)),
            ("name".into(), JsonValue::Str(m.name)),
            ("status".into(), JsonValue::Str(rec.status.as_str().into())),
            ("cache".into(), JsonValue::Str(rec.cache.into())),
        ]));
        g.jobs.push(rec);
    }
    drop(g);
    shared.queue_cv.notify_all();
    shared.state_cv.notify_all();
    Ok((
        202,
        JsonValue::object(vec![
            ("request_id".into(), JsonValue::Str(rid.to_string())),
            ("jobs".into(), JsonValue::Array(out)),
        ]),
    ))
}

fn status_doc(rec: &JobRecord, id: usize, with_rows: bool) -> JsonValue {
    let mut doc = vec![
        ("id".into(), JsonValue::Number(id as f64)),
        ("name".into(), JsonValue::Str(rec.name.clone())),
        ("design".into(), JsonValue::Str(rec.design.clone())),
        ("request_id".into(), JsonValue::Str(rec.request_id.clone())),
        ("status".into(), JsonValue::Str(rec.status.as_str().into())),
        ("cache".into(), JsonValue::Str(rec.cache.into())),
        ("degraded".into(), JsonValue::Bool(rec.degraded)),
        ("wall_ms".into(), JsonValue::Number(rec.wall_ms)),
        ("events".into(), JsonValue::Number(rec.events.len() as f64)),
    ];
    if let Some(e) = &rec.error {
        doc.push(("error".into(), JsonValue::Str(e.clone())));
    }
    if with_rows {
        let rows = match &rec.rows {
            Some(r) => (**r).clone(),
            None => JsonValue::Array(Vec::new()),
        };
        doc.push(("rows".into(), rows));
    }
    JsonValue::object(doc)
}

fn handle_status(shared: &Shared, id: &str) -> Result<(u16, JsonValue), HttpError> {
    let id = parse_job_id(shared, id)?;
    let g = lock_inner(shared);
    Ok((200, status_doc(&g.jobs[id], id, false)))
}

fn handle_result(shared: &Shared, id: &str, wait: bool) -> Result<(u16, JsonValue), HttpError> {
    let id = parse_job_id(shared, id)?;
    let mut g = lock_inner(shared);
    if wait {
        let deadline = Instant::now() + Duration::from_secs(shared.config.result_wait_secs);
        while !g.jobs[id].status.terminal() {
            if Instant::now() > deadline {
                return Err(HttpError::conflict(format!("job {id} still running")));
            }
            let (ng, _) = shared
                .state_cv
                .wait_timeout(g, Duration::from_millis(500))
                .unwrap_or_else(|p| p.into_inner());
            g = ng;
        }
    } else if !g.jobs[id].status.terminal() {
        return Err(HttpError::conflict(format!(
            "job {id} is {}; poll again or pass ?wait=1",
            g.jobs[id].status.as_str()
        )));
    }
    Ok((200, status_doc(&g.jobs[id], id, true)))
}

fn handle_events(shared: &Shared, stream: &mut TcpStream, id: &str) {
    let id = match parse_job_id(shared, id) {
        Ok(id) => id,
        Err(e) => {
            let _ = http::respond_error(stream, &e);
            return;
        }
    };
    if http::start_ndjson_stream(stream).is_err() {
        return;
    }
    let mut sent = 0usize;
    loop {
        let (chunk, terminal) = {
            let mut g = lock_inner(shared);
            loop {
                let rec = &g.jobs[id];
                if rec.events.len() > sent || rec.status.terminal() {
                    let chunk: Vec<String> = rec.events[sent..].to_vec();
                    sent = rec.events.len();
                    break (chunk, rec.status.terminal());
                }
                let (ng, _) = shared
                    .state_cv
                    .wait_timeout(g, Duration::from_millis(500))
                    .unwrap_or_else(|p| p.into_inner());
                g = ng;
            }
        };
        for line in &chunk {
            use std::io::Write;
            if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return; // client went away
            }
        }
        {
            use std::io::Write;
            let _ = stream.flush();
        }
        if terminal {
            return;
        }
    }
}

/// Refreshes the server gauges (queue depth, inflight, live heap, WAL
/// lag, uptime) and feeds the current registry snapshot into the
/// windowed series at the current server second, which it returns.
/// Called once per second by the sampler thread and on demand by every
/// read surface, so a scrape never sees stale windows.
fn sample_now(shared: &Shared) -> u64 {
    let now_s = shared.started.elapsed().as_secs();
    {
        let g = lock_inner(shared);
        obs::gauge_set("serve.queue_depth", g.queue.len() as f64);
        let inflight = g.jobs.iter().filter(|r| !r.status.terminal()).count();
        obs::gauge_set("serve.inflight", inflight as f64);
    }
    obs::gauge_set("serve.live_bytes", obs::alloc::current_bytes() as f64);
    obs::gauge_set("serve.uptime_s", now_s as f64);
    if let Some(d) = &shared.durable {
        obs::gauge_set("serve.wal.lag_s", d.lag_s());
    }
    shared.store.observe(now_s, &obs::snapshot());
    now_s
}

/// Background sampler: one observation per second until shutdown. The
/// read surfaces also sample on demand, so this thread only guarantees
/// the windows stay populated while nobody is scraping.
fn sampler_loop(shared: &Arc<Shared>) {
    while !shared.stop_accept.load(Ordering::SeqCst) {
        sample_now(shared);
        for _ in 0..5 {
            if shared.stop_accept.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(200));
        }
    }
}

/// Keys `/stats` ships as raw per-second series for sparklines: job
/// completion rate and the router's overflow trajectory.
const SPARK_KEYS: [&str; 2] = ["serve.jobs_done", "route.overflow"];

/// Seconds of per-second history `/stats` ships per sparkline key.
const SPARK_LEN: usize = 60;

fn metrics_doc(shared: &Shared) -> JsonValue {
    sample_now(shared);
    JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.metrics.v1".into())),
        ("metrics".into(), snapshot_json(&obs::snapshot())),
    ])
}

/// The `casyn.stats.v1` document: windowed summaries from the series
/// store plus identity fields (`uptime_s`, `version`, `degraded`).
fn stats_doc(shared: &Shared) -> JsonValue {
    let now_s = sample_now(shared);
    let doc = shared.store.stats_json(now_s, &SPARK_KEYS, SPARK_LEN);
    let JsonValue::Object(mut fields) = doc else { return doc };
    fields.insert(2, ("uptime_s".into(), JsonValue::Number(now_s as f64)));
    fields.insert(3, ("version".into(), JsonValue::Str(version())));
    fields.insert(4, ("degraded".into(), JsonValue::Bool(shed_recently(shared, now_s))));
    JsonValue::Object(fields)
}

/// Whether the mem-limit watchdog shed anything in the last 10 s
/// window — the `degraded` flag `/healthz` and `/stats` report.
fn shed_recently(shared: &Shared, now_s: u64) -> bool {
    shared.store.counter_delta(now_s, 10, "serve.shed") > 0
}

/// `/healthz` enriched: uptime, version, queue depth and the degraded
/// flag. `status` stays `"ok"` while the process serves — degradation
/// is a separate signal, not an availability one.
fn healthz_doc(shared: &Shared) -> JsonValue {
    let now_s = sample_now(shared);
    let queue_depth = lock_inner(shared).queue.len();
    JsonValue::object(vec![
        ("status".into(), JsonValue::Str("ok".into())),
        ("uptime_s".into(), JsonValue::Number(now_s as f64)),
        ("version".into(), JsonValue::Str(version())),
        ("queue_depth".into(), JsonValue::Number(queue_depth as f64)),
        ("degraded".into(), JsonValue::Bool(shed_recently(shared, now_s))),
    ])
}

fn handle_shutdown(shared: &Arc<Shared>, stream: &mut TcpStream, req: &Request) {
    let body = String::from_utf8_lossy(&req.body);
    let cancel_mode = if body.trim().is_empty() {
        false
    } else {
        match JsonValue::parse(&body) {
            Ok(doc) => doc.get("mode").and_then(|v| v.as_str()) == Some("cancel"),
            Err(e) => {
                let _ = http::respond_error(
                    stream,
                    &HttpError::bad_request(format!("shutdown body: {e}")),
                );
                return;
            }
        }
    };
    // acknowledge first: once the flags below flip, wait() can return
    // and the process may exit before a later write would land
    let doc = JsonValue::object(vec![
        ("status".into(), JsonValue::Str("draining".into())),
        ("mode".into(), JsonValue::Str(if cancel_mode { "cancel".into() } else { "drain".into() })),
    ]);
    let _ = http::respond_json(stream, 200, &doc);
    {
        let mut g = lock_inner(shared);
        g.draining = true;
    }
    if cancel_mode {
        // queued-but-unstarted jobs are skipped at claim time and
        // flushed as cancelled; running jobs always finish
        shared.cancel.cancel();
    }
    shared.queue_cv.notify_all();
    shared.state_cv.notify_all();
    shared.stop_accept.store(true, Ordering::SeqCst);
    // unblock the accept loop so it can observe the flag
    let _ = TcpStream::connect(shared.addr);
}

fn dispatcher_loop(shared: &Arc<Shared>, pool: &Pool) {
    loop {
        let tasks: Vec<Task> = {
            let mut g = lock_inner(shared);
            loop {
                if !g.queue.is_empty() {
                    break g.queue.drain(..).collect();
                }
                if g.draining {
                    return;
                }
                g = shared.queue_cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        };
        run_tasks(shared, pool, &tasks);
    }
}

fn mark_running(shared: &Shared, job_id: usize) {
    let mut g = lock_inner(shared);
    if g.jobs[job_id].status == JobStatus::Queued {
        g.jobs[job_id].status = JobStatus::Running;
        push_event(&mut g.jobs[job_id], event("started"));
        if let Some(d) = &shared.durable {
            d.append(JsonValue::object(wal_rec("started", job_id)));
        }
    }
    drop(g);
    shared.state_cv.notify_all();
}

/// Returns the shared front-end artifact for `key`, computing it at
/// most once per key even under concurrent requests (each key has its
/// own mutex, so distinct designs still prepare in parallel).
fn prepared_for(
    shared: &Shared,
    key: u64,
    network: &Network,
    opts: &FlowOptions,
) -> Result<Arc<Prepared>, FlowError> {
    let slot: PrepSlot = {
        let mut g = lock_inner(shared);
        match g.prepared.get(key) {
            Some(s) => s.clone(),
            None => {
                let s: PrepSlot = Arc::new(Mutex::new(None));
                g.prepared.insert(key, s.clone());
                s
            }
        }
    };
    let mut s = slot.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(p) = s.as_ref() {
        obs::counter_add("serve.prepare_hits", 1);
        return Ok(p.clone());
    }
    let p = Arc::new(prepare(network, opts)?);
    *s = Some(p.clone());
    Ok(p)
}

fn run_tasks(shared: &Arc<Shared>, pool: &Pool, tasks: &[Task]) {
    let bopts = BatchOptions {
        retries: shared.config.retries,
        escalate_k: false,
        cancel: Some(shared.cancel.clone()),
    };
    let jobs: Vec<BatchJob> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut opts = t.mjob.flow_options(false);
            opts.fault = t.fault.as_ref().map(|p| p.fresh());
            BatchJob {
                // the name carries the task index: the runner only gets
                // &BatchJob, and display names live in the job table
                name: i.to_string(),
                network: t.network.clone(),
                ks: t.mjob.ks.clone(),
                opts,
                deadline: t.mjob.deadline_ms.map(|ms| Duration::from_secs_f64(ms / 1e3)),
            }
        })
        .collect();
    let runner = |j: &BatchJob| -> Result<JobSuccess, FlowError> {
        let ti: usize = j.name.parse().expect("batch job name is the task index");
        let t = &tasks[ti];
        let mut sp = obs::trace::span("serve.job");
        sp.attr_num("job", t.job_id as f64);
        if !t.request_id.is_empty() {
            sp.attr_str("request_id", &t.request_id);
        }
        mark_running(shared, t.job_id);
        obs::counter_add("serve.computes", 1);
        if t.fault.is_some() {
            // fault-plan jobs take the stock batch path so injected
            // failures hit the same stages they would under `casyn batch`
            return run_batch_job(j, &bopts);
        }
        let prep = prepared_for(shared, t.prep_key, &j.network, &j.opts)?;
        let mut rows = Vec::with_capacity(j.ks.len());
        for &k in &j.ks {
            let result = congestion_flow_prepared(&prep, k, &j.opts)?;
            {
                let mut g = lock_inner(shared);
                let mut ev = event("k_done");
                ev.push(("k".into(), JsonValue::Number(k)));
                ev.push(("violations".into(), JsonValue::Number(result.route.violations as f64)));
                push_event(&mut g.jobs[t.job_id], ev);
            }
            shared.state_cv.notify_all();
            rows.push(KSweepEntry { k, result });
        }
        Ok(JobSuccess { rows, degraded: false })
    };
    let on_done = |i: usize, jr: &BatchJobReport| finish_job(shared, &tasks[i], jr);
    run_batch_observed(&jobs, pool, &bopts, runner, on_done);
}

fn finish_job(shared: &Shared, t: &Task, jr: &BatchJobReport) {
    let mut g = lock_inner(shared);
    match &jr.outcome {
        Ok(s) => {
            let rows = Arc::new(JsonValue::Array(s.rows.iter().map(k_row_json).collect()));
            if let Some(k) = t.result_key {
                g.results.insert(k, CachedResult { rows: rows.clone(), degraded: s.degraded });
                // spill to disk *before* the terminal journal record, so
                // a replayed `done` implies the artifact should exist
                // (replay recomputes if the write below failed)
                if let Some(d) = &shared.durable {
                    let doc = JsonValue::object(vec![
                        ("schema".into(), JsonValue::Str("casyn.serve.cache.v1".into())),
                        ("rows".into(), (*rows).clone()),
                        ("degraded".into(), JsonValue::Bool(s.degraded)),
                    ]);
                    if let Err(e) = d.cache.put("job", k, &doc) {
                        obs::log::warn(&format!("cache: spill of {k:016x} failed: {e}"));
                    }
                }
            }
            let followers = t.result_key.and_then(|k| g.inflight.remove(&k)).unwrap_or_default();
            for id in std::iter::once(t.job_id).chain(followers) {
                let rec = &mut g.jobs[id];
                rec.status = JobStatus::Done;
                rec.rows = Some(rows.clone());
                rec.degraded = s.degraded;
                rec.wall_ms = jr.wall_ms;
                push_event(rec, event("done"));
                obs::counter_add("serve.jobs_done", 1);
                if let Some(d) = &shared.durable {
                    d.append(wal_done(id, t.result_key, s.degraded, jr.wall_ms));
                }
            }
        }
        Err(e) => {
            let cancelled = e.kind == FlowErrorKind::Cancelled;
            let status = if cancelled { JobStatus::Cancelled } else { JobStatus::Failed };
            let followers = t.result_key.and_then(|k| g.inflight.remove(&k)).unwrap_or_default();
            for id in std::iter::once(t.job_id).chain(followers) {
                let rec = &mut g.jobs[id];
                rec.status = status;
                rec.error = Some(e.to_string());
                rec.wall_ms = jr.wall_ms;
                let mut ev = event(status.as_str());
                ev.push(("error".into(), JsonValue::Str(e.to_string())));
                push_event(rec, ev);
                obs::counter_add(
                    if cancelled { "serve.jobs_cancelled" } else { "serve.jobs_failed" },
                    1,
                );
                if let Some(d) = &shared.durable {
                    d.append(if cancelled {
                        JsonValue::object(wal_rec("cancelled", id))
                    } else {
                        wal_failed(id, &e.to_string())
                    });
                }
            }
        }
    }
    drop(g);
    shared.state_cv.notify_all();
}
