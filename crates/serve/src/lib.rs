//! `casyn-serve` — synthesis as a long-running service.
//!
//! A thread-per-connection HTTP/1.1 server (std only, no async runtime)
//! that accepts batch-manifest job submissions, runs them on the
//! `casyn-exec` pool through the `casyn-flow` batch runner, and answers
//! identical resubmissions from a content-addressed artifact cache.
//!
//! * [`http`] — minimal HTTP/1.1 request parsing and response writing,
//!   with explicit body limits (oversized → 413, chunked → 411).
//! * [`cache`] — the LRU caches behind the service: full results keyed
//!   by content address, and prepare-once artifacts shared between jobs
//!   that differ only in their K schedule — plus the checksummed
//!   [`cache::DiskCache`] spill behind `--state-dir`.
//! * [`client`] — a tiny blocking HTTP client for the CLI's `submit`,
//!   `shutdown` and `loadgen` commands (and CI smoke tests), with typed
//!   errors and deterministic exponential backoff for idempotent GETs.
//! * [`server`] — the service itself: job table, bounded admission
//!   queue with backpressure, dispatcher, per-job event streams,
//!   metrics endpoints, graceful drain, and (with a state directory) a
//!   write-ahead job journal replayed on startup for crash recovery.
//!
//! ## Endpoints
//!
//! | method | path | purpose |
//! |--------|------|---------|
//! | POST | `/jobs` | submit a batch manifest; 202 with per-job ids |
//! | GET  | `/jobs/<id>` | job status document |
//! | GET  | `/jobs/<id>/result` | rows; `?wait=1` blocks until terminal |
//! | GET  | `/jobs/<id>/events` | NDJSON stage-progress stream |
//! | GET  | `/metrics` | casyn-obs registry snapshot (JSON) |
//! | GET  | `/metrics?format=prom` | Prometheus text exposition |
//! | GET  | `/stats` | windowed 10s/1m/5m rates, percentiles, sparklines |
//! | GET  | `/healthz` | liveness: uptime, version, queue depth, degraded |
//! | POST | `/shutdown` | graceful drain (`{"mode": "cancel"}` for fast) |
//!
//! ## Live telemetry
//!
//! A background sampler snapshots the metrics registry (plus queue
//! depth, live heap bytes and WAL lag) into an `obs::SeriesStore` once
//! per second; `/stats` and `/metrics?format=prom` additionally sample
//! on demand so scrapes never see stale windows. Every HTTP request
//! carries a `request_id` (client-supplied `X-Request-Id` or generated)
//! that flows through admission, the job journal, trace spans, the
//! NDJSON event stream and the rate-limited access log, so one id
//! correlates all surfaces. `casyn top <addr>` renders `/stats` as a
//! live terminal dashboard.
//!
//! ## Content addressing
//!
//! A job's cache key is built with [`casyn_flow::KeyBuilder`] from the
//! design text hash, the library fingerprint and the flow parameters —
//! never from timings, so a resubmit of the same logical job is a hit
//! regardless of how long the first run took. Jobs carrying a fault
//! plan bypass the cache entirely: an injected failure must never be
//! replayed as a cached artifact.

pub mod cache;
pub mod client;
pub mod http;
pub mod server;

pub use cache::{DiskCache, Lru};
pub use client::{
    request, request_json, request_with, wait_ready, ClientError, ClientErrorKind, Response,
    RetryPolicy,
};
pub use http::{HttpError, Request};
pub use server::{version, ServeConfig, Server};
