//! Criterion bench: technology-mapping throughput (partition + match +
//! cover + emit) across schemes and cost functions.

use casyn_core::{map, CostKind, MapOptions, PartitionScheme};
use casyn_library::corelib018;
use casyn_logic::decompose;
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_netlist::Point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mapping(c: &mut Criterion) {
    let pla = random_pla(&PlaGenConfig {
        inputs: 14,
        outputs: 12,
        terms: 300,
        min_literals: 3,
        max_literals: 8,
        mean_outputs_per_term: 1.4,
        seed: 5,
    });
    let dec = decompose(&pla.to_network());
    let (graph, _) = dec.graph.sweep();
    let lib = corelib018();
    let n = graph.num_vertices();
    let cols = (n as f64).sqrt().ceil() as usize;
    let positions: Vec<Point> =
        (0..n).map(|i| Point::new((i % cols) as f64 * 3.0, (i / cols) as f64 * 6.4)).collect();
    let mut group = c.benchmark_group("mapping");
    group.sample_size(20);
    for (name, opts) in [
        (
            "dagon_area",
            MapOptions {
                scheme: PartitionScheme::Dagon,
                cost: CostKind::Area,
                ..Default::default()
            },
        ),
        (
            "pdp_area_wire",
            MapOptions {
                scheme: PartitionScheme::PlacementDriven,
                cost: CostKind::AreaWire { k: 0.5 },
                ..Default::default()
            },
        ),
        (
            "cone_delay",
            MapOptions {
                scheme: PartitionScheme::Cone,
                cost: CostKind::Delay,
                ..Default::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("scheme", name), &opts, |b, opts| {
            b.iter(|| map(&graph, &positions, &lib, opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
