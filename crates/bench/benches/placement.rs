//! Criterion bench: recursive min-cut placement of the subject graph.

use casyn_logic::decompose;
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_place::{place_subject, Floorplan, PlacerOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_placement(c: &mut Criterion) {
    let pla = random_pla(&PlaGenConfig {
        inputs: 14,
        outputs: 12,
        terms: 300,
        min_literals: 3,
        max_literals: 8,
        mean_outputs_per_term: 1.4,
        seed: 5,
    });
    let dec = decompose(&pla.to_network());
    let (graph, _) = dec.graph.sweep();
    let fp = Floorplan::with_area(graph.num_gates() as f64 * 12.3 / 0.61, 1.0);
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.bench_function("place_subject", |b| {
        b.iter(|| place_subject(&graph, &fp, &PlacerOptions::default()))
    });
    group.bench_function("place_subject_1sweep", |b| {
        b.iter(|| place_subject(&graph, &fp, &PlacerOptions { sweeps: 1, ..Default::default() }))
    });
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
