//! Criterion bench: DAG partitioning schemes (the paper's Fig. 2
//! algorithm vs DAGON and cone partitioning).

use casyn_core::{partition, PartitionScheme};
use casyn_logic::decompose;
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_netlist::Point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partitioning(c: &mut Criterion) {
    let pla = random_pla(&PlaGenConfig {
        inputs: 14,
        outputs: 12,
        terms: 600,
        min_literals: 3,
        max_literals: 8,
        mean_outputs_per_term: 1.4,
        seed: 5,
    });
    let dec = decompose(&pla.to_network());
    let (graph, _) = dec.graph.sweep();
    let n = graph.num_vertices();
    let cols = (n as f64).sqrt().ceil() as usize;
    let positions: Vec<Point> =
        (0..n).map(|i| Point::new((i % cols) as f64 * 3.0, (i / cols) as f64 * 6.4)).collect();
    let mut group = c.benchmark_group("partitioning");
    for (name, scheme) in [
        ("dagon", PartitionScheme::Dagon),
        ("cone", PartitionScheme::Cone),
        ("placement_driven", PartitionScheme::PlacementDriven),
    ] {
        group.bench_with_input(BenchmarkId::new("scheme", name), &scheme, |b, &s| {
            b.iter(|| partition(&graph, s, &positions))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
