//! Criterion bench: negotiated-congestion global routing.

use casyn_flow::{congestion_flow_prepared, prepare, FlowOptions};
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_route::{route_mapped, RouteConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_routing(c: &mut Criterion) {
    let pla = random_pla(&PlaGenConfig {
        inputs: 14,
        outputs: 12,
        terms: 300,
        min_literals: 3,
        max_literals: 8,
        mean_outputs_per_term: 1.4,
        seed: 5,
    });
    let net = pla.to_network();
    let opts = FlowOptions::default();
    let prep = prepare(&net, &opts).expect("prepare failed");
    let flow = congestion_flow_prepared(&prep, 0.5, &opts).expect("flow failed");
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for scale in [1.5f64, 3.0] {
        let cfg = RouteConfig { capacity_scale: scale, ..opts.route };
        group.bench_function(format!("route_scale_{scale}"), |b| {
            b.iter(|| route_mapped(&flow.netlist, &prep.floorplan, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
