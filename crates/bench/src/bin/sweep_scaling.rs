//! Sweep-scaling bench: wall-clock of the paper's 14-point K sweep
//! (Tables 2/4) run serially vs. fanned out over a `casyn-exec` pool
//! with 1, 2, and 4 workers, on one moderate synthetic design.
//!
//! Emits `BENCH_sweep.json` (CI uploads it as an artifact) and verifies
//! on the way that every parallel configuration reproduces the serial
//! rows bit for bit — the pool's core guarantee. Speedup is whatever the
//! host gives: on a single-core runner the parallel configurations
//! roughly tie with serial (scheduling overhead aside); on a 4+-core
//! machine the 4-worker sweep is the number to look at.
//!
//! Run: `cargo run --release -p casyn-bench --bin sweep_scaling`

use casyn_exec::Pool;
use casyn_flow::{
    k_sweep_prepared, k_sweep_prepared_pool, prepare, FlowOptions, KSweepEntry, PAPER_K_VALUES,
};
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_obs::json::JsonValue;
use std::time::Instant;

fn rows_identical(a: &[KSweepEntry], b: &[KSweepEntry]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.k == y.k
                && x.result.cell_area == y.result.cell_area
                && x.result.num_cells == y.result.num_cells
                && x.result.route.violations == y.result.route.violations
                && x.result.route.total_wirelength == y.result.route.total_wirelength
        })
}

fn main() {
    let network = random_pla(&PlaGenConfig {
        inputs: 14,
        outputs: 10,
        terms: 90,
        min_literals: 3,
        max_literals: 7,
        mean_outputs_per_term: 1.6,
        seed: 42,
    })
    .to_network();
    let opts = FlowOptions::default();
    let prep = prepare(&network, &opts).expect("bench: prepare failed");
    println!(
        "sweep_scaling: {} base gates, {} K points, host parallelism {}",
        prep.base_gates,
        PAPER_K_VALUES.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // warm-up (page in the library, fault the allocator) — not timed
    let _ = k_sweep_prepared(&prep, &PAPER_K_VALUES[..2], &opts);

    let t0 = Instant::now();
    let reference = k_sweep_prepared(&prep, &PAPER_K_VALUES, &opts).expect("bench: sweep failed");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {:<12} {serial_ms:>8.1} ms", "serial");

    let mut configs = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = Pool::new(workers);
        let t0 = Instant::now();
        let rows = k_sweep_prepared_pool(&prep, &PAPER_K_VALUES, &opts, &pool)
            .expect("bench: pool sweep failed");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let identical = rows_identical(&reference, &rows);
        println!(
            "  {:<12} {ms:>8.1} ms   speedup {:>5.2}x   rows {}",
            format!("pool({workers})"),
            serial_ms / ms,
            if identical { "identical" } else { "DIVERGED" }
        );
        assert!(identical, "pool({workers}) rows diverged from the serial sweep");
        configs.push(JsonValue::object(vec![
            ("workers".into(), JsonValue::Number(workers as f64)),
            ("wall_ms".into(), JsonValue::Number(ms)),
            ("speedup".into(), JsonValue::Number(serial_ms / ms)),
            ("rows_identical".into(), JsonValue::Bool(identical)),
        ]));
    }

    let doc = JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.bench.sweep.v1".into())),
        ("k_points".into(), JsonValue::Number(PAPER_K_VALUES.len() as f64)),
        ("base_gates".into(), JsonValue::Number(prep.base_gates as f64)),
        (
            "host_parallelism".into(),
            JsonValue::Number(
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64
            ),
        ),
        ("serial_wall_ms".into(), JsonValue::Number(serial_ms)),
        ("pool".into(), JsonValue::Array(configs)),
    ]);
    std::fs::write("BENCH_sweep.json", doc.to_string_pretty()).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}
