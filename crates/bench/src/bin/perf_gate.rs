//! Perf-regression gate: measures the fixed gate design and compares it
//! against a committed `casyn.bench.stages.v1` baseline.
//!
//! ```text
//! perf_gate --out BENCH_baseline.json          record a fresh baseline
//! perf_gate --compare BENCH_baseline.json      fail (exit 1) on regression
//! options:
//!   --iterations <n>   min-over-n measurement (default 3)
//!   --tolerance <f>    relative band, 0.5 = +50% (default 0.5)
//!   --scale <f>        multiply the measurement before writing/comparing
//!                      (self-test hook: a 0.01-scaled baseline must trip)
//! ```
//!
//! Run: `cargo run --release -p casyn-bench --bin perf_gate -- <options>`

use casyn_bench::perf::{compare, measure, PerfBaseline, Tolerance};
use std::process::ExitCode;

struct GateArgs {
    out: Option<String>,
    baseline: Option<String>,
    iterations: usize,
    tolerance: f64,
    scale: f64,
}

fn parse(argv: &[String]) -> Result<GateArgs, String> {
    let mut args =
        GateArgs { out: None, baseline: None, iterations: 3, tolerance: 0.5, scale: 1.0 };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--out" => args.out = Some(next("--out")?),
            "--compare" => args.baseline = Some(next("--compare")?),
            "--iterations" => {
                args.iterations =
                    next("--iterations")?.parse().map_err(|e| format!("--iterations: {e}"))?
            }
            "--tolerance" => {
                args.tolerance =
                    next("--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?
            }
            "--scale" => {
                args.scale = next("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if args.out.is_none() && args.baseline.is_none() {
        return Err("pass --out <path> and/or --compare <baseline>".into());
    }
    Ok(args)
}

fn run(args: &GateArgs) -> Result<(), String> {
    let current = measure(args.iterations).scaled(args.scale);
    println!("perf gate: min over {} iteration(s)", args.iterations);
    println!("{:>12}  {:>10}  {:>12}", "stage", "wall ms", "peak KiB");
    for s in &current.stages {
        println!("{:>12}  {:>10.3}  {:>12.1}", s.stage, s.wall_ms, s.peak_bytes as f64 / 1024.0);
    }
    println!("{:>12}  {:>10.3}", "total", current.total_ms);
    if let Some(path) = &args.out {
        std::fs::write(path, current.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = PerfBaseline::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let tol = Tolerance { ratio: args.tolerance, ..Default::default() };
        let regressions = compare(&current, &baseline, &tol);
        if regressions.is_empty() {
            println!("perf gate: within +{:.0}% of {path}", 100.0 * tol.ratio);
        } else {
            for r in &regressions {
                eprintln!("perf gate REGRESSION: {r}");
            }
            return Err(format!("{} metric(s) regressed against {path}", regressions.len()));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
