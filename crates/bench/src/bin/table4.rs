//! **Table 4** of the paper: PDC congestion minimization vs. place&route
//! results — the K sweep over a fixed die (74 rows, 229786 µm² in the
//! paper; ours is scaled to the synthetic PDC's cell area at the same
//! 55.9% K = 0 utilization).
//!
//! Run: `cargo run --release -p casyn-bench --bin table4`

use casyn_bench::*;
use casyn_flow::{format_k_sweep_table, KSweepEntry};

fn main() {
    let mut exp = pdc_experiment();
    println!(
        "PDC: {} base gates (paper: 23058); die {:.0} um2, {} rows, 3 metal layers",
        exp.prep.base_gates,
        exp.prep.floorplan.die_area(),
        exp.prep.floorplan.num_rows
    );
    let scale = calibrate_scale(&mut exp, 1.0, 2.5, 8.0);
    println!("routing supply calibrated to the edge: capacity scale {scale:.3}\n");
    let rows: Vec<KSweepEntry> = run_k_list(&exp, &TABLE_K_VALUES)
        .into_iter()
        .map(|(k, result)| KSweepEntry { k, result })
        .collect();
    println!(
        "{}",
        format_k_sweep_table("Table 4. PDC congestion minimization vs place&route results", &rows)
    );
}
