//! **Table 2** of the paper: SPLA congestion minimization vs.
//! place&route results — the K sweep over a fixed die.
//!
//! The die is sized so the K = 0 (minimum-area) netlist sits at the
//! paper's 61.1% utilization, and the routing supply is calibrated to the
//! routability edge (the paper's die/metal budget plays the same role).
//!
//! Run: `cargo run --release -p casyn-bench --bin table2`

use casyn_bench::*;
use casyn_flow::{format_k_sweep_table, KSweepEntry};

fn main() {
    let mut exp = spla_experiment();
    println!(
        "SPLA: {} base gates (paper: 22834); die {:.0} um2, {} rows, 3 metal layers",
        exp.prep.base_gates,
        exp.prep.floorplan.die_area(),
        exp.prep.floorplan.num_rows
    );
    let scale = calibrate_scale_unroutable(&mut exp, 2.5, 8.0);
    println!("routing supply calibrated to the edge: capacity scale {scale:.3}\n");
    let rows: Vec<KSweepEntry> = run_k_list(&exp, &TABLE_K_VALUES)
        .into_iter()
        .map(|(k, result)| KSweepEntry { k, result })
        .collect();
    println!(
        "{}",
        format_k_sweep_table("Table 2. SPLA congestion minimization vs place&route results", &rows)
    );
    println!("paper shape: K=0 unroutable -> routability window at moderate K ->");
    println!("cell area / cells / utilization rise monotonically with K.");
}
