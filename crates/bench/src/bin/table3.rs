//! **Table 3** of the paper: SPLA static timing analysis — critical-path
//! arrival of the K = 0 (DAGON), in-window congestion-aware, and SIS
//! netlists, each routed in the smallest floorplan that accepts it.
//!
//! Paper: the congestion-aware netlist routes in fewer rows *and* has the
//! earliest critical path; SIS is worst on both.
//!
//! Run: `cargo run --release -p casyn-bench --bin table3`

use casyn_bench::*;
use casyn_flow::{congestion_flow_prepared, format_sta_table, sis_flow};
use casyn_logic::OptimizeOptions;

fn main() {
    let mut exp = spla_experiment();
    let scale = calibrate_scale_unroutable(&mut exp, 2.5, 8.0);
    println!("SPLA STA at capacity scale {scale:.3}");
    let k0 = congestion_flow_prepared(&exp.prep, 0.0, &exp.opts).expect("flow failed");
    let window = congestion_flow_prepared(&exp.prep, 0.1, &exp.opts).expect("flow failed");
    let deep = congestion_flow_prepared(&exp.prep, 1.0, &exp.opts).expect("flow failed");
    let mut sis_opts = exp.opts.clone();
    sis_opts.optimize = Some(OptimizeOptions {
        max_cube_extractions: 900,
        max_kernel_extractions: 60,
        ..Default::default()
    });
    let sis = sis_flow(&exp.network, &sis_opts).expect("flow failed");
    println!(
        "{}",
        format_sta_table(
            "Table 3. SPLA static timing analysis results",
            &[("0.0", &k0), ("0.1", &window), ("1.0", &deep), ("SIS", &sis)]
        )
    );
    println!(
        "routing violations: K=0 {}, K=0.1 {}, K=1 {}, SIS {}",
        k0.route.violations, window.route.violations, deep.route.violations, sis.route.violations
    );
    // the paper's middle column: arrival on the *same endpoint* as the
    // K = 0 critical path, in every netlist
    let k0_po = k0.netlist.outputs()[k0.sta.critical_po].0.clone();
    println!("\narrival at the K=0 critical endpoint ({k0_po}) in each netlist:");
    for (name, r) in [("K=0", &k0), ("K=0.1", &window), ("K=1", &deep), ("SIS", &sis)] {
        if let Some(at) = r.sta.arrival_of_output(&r.netlist, &k0_po) {
            println!("  {name:<6} {at:.2} ns");
        }
    }
    println!("paper shape: arrival(window K) <= arrival(K=0) < arrival(SIS), and the");
    println!("window netlist is the one that routes within the fixed die.");
}
