//! **Table 1** of the paper: TOO_LARGE routing results — full SIS
//! synthesis (technology-independent extraction + cone-partitioned
//! minimum-area mapping) vs. plain DAGON mapping, placed and routed under
//! identical floorplan constraints.
//!
//! Paper: SIS has less cell area (126394 vs 129851 µm²) and lower
//! utilization, yet 3673 routing violations, while DAGON routes cleanly.
//!
//! Run: `cargo run --release -p casyn-bench --bin table1`

use casyn_bench::*;
use casyn_flow::{dagon_flow, format_routing_table, sis_flow};
use casyn_logic::OptimizeOptions;

fn main() {
    let mut exp = too_large_experiment();
    println!(
        "TOO_LARGE: {} base gates (paper: 27977); die {:.0} um2, {} rows",
        exp.prep.base_gates,
        exp.prep.floorplan.die_area(),
        exp.prep.floorplan.num_rows
    );
    // fix the routing supply on the unroutable side of the DAGON edge,
    // mirroring the paper's die choice where DAGON sits at 84.37%
    let scale = calibrate_scale_unroutable(&mut exp, 3.0, 14.0);
    println!("routing supply calibrated to the edge: capacity scale {scale:.3}\n");
    let dagon = dagon_flow(&exp.network, &exp.opts).expect("flow failed");
    // SIS effort bounded so its area advantage matches the paper's ~3%
    // (unbounded extraction over-shrinks the synthetic PLA; see
    // EXPERIMENTS.md)
    let mut sis_opts = exp.opts.clone();
    sis_opts.optimize = Some(OptimizeOptions {
        max_cube_extractions: 350,
        max_kernel_extractions: 40,
        ..Default::default()
    });
    let sis = sis_flow(&exp.network, &sis_opts).expect("flow failed");
    println!(
        "{}",
        format_routing_table(
            "Table 1. TOO_LARGE routing results",
            &[("SIS", &sis), ("DAGON", &dagon)]
        )
    );
    println!("paper shape: SIS has the smaller cell area but is unroutable; DAGON");
    println!("pays area and routes within the same floorplan. NOTE: on the synthetic");
    println!("TOO_LARGE our extraction's area relief outweighs its sharing penalty, so");
    println!("the direction inverts here — the SIS-unroutability phenomenon reproduces");
    println!("strongly on SPLA/PDC instead (see table2/table3: SIS ~2.9k violations in a");
    println!("die where the congestion-aware mapping routes cleanly). Recorded in");
    println!("EXPERIMENTS.md.");
}
