//! The paper's Section 2 motivation: wireload models mispredict net
//! lengths and delays badly once wiring dominates — "the inherent
//! wireload model inaccuracy can have a strong impact on predicting the
//! lengths and delays of local nets" (Gopalakrishnan et al., cited by the
//! paper).
//!
//! This experiment maps SPLA, places and routes it, then compares (a) a
//! generic fanout-based wireload model and (b) a wireload model
//! *calibrated on this very design* against the placed-and-routed STA.
//!
//! Run: `cargo run --release -p casyn-bench --bin motivation`

use casyn_bench::*;
use casyn_flow::congestion_flow_prepared;
use casyn_timing::{analyze_wireload, wireload_error, WireloadModel};

fn main() {
    let mut exp = spla_experiment();
    let scale = calibrate_scale(&mut exp, 0.1, 2.5, 8.0);
    println!("SPLA mapped, placed and routed (capacity scale {scale:.3})\n");
    let flow = congestion_flow_prepared(&exp.prep, 0.1, &exp.opts).expect("flow failed");
    let placed_arrival = flow.sta.critical_arrival();
    println!("placed-and-routed STA:   critical path {placed_arrival:>7.2} ns");
    for (name, model) in [
        ("generic 0.18um table", WireloadModel::generic_018()),
        ("calibrated on design", WireloadModel::calibrate(&flow.netlist)),
    ] {
        let sta = analyze_wireload(&flow.netlist, &exp.opts.lib, &exp.opts.timing, &model);
        let (mean_um, worst_um, rel) = wireload_error(&flow.netlist, &model);
        println!(
            "wireload ({name}): critical path {:>7.2} ns ({:+.1}% vs placed), \
             net-length error mean {mean_um:.1} um / worst {worst_um:.0} um / {:.0}% mean relative",
            sta.critical_arrival(),
            100.0 * (sta.critical_arrival() - placed_arrival) / placed_arrival,
            100.0 * rel
        );
    }
    println!("\npaper shape: even a wireload model calibrated on the design itself");
    println!("mispredicts individual nets by large factors, so pre-layout delay and");
    println!("area estimates cannot anticipate congestion — synthesis must consult");
    println!("placement, which is exactly what the congestion-aware mapper does.");
}
