//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. partitioning scheme (DAGON / cone / placement-driven) at a fixed
//!    in-window K;
//! 2. seeded legalization vs. from-scratch re-placement of the mapped
//!    netlist;
//! 3. duplication pricing: the congestion-aware cover with and without
//!    the ability to duplicate shared logic (K = 0 forbids it by
//!    definition, so the comparison runs at the window K).
//!
//! Run: `cargo run --release -p casyn-bench --bin ablation`

use casyn_bench::*;
use casyn_core::{map, CostKind, MapOptions, PartitionScheme};
use casyn_flow::congestion_flow_prepared;
use casyn_place::instance::{assign_mapped_ports, from_mapped};
use casyn_place::{legalize_rows, place};
use casyn_route::route_mapped;

fn main() {
    let mut exp = spla_experiment();
    let scale = calibrate_scale(&mut exp, 0.2, 2.5, 8.0);
    println!("SPLA ablations at capacity scale {scale:.3}\n");

    println!("1. partitioning scheme at K = 0.2 (cost fixed to area+K*wire):");
    for (name, scheme) in [
        ("dagon", PartitionScheme::Dagon),
        ("cone", PartitionScheme::Cone),
        ("placement-driven", PartitionScheme::PlacementDriven),
    ] {
        let r = casyn_flow::full_flow(
            &exp.prep,
            &MapOptions { scheme, cost: CostKind::AreaWire { k: 0.2 }, ..Default::default() },
            &exp.opts,
        )
        .expect("flow failed");
        println!(
            "   {name:<18} cells {:>5}  area {:>7.0}  wl {:>8.0}  violations {:>5}",
            r.num_cells, r.cell_area, r.route.total_wirelength, r.route.violations
        );
    }

    println!("\n2. seeded legalization vs from-scratch re-placement (K = 0.2):");
    let seeded = congestion_flow_prepared(&exp.prep, 0.2, &exp.opts).expect("flow failed");
    println!(
        "   seeded (paper-style incremental) wl {:>8.0}  violations {:>5}",
        seeded.route.total_wirelength, seeded.route.violations
    );
    {
        let r = map(
            &exp.prep.graph,
            &exp.prep.positions,
            &exp.opts.lib,
            &MapOptions {
                scheme: PartitionScheme::PlacementDriven,
                cost: CostKind::AreaWire { k: 0.2 },
                ..Default::default()
            },
        );
        let mut nl = r.netlist;
        assign_mapped_ports(&mut nl, &exp.prep.floorplan);
        let inst = from_mapped(&nl);
        let fresh = place(&inst, &exp.prep.floorplan, &exp.opts.placer);
        let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
        let legal = legalize_rows(&fresh, &widths, &exp.prep.floorplan);
        for (c, p) in nl.cells_mut().iter_mut().zip(&legal.pos) {
            c.pos = *p;
        }
        let rr = route_mapped(&nl, &exp.prep.floorplan, &exp.opts.route).expect("route failed");
        println!(
            "   from-scratch re-placement        wl {:>8.0}  violations {:>5}",
            rr.total_wirelength, rr.violations
        );
    }

    println!("\n3. duplication: K = 0 (forbidden) vs window K (priced, allowed):");
    let k0 = congestion_flow_prepared(&exp.prep, 0.0, &exp.opts).expect("flow failed");
    let kw = congestion_flow_prepared(&exp.prep, 0.2, &exp.opts).expect("flow failed");
    println!(
        "   K=0   cells {:>5}  area {:>7.0}  wl {:>8.0}  violations {:>5}",
        k0.num_cells, k0.cell_area, k0.route.total_wirelength, k0.route.violations
    );
    println!(
        "   K=0.2 cells {:>5}  area {:>7.0}  wl {:>8.0}  violations {:>5}",
        kw.num_cells, kw.cell_area, kw.route.total_wirelength, kw.route.violations
    );
    println!(
        "   (the area delta is the price of wire-driven duplication; the wl delta\n    is what it buys)"
    );
}
