//! **Figure 1** of the paper: minimum-area vs. congestion-aware mapping
//! of one small unbound netlist whose fanin gates sit far from their
//! fanout on the layout image.
//!
//! The paper's instance (on ST's CORELIB8DHS) maps to `ND3 + AOI21 + 2×IV
//! = 53.248 µm²` for minimum area and `2×OR2 + 2×ND2 + IV = 65.536 µm²`
//! for the congestion mapping. Our library is a synthetic stand-in, so
//! the minimum-area cover differs in cell mix (it finds an OAI22), but
//! the figure's *message* reproduces exactly: the congestion-aware cover
//! pays cell area — landing on the very `2×OR2 + 2×ND2 + IV = 65.536 µm²`
//! solution of the paper — to keep every fanin next to its fanout,
//! cutting the estimated wirelength.
//!
//! Run: `cargo run --release -p casyn-bench --bin figure1`

use casyn_core::{map, CostKind, MapOptions, PartitionScheme};
use casyn_library::corelib018;
use casyn_netlist::subject::SubjectGraph;
use casyn_netlist::Point;

fn main() {
    // unbound netlist: y = !( (a+b) · (c+d) · e )
    // subject: two OR structures (nand of inverters), an AND join, and a
    // final NAND with e
    let mut g = SubjectGraph::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let d = g.add_input("d");
    let e = g.add_input("e");
    let ia = g.add_inv(a);
    let ib = g.add_inv(b);
    let or_ab = g.add_nand2(ia, ib); // a + b
    let ic = g.add_inv(c);
    let id = g.add_inv(d);
    let or_cd = g.add_nand2(ic, id); // c + d
    let n = g.add_nand2(or_ab, or_cd); // !( (a+b)(c+d) )
    let w = g.add_inv(n); // (a+b)(c+d)
    let y = g.add_nand2(w, e); // !( (a+b)(c+d)e )
    g.add_output("y", y);

    // the figure's geometry: the a/b pair in the lower-left corner, the
    // c/d pair in the upper-right, e in between — so the minimum-area
    // cover's big cell must centre itself far from half its fanins
    let mut pos = vec![Point::default(); g.num_vertices()];
    let place = |pos: &mut Vec<Point>, id: casyn_netlist::subject::GateId, x: f64, y: f64| {
        pos[id.index()] = Point::new(x, y)
    };
    place(&mut pos, a, 0.0, 0.0);
    place(&mut pos, b, 0.0, 12.8);
    place(&mut pos, ia, 6.4, 3.2);
    place(&mut pos, ib, 6.4, 9.6);
    place(&mut pos, or_ab, 12.8, 6.4);
    place(&mut pos, c, 192.0, 115.2);
    place(&mut pos, d, 192.0, 128.0);
    place(&mut pos, ic, 185.6, 118.4);
    place(&mut pos, id, 185.6, 124.8);
    place(&mut pos, or_cd, 179.2, 121.6);
    place(&mut pos, n, 96.0, 64.0);
    place(&mut pos, w, 102.4, 64.0);
    place(&mut pos, e, 96.0, 6.4);
    place(&mut pos, y, 108.8, 57.6);

    let lib = corelib018();
    println!("Figure 1 — minimum area vs. congestion mapping");
    println!("(paper, CORELIB8DHS: 53.248 um^2 min-area vs 65.536 um^2 congestion)\n");
    let report = |tag: &str, r: &casyn_core::MapResult| {
        let mut mix: Vec<(&str, usize)> = r.netlist.cell_histogram().into_iter().collect();
        mix.sort();
        let mix: Vec<String> = mix.iter().map(|(n, c)| format!("{c}x{n}")).collect();
        println!(
            "{tag}: area {:>7.3} um^2, est. wirelength {:>7.1} um, cells: {}",
            r.netlist.cell_area(),
            r.stats.est_wirelength,
            mix.join(" + ")
        );
    };
    let min_area = map(&g, &pos, &lib, &MapOptions::default());
    report("1. minimum area mapping      ", &min_area);
    let congestion = map(
        &g,
        &pos,
        &lib,
        &MapOptions {
            scheme: PartitionScheme::PlacementDriven,
            cost: CostKind::AreaWire { k: 0.5 },
            ..Default::default()
        },
    );
    report("2. congestion minimization   ", &congestion);
    assert!(
        congestion.netlist.cell_area() > min_area.netlist.cell_area(),
        "the congestion mapping must pay area"
    );
    assert!(
        congestion.stats.est_wirelength < min_area.stats.est_wirelength,
        "the congestion mapping must cut wirelength"
    );
    // functional equivalence of both mappings
    for m in 0..32u32 {
        let asg: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
        let want = g.simulate_outputs(&asg);
        assert_eq!(want, min_area.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg));
        assert_eq!(
            want,
            congestion.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg)
        );
    }
    println!("\nequivalence verified; congestion mapping trades area for wirelength,");
    println!("reproducing the Figure 1 trade-off.");
}
