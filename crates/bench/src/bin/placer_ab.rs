//! Placer A/B bench: recursive bisection vs. direct k-way multilevel
//! placement on the example designs (plus one synthetic), at equal seed.
//!
//! For every design x backend the bench reports the total HPWL of the
//! subject-graph placement, the routed result at a fixed K = 0.1
//! (violations and wirelength), and the placement wall clock. It also
//! re-runs the k-way placer on a 4-worker pool and asserts the positions
//! are bit-identical to the serial run — the engine's core guarantee.
//!
//! Emits `BENCH_place.json` (CI uploads it as an artifact).
//!
//! Run: `cargo run --release -p casyn-bench --bin placer_ab`

use casyn_exec::Pool;
use casyn_flow::{congestion_flow_prepared, prepare, prepare_pool, FlowOptions};
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_netlist::network::Network;
use casyn_netlist::{Pla, Point};
use casyn_obs::json::JsonValue;
use casyn_place::instance::from_subject;
use casyn_place::metrics::total_hpwl_of_instance;
use casyn_place::PlacerBackend;
use std::time::Instant;

const FIXED_K: f64 = 0.1;

fn load(path: &str) -> Network {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("bench: cannot read {path}: {e}"));
    let pla: Pla = text.parse().unwrap_or_else(|e| panic!("bench: {path}: {e}"));
    pla.to_network()
}

struct Row {
    backend: PlacerBackend,
    hpwl: f64,
    violations: usize,
    wirelength: f64,
    place_ms: f64,
}

/// Runs one backend on one design and measures placement + routed quality.
fn run_one(network: &Network, backend: PlacerBackend) -> Row {
    let mut opts = FlowOptions::default();
    opts.placer.backend = backend;
    let t0 = Instant::now();
    let prep = prepare(network, &opts).expect("bench: prepare failed");
    let place_ms = t0.elapsed().as_secs_f64() * 1e3;
    // HPWL of the subject placement the mapper will consume
    let si = from_subject(&prep.graph, &prep.floorplan);
    let mut cell_pos = vec![Point::new(0.0, 0.0); si.instance.num_cells()];
    for (v, c) in si.cell_of_vertex.iter().enumerate() {
        if let Some(c) = c {
            cell_pos[*c] = prep.positions[v];
        }
    }
    let hpwl = total_hpwl_of_instance(&si.instance, &cell_pos);
    let r = congestion_flow_prepared(&prep, FIXED_K, &opts).expect("bench: flow failed");
    Row {
        backend,
        hpwl,
        violations: r.route.violations,
        wirelength: r.route.total_wirelength,
        place_ms,
    }
}

fn main() {
    let designs: Vec<(String, Network)> = vec![
        ("ex_a".into(), load("examples/designs/ex_a.pla")),
        ("ex_b".into(), load("examples/designs/ex_b.pla")),
        (
            "rand14".into(),
            random_pla(&PlaGenConfig {
                inputs: 14,
                outputs: 10,
                terms: 90,
                min_literals: 3,
                max_literals: 7,
                mean_outputs_per_term: 1.6,
                seed: 42,
            })
            .to_network(),
        ),
    ];

    println!("placer_ab: {} designs, fixed K = {FIXED_K}", designs.len());
    println!(
        "  {:<8} {:<8} {:>12} {:>8} {:>12} {:>9}",
        "design", "placer", "hpwl um", "viol", "wirelen um", "place ms"
    );

    let mut docs = Vec::new();
    let mut kway_hpwl_wins = 0usize;
    for (name, network) in &designs {
        let rows = [run_one(network, PlacerBackend::Bisect), run_one(network, PlacerBackend::KWay)];
        for r in &rows {
            println!(
                "  {:<8} {:<8} {:>12.0} {:>8} {:>12.0} {:>9.1}",
                name,
                r.backend.name(),
                r.hpwl,
                r.violations,
                r.wirelength,
                r.place_ms
            );
        }
        let [bisect, kway] = &rows;
        if kway.hpwl < bisect.hpwl {
            kway_hpwl_wins += 1;
        }
        // the parallel k-way path must reproduce the serial placement
        let mut opts = FlowOptions::default();
        opts.placer.backend = PlacerBackend::KWay;
        let serial = prepare_pool(network, &opts, &Pool::new(1)).expect("bench: serial prepare");
        let parallel = prepare_pool(network, &opts, &Pool::new(4)).expect("bench: pool prepare");
        assert_eq!(
            serial.positions, parallel.positions,
            "{name}: k-way parallel placement diverged from serial"
        );
        docs.push(JsonValue::object(vec![
            ("design".into(), JsonValue::Str(name.clone())),
            ("k".into(), JsonValue::Number(FIXED_K)),
            (
                "backends".into(),
                JsonValue::Array(
                    rows.iter()
                        .map(|r| {
                            JsonValue::object(vec![
                                ("placer".into(), JsonValue::Str(r.backend.name().into())),
                                ("hpwl_um".into(), JsonValue::Number(r.hpwl)),
                                ("violations".into(), JsonValue::Number(r.violations as f64)),
                                ("wirelength_um".into(), JsonValue::Number(r.wirelength)),
                                ("place_wall_ms".into(), JsonValue::Number(r.place_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("kway_wins_hpwl".into(), JsonValue::Bool(kway.hpwl < bisect.hpwl)),
            ("parallel_identical".into(), JsonValue::Bool(true)),
        ]));
    }

    println!("k-way wins HPWL on {kway_hpwl_wins}/{} designs", designs.len());
    let doc = JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.bench.placer_ab.v1".into())),
        ("fixed_k".into(), JsonValue::Number(FIXED_K)),
        ("designs".into(), JsonValue::Array(docs)),
        ("kway_hpwl_wins".into(), JsonValue::Number(kway_hpwl_wins as f64)),
    ]);
    std::fs::write("BENCH_place.json", doc.to_string_pretty()).expect("write BENCH_place.json");
    println!("wrote BENCH_place.json");
    assert!(
        kway_hpwl_wins >= 2,
        "k-way must beat bisection HPWL on at least 2 of {} designs",
        designs.len()
    );
}
