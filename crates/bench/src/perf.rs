//! Perf-regression gate: measure per-stage wall clock and peak heap of
//! a fixed synthetic flow, persist it as `casyn.bench.stages.v1`, and
//! diff a fresh measurement against a committed baseline.
//!
//! The measurement is the *minimum* over a few serial iterations — the
//! min is the closest thing to the machine's noise floor, so the gate
//! compares capability, not scheduler luck. The comparison allows a
//! relative band plus a small absolute slack per metric: CI runners are
//! shared hardware, and a 0.4 ms stage must not fail the build over
//! 0.2 ms of jitter.

use casyn_flow::{congestion_flow_prepared, prepare, FlowOptions};
use casyn_netlist::bench::{random_pla, PlaGenConfig};
use casyn_obs::json::JsonValue;

/// One stage's measured floor.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSample {
    /// Stage name (`decompose`, `place`, `map`, ...).
    pub stage: String,
    /// Minimum wall clock over the iterations, in milliseconds.
    pub wall_ms: f64,
    /// Minimum live-heap high-water mark over the iterations, in bytes.
    pub peak_bytes: u64,
}

/// A perf baseline: the stage floors of the gate's fixed design.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// Per-stage floors, in execution order.
    pub stages: Vec<StageSample>,
    /// Minimum whole-flow wall clock, in milliseconds.
    pub total_ms: f64,
    /// Iterations the minimum was taken over.
    pub iterations: usize,
}

/// Tolerance band for [`compare`]: `current` regresses a metric when
/// `current > baseline * (1 + ratio) + abs`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative headroom (0.5 = +50%).
    pub ratio: f64,
    /// Absolute wall-clock slack, in milliseconds.
    pub abs_ms: f64,
    /// Absolute heap slack, in bytes.
    pub abs_bytes: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        // sized for shared CI runners: half again over baseline plus a
        // millisecond / megabyte of absolute jitter room
        Tolerance { ratio: 0.5, abs_ms: 1.0, abs_bytes: 1 << 20 }
    }
}

/// One metric that exceeded its band.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Stage name, or `"total"`.
    pub stage: String,
    /// `"wall_ms"` or `"peak_bytes"`.
    pub metric: String,
    /// Fresh measurement.
    pub current: f64,
    /// Committed baseline.
    pub baseline: f64,
    /// Largest value the band would have allowed.
    pub allowed: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}: {:.3} exceeds baseline {:.3} (allowed {:.3})",
            self.stage, self.metric, self.current, self.baseline, self.allowed
        )
    }
}

/// Measures the gate's fixed design: a serial congestion flow at K = 0.5,
/// repeated `iterations` times, keeping each stage's minimum wall clock
/// and peak heap. Metric collection is switched on for the duration so
/// the allocator high-water marks are live.
pub fn measure(iterations: usize) -> PerfBaseline {
    let network = random_pla(&PlaGenConfig {
        inputs: 12,
        outputs: 8,
        terms: 60,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.5,
        seed: 7,
    })
    .to_network();
    let opts = FlowOptions::default();
    let prep = prepare(&network, &opts).expect("perf gate: prepare failed");
    casyn_obs::set_enabled(true);
    // warm-up: page in the library and the allocator, untimed
    let _ = congestion_flow_prepared(&prep, 0.5, &opts);
    let mut best: Option<PerfBaseline> = None;
    for _ in 0..iterations.max(1) {
        let r = congestion_flow_prepared(&prep, 0.5, &opts).expect("perf gate: flow failed");
        let run = PerfBaseline {
            stages: r
                .telemetry
                .stages
                .iter()
                .map(|s| StageSample {
                    stage: s.stage.clone(),
                    wall_ms: s.wall_ms,
                    peak_bytes: s.peak_bytes,
                })
                .collect(),
            total_ms: r.telemetry.total_ms,
            iterations: iterations.max(1),
        };
        best = Some(match best {
            None => run,
            Some(b) => min_merge(b, run),
        });
    }
    best.expect("iterations >= 1")
}

/// Element-wise minimum of two measurements (stages matched by name; a
/// stage missing from either side keeps the one that has it).
fn min_merge(a: PerfBaseline, b: PerfBaseline) -> PerfBaseline {
    let mut stages = a.stages;
    for sb in b.stages {
        match stages.iter_mut().find(|s| s.stage == sb.stage) {
            Some(sa) => {
                sa.wall_ms = sa.wall_ms.min(sb.wall_ms);
                sa.peak_bytes = sa.peak_bytes.min(sb.peak_bytes);
            }
            None => stages.push(sb),
        }
    }
    PerfBaseline { stages, total_ms: a.total_ms.min(b.total_ms), iterations: a.iterations }
}

impl PerfBaseline {
    /// Multiplies every number by `factor` — the self-test uses a scaled
    /// baseline to prove the gate trips.
    pub fn scaled(&self, factor: f64) -> PerfBaseline {
        PerfBaseline {
            stages: self
                .stages
                .iter()
                .map(|s| StageSample {
                    stage: s.stage.clone(),
                    wall_ms: s.wall_ms * factor,
                    peak_bytes: (s.peak_bytes as f64 * factor) as u64,
                })
                .collect(),
            total_ms: self.total_ms * factor,
            iterations: self.iterations,
        }
    }

    /// Serializes as a `casyn.bench.stages.v1` document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.bench.stages.v1".into())),
            ("iterations".into(), JsonValue::Number(self.iterations as f64)),
            ("total_ms".into(), JsonValue::Number(self.total_ms)),
            (
                "stages".into(),
                JsonValue::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("stage".into(), JsonValue::Str(s.stage.clone())),
                                ("wall_ms".into(), JsonValue::Number(s.wall_ms)),
                                ("peak_bytes".into(), JsonValue::Number(s.peak_bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `casyn.bench.stages.v1` document.
    pub fn from_json(text: &str) -> Result<PerfBaseline, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != "casyn.bench.stages.v1" {
            return Err(format!("schema {schema:?} is not casyn.bench.stages.v1"));
        }
        let stages = doc
            .get("stages")
            .and_then(|v| v.as_array())
            .ok_or("missing \"stages\" array")?
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Ok(StageSample {
                    stage: s
                        .get("stage")
                        .and_then(|v| v.as_str())
                        .ok_or(format!("stage {i}: missing name"))?
                        .to_string(),
                    wall_ms: s
                        .get("wall_ms")
                        .and_then(|v| v.as_f64())
                        .ok_or(format!("stage {i}: missing wall_ms"))?,
                    peak_bytes: s
                        .get("peak_bytes")
                        .and_then(|v| v.as_f64())
                        .ok_or(format!("stage {i}: missing peak_bytes"))?
                        as u64,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(PerfBaseline {
            stages,
            total_ms: doc.get("total_ms").and_then(|v| v.as_f64()).ok_or("missing total_ms")?,
            iterations: doc.get("iterations").and_then(|v| v.as_f64()).unwrap_or(1.0) as usize,
        })
    }
}

/// Diffs `current` against `baseline`: every stage metric (and the flow
/// total) whose fresh value exceeds the tolerance band is returned.
/// Stages present on only one side are ignored — renaming a stage should
/// not fail the gate, shifting its cost into a sibling will.
pub fn compare(
    current: &PerfBaseline,
    baseline: &PerfBaseline,
    tol: &Tolerance,
) -> Vec<Regression> {
    let band_ms = |b: f64| b * (1.0 + tol.ratio) + tol.abs_ms;
    let band_bytes = |b: f64| b * (1.0 + tol.ratio) + tol.abs_bytes as f64;
    let mut out = Vec::new();
    for c in &current.stages {
        let Some(b) = baseline.stages.iter().find(|s| s.stage == c.stage) else {
            continue;
        };
        if c.wall_ms > band_ms(b.wall_ms) {
            out.push(Regression {
                stage: c.stage.clone(),
                metric: "wall_ms".into(),
                current: c.wall_ms,
                baseline: b.wall_ms,
                allowed: band_ms(b.wall_ms),
            });
        }
        if (c.peak_bytes as f64) > band_bytes(b.peak_bytes as f64) {
            out.push(Regression {
                stage: c.stage.clone(),
                metric: "peak_bytes".into(),
                current: c.peak_bytes as f64,
                baseline: b.peak_bytes as f64,
                allowed: band_bytes(b.peak_bytes as f64),
            });
        }
    }
    if current.total_ms > band_ms(baseline.total_ms) {
        out.push(Regression {
            stage: "total".into(),
            metric: "wall_ms".into(),
            current: current.total_ms,
            baseline: baseline.total_ms,
            allowed: band_ms(baseline.total_ms),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfBaseline {
        PerfBaseline {
            stages: vec![
                StageSample { stage: "place".into(), wall_ms: 40.0, peak_bytes: 8 << 20 },
                StageSample { stage: "route".into(), wall_ms: 25.0, peak_bytes: 4 << 20 },
            ],
            total_ms: 70.0,
            iterations: 3,
        }
    }

    #[test]
    fn self_comparison_is_clean() {
        let b = sample();
        assert!(compare(&b, &b, &Tolerance::default()).is_empty());
    }

    #[test]
    fn deflated_baseline_trips_the_gate() {
        let b = sample();
        let regressions = compare(&b, &b.scaled(0.01), &Tolerance::default());
        assert!(!regressions.is_empty());
        assert!(regressions.iter().any(|r| r.stage == "place" && r.metric == "wall_ms"));
        assert!(regressions.iter().any(|r| r.metric == "peak_bytes"));
        assert!(regressions.iter().any(|r| r.stage == "total"));
    }

    #[test]
    fn small_jitter_stays_inside_the_band() {
        let b = sample();
        let mut c = b.clone();
        c.stages[0].wall_ms *= 1.3; // +30% < ratio 0.5
        c.total_ms += 0.5; // < abs_ms 1.0
        assert!(compare(&c, &b, &Tolerance::default()).is_empty());
    }

    #[test]
    fn renamed_stages_are_ignored_shifted_cost_is_not() {
        let b = sample();
        let mut c = b.clone();
        c.stages[1].stage = "reroute".into();
        assert!(compare(&c, &b, &Tolerance::default()).is_empty());
        c.stages[0].wall_ms = 100.0;
        assert_eq!(compare(&c, &b, &Tolerance::default()).len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let b = sample();
        let text = b.to_json().to_string_pretty();
        let back = PerfBaseline::from_json(&text).unwrap();
        assert_eq!(b, back);
        assert!(PerfBaseline::from_json("{}").is_err());
        assert!(PerfBaseline::from_json(r#"{"schema": "casyn.batch.v1"}"#).is_err());
    }

    #[test]
    fn measure_records_the_flow_stages() {
        let b = measure(1);
        let names: Vec<&str> = b.stages.iter().map(|s| s.stage.as_str()).collect();
        for stage in ["decompose", "place", "map", "route", "sta"] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        assert!(b.total_ms > 0.0);
        assert!(b.stages.iter().all(|s| s.wall_ms >= 0.0));
    }
}
