//! Experiment harness: shared setup for the binaries that regenerate
//! every table and figure of the paper, plus Criterion benches of the hot
//! kernels.
//!
//! Binaries (run with `cargo run --release -p casyn-bench --bin <name>`):
//!
//! * `figure1` — the worked min-area vs. congestion mapping example.
//! * `table1`  — TOO_LARGE: SIS vs DAGON routability.
//! * `table2`  — SPLA K sweep.
//! * `table3`  — SPLA static timing analysis.
//! * `table4`  — PDC K sweep.
//! * `table5`  — PDC static timing analysis.

use casyn_flow::{FlowOptions, Prepared};
use casyn_netlist::network::Network;
use casyn_place::Floorplan;

pub mod perf;

/// The experiment setup of one paper benchmark: the prepared design and
/// the fixed floorplan every mapping is evaluated against.
pub struct Experiment {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// The two-level / multi-level source network.
    pub network: Network,
    /// Flow options with the fixed floorplan installed.
    pub opts: FlowOptions,
    /// The prepared (decomposed + placed) design.
    pub prep: Prepared,
}

/// Utilization the paper's K = 0 SPLA netlist has in its fixed die
/// (126521 / 207062 = 61.1%).
pub const SPLA_K0_UTILIZATION: f64 = 0.611;

/// Utilization of the paper's K = 0 PDC netlist (128438 / 229786).
pub const PDC_K0_UTILIZATION: f64 = 0.5589;

/// Utilization of the paper's TOO_LARGE DAGON netlist in Table 1
/// (129851 µm² at 84.37% ⇒ die 153915 µm²).
pub const TOO_LARGE_UTILIZATION: f64 = 0.8437;

/// Builds an experiment: derives the die so the K = 0 (min-area) mapping
/// sits at `k0_utilization`, mirroring how the paper fixes die sizes.
pub fn experiment(name: &'static str, network: Network, k0_utilization: f64) -> Experiment {
    let mut opts = FlowOptions { target_utilization: k0_utilization, ..Default::default() };
    // pin-escape blockage calibrated so that cell-density growth at large
    // K measurably erodes routability (see DESIGN.md)
    opts.route.pin_blockage = 0.8;
    let prep = casyn_flow::prepare(&network, &opts).expect("bench: prepare failed");
    opts.floorplan = Some(prep.floorplan);
    Experiment { name, network, opts, prep }
}

/// The SPLA experiment (Tables 2 and 3).
pub fn spla_experiment() -> Experiment {
    experiment("SPLA", casyn_netlist::bench::spla().to_network(), SPLA_K0_UTILIZATION)
}

/// The PDC experiment (Tables 4 and 5).
pub fn pdc_experiment() -> Experiment {
    experiment("PDC", casyn_netlist::bench::pdc().to_network(), PDC_K0_UTILIZATION)
}

/// The TOO_LARGE experiment (Table 1).
pub fn too_large_experiment() -> Experiment {
    experiment("TOO_LARGE", casyn_netlist::bench::too_large(), TOO_LARGE_UTILIZATION)
}

/// A floorplan with the same width and extra rows, for the paper's
/// "increase the rows until SIS routes" comparisons.
pub fn widen(fp: &Floorplan, extra_rows: usize) -> Floorplan {
    fp.with_extra_rows(extra_rows)
}

use casyn_flow::{congestion_flow_prepared, FlowResult};

/// Finds the smallest routing-capacity scale in `[lo, hi]` at which the
/// congestion flow at `k_probe` routes without violations — the analogue
/// of the paper fixing each die so the design sits at the routability
/// edge. Returns the calibrated scale (bisection to ~1% resolution).
pub fn calibrate_scale(exp: &mut Experiment, k_probe: f64, lo: f64, hi: f64) -> f64 {
    let mut lo = lo;
    let mut hi = hi;
    for _ in 0..8 {
        let mid = (lo + hi) / 2.0;
        exp.opts.route.capacity_scale = mid;
        let r = congestion_flow_prepared(&exp.prep, k_probe, &exp.opts)
            .expect("bench: calibration flow failed");
        if r.route.violations == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    exp.opts.route.capacity_scale = hi;
    hi
}

/// Like [`calibrate_scale`] but lands on the *unroutable* side of the
/// K = 0 edge: the largest probed scale at which the minimum-area netlist
/// still violates. This pins the die exactly as the paper does — the
/// minimum-area mapping must NOT route, so the window's few-percent
/// wirelength advantage is what rescues routability.
pub fn calibrate_scale_unroutable(exp: &mut Experiment, lo: f64, hi: f64) -> f64 {
    let mut lo = lo;
    let mut hi = hi;
    for _ in 0..9 {
        let mid = (lo + hi) / 2.0;
        exp.opts.route.capacity_scale = mid;
        let r = congestion_flow_prepared(&exp.prep, 0.0, &exp.opts)
            .expect("bench: calibration flow failed");
        if r.route.violations == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    exp.opts.route.capacity_scale = lo;
    lo
}

/// Runs the congestion flow over a K list at the experiment's current
/// configuration.
pub fn run_k_list(exp: &Experiment, ks: &[f64]) -> Vec<(f64, FlowResult)> {
    ks.iter()
        .map(|&k| {
            let r = congestion_flow_prepared(&exp.prep, k, &exp.opts)
                .expect("bench: table flow failed");
            (k, r)
        })
        .collect()
}

/// The K values our tables sweep. The paper's K spans three regions on
/// its 0.0001–1.0 axis; our wire term is measured in micrometres of a
/// smaller synthetic die against areas in µm², so the same three regions
/// appear on a shifted axis.
pub const TABLE_K_VALUES: [f64; 12] =
    [0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0, 500.0];

/// Finds the smallest number of extra (or fewer) rows at which `flow`
/// routes: returns `(rows, die area)` of the smallest routable floorplan,
/// searching from `base` downwards then upwards (cap ±`span` rows).
pub fn min_routable_rows(exp: &Experiment, k: f64, span: usize) -> Option<(usize, f64)> {
    let base = exp.prep.floorplan;
    let mut best: Option<(usize, f64)> = None;
    for delta in -(span as isize)..=(span as isize) {
        let rows = (base.num_rows as isize + delta).max(1) as usize;
        // keep the same row width; area scales with rows
        let fp = casyn_place::Floorplan {
            die_width: base.die_width,
            die_height: rows as f64 * casyn_place::image::ROW_HEIGHT,
            num_rows: rows,
        };
        let mut opts = exp.opts.clone();
        opts.floorplan = Some(fp);
        // re-prepare placement on the new image? The paper keeps the
        // original tech-independent placement; we re-place to keep the
        // density consistent with the die.
        let prep = casyn_flow::prepare(&exp.network, &opts).expect("bench: prepare failed");
        let r = congestion_flow_prepared(&prep, k, &opts).expect("bench: row-search flow failed");
        if r.route.violations == 0 {
            best = Some((rows, fp.die_area()));
            break;
        }
    }
    best
}
