//! Global routing on a capacitated gcell grid.
//!
//! This crate is the stand-in for the place&route oracle (Silicon
//! Ensemble) the paper uses to decide whether a mapped netlist is
//! *routable* within a fixed die and metal-layer budget. The die is
//! tessellated into gcells; each gcell boundary has a track capacity
//! derived from the wire pitch and the number of metal layers; nets are
//! decomposed into two-pin connections (Prim MST) and routed by an A* maze
//! router under PathFinder-style negotiated congestion (history + present
//! cost). Residual overflow after the final iteration is reported as the
//! *routing violations* count — the standard academic proxy for detailed-
//! routing failures.
//!
//! * [`grid`] — the capacitated routing grid.
//! * [`router`] — MST decomposition, A* search, the negotiation loop.
//! * [`congestion`] — congestion maps and acceptance tests.
//! * [`audit`] — per-boundary overflow attribution by net.

pub mod audit;
pub mod congestion;
pub mod grid;
pub mod router;

pub use audit::{BoundaryAudit, NetOffender, NetShare, OverflowAudit};
pub use congestion::{heatmap_json, CongestionMap, HeatmapError};
pub use grid::{GcellCoord, RouteConfig, RouteGrid};
pub use router::{
    route_mapped, route_pin_sets, RouteConvergence, RouteError, RouteIterStats, RouteResult,
};
