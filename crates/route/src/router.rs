//! Net decomposition, A* maze routing and the PathFinder negotiation loop.

use crate::audit::{build_audit, OverflowAudit};
use crate::congestion::CongestionMap;
use crate::grid::{GcellCoord, RouteConfig, RouteGrid};
use casyn_netlist::mapped::{MappedNetlist, SignalRef};
use casyn_netlist::Point;
use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use casyn_place::Floorplan;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a routing run could not produce a [`RouteResult`]. Routing is the
/// last consumer of every upstream stage's geometry, so these errors are
/// how corrupt placements (NaN positions, out-of-die pins) surface as
/// typed failures instead of silent gcell aliasing or panics.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// A net pin has a non-finite coordinate and cannot be mapped to a
    /// gcell. `pin` indexes the net's pin list (0 = driver for
    /// [`route_mapped`]).
    BadPin {
        /// Net index (the order of [`casyn_netlist::mapped::MappedNetlist::nets`]).
        net: usize,
        /// Pin index within the net.
        pin: usize,
        /// The offending coordinates.
        x: f64,
        y: f64,
    },
    /// A static blockage point has a non-finite coordinate.
    BadBlockage {
        /// Blockage index in the input list.
        index: usize,
        /// The offending coordinates.
        x: f64,
        y: f64,
    },
    /// The net's spanning tree over its gcells could not be completed —
    /// some pins remained unconnected after MST construction.
    TreeIncomplete {
        /// Net index.
        net: usize,
        /// Gcells reached by the tree.
        connected: usize,
        /// Gcells the net spans.
        total: usize,
    },
    /// A two-pin connection found no path between its gcells.
    PathNotFound {
        /// Net index.
        net: usize,
        /// Source gcell `(x, y)`.
        from: (u32, u32),
        /// Target gcell `(x, y)`.
        to: (u32, u32),
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadPin { net, pin, x, y } => {
                write!(f, "net {net} pin {pin} has non-finite position ({x}, {y})")
            }
            RouteError::BadBlockage { index, x, y } => {
                write!(f, "blockage {index} has non-finite position ({x}, {y})")
            }
            RouteError::TreeIncomplete { net, connected, total } => {
                write!(
                    f,
                    "net {net}: spanning tree incomplete ({connected} of {total} gcells connected)"
                )
            }
            RouteError::PathNotFound { net, from, to } => {
                write!(
                    f,
                    "net {net}: no path from gcell ({}, {}) to ({}, {})",
                    from.0, from.1, to.0, to.1
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// One negotiation iteration's summary, recorded as the rip-up-and-
/// reroute loop runs. This is the per-iteration ground truth behind the
/// paper's Fig. 3 decision — whether PathFinder is converging or the
/// design needs a larger K.
#[derive(Debug, Clone)]
pub struct RouteIterStats {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Total overflow in track-segments after this iteration.
    pub overflow: f64,
    /// Number of gcell boundaries over capacity after this iteration.
    pub overflowed_edges: usize,
    /// Two-pin connections ripped up and rerouted this iteration.
    pub rerouted: usize,
    /// Maximum boundary utilization (load / capacity) after this
    /// iteration.
    pub max_util: f64,
    /// Accumulated PathFinder history cost over all edges.
    pub history_cost: f64,
    /// Full congestion snapshot, present on every
    /// [`RouteConfig::snapshot_stride`]-th iteration when the stride is
    /// non-zero.
    pub snapshot: Option<CongestionMap>,
}

/// The per-iteration convergence series of one routing run. Its length
/// always equals [`RouteResult::iterations`]: one entry is recorded at
/// the end of every negotiation iteration, including the final one.
#[derive(Debug, Clone, Default)]
pub struct RouteConvergence {
    /// One record per negotiation iteration, in order.
    pub iters: Vec<RouteIterStats>,
}

impl RouteConvergence {
    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.iters.len()
    }

    /// True when no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.iters.is_empty()
    }

    /// The overflow trajectory, one value per iteration — the series the
    /// sparkline renderer draws.
    pub fn overflow_series(&self) -> Vec<f64> {
        self.iters.iter().map(|s| s.overflow).collect()
    }
}

/// The outcome of global routing.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Total residual overflow, rounded to whole track-segments — the
    /// "number of routing violations" reported in the paper's tables.
    pub violations: usize,
    /// Raw residual overflow (track-segments).
    pub overflow: f64,
    /// Number of gcell boundaries over capacity.
    pub overflowed_edges: usize,
    /// Total routed wirelength in micrometres.
    pub total_wirelength: f64,
    /// Negotiation iterations actually run.
    pub iterations: usize,
    /// Routed wirelength per input net, in micrometres, in the order the
    /// nets were passed (for [`route_mapped`], the order of
    /// [`MappedNetlist::nets`]). Nets entirely within one gcell have
    /// length 0.
    pub net_wirelength: Vec<f64>,
    /// The final congestion map.
    pub congestion: CongestionMap,
    /// Per-iteration convergence series (`convergence.len() ==
    /// iterations`).
    pub convergence: RouteConvergence,
    /// Overflow attribution: which nets drive the demand on each
    /// over-capacity boundary. Empty when the design routed cleanly.
    pub audit: OverflowAudit,
}

impl RouteResult {
    /// True when the design routed without violations.
    pub fn is_routable(&self) -> bool {
        self.violations == 0
    }

    /// Serializes the routing outcome and its convergence series as a
    /// `casyn.route.v1` document:
    ///
    /// ```json
    /// {
    ///   "schema": "casyn.route.v1",
    ///   "iterations": 4, "violations": 0, "overflow": 0,
    ///   "overflowed_edges": 0, "total_wirelength": 123.4,
    ///   "series": [
    ///     {"iter": 0, "overflow": 9.5, "overflowed_edges": 3,
    ///      "rerouted": 40, "max_util": 1.2, "history_cost": 1.9,
    ///      "snapshot": { ...casyn.heatmap.v1... }},
    ///     ...
    ///   ]
    /// }
    /// ```
    ///
    /// `snapshot` entries appear only on iterations selected by
    /// [`RouteConfig::snapshot_stride`].
    pub fn to_json(&self) -> JsonValue {
        let series = self
            .convergence
            .iters
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("iter".into(), JsonValue::Number(s.iter as f64)),
                    ("overflow".into(), JsonValue::Number(s.overflow)),
                    ("overflowed_edges".into(), JsonValue::Number(s.overflowed_edges as f64)),
                    ("rerouted".into(), JsonValue::Number(s.rerouted as f64)),
                    ("max_util".into(), JsonValue::Number(s.max_util)),
                    ("history_cost".into(), JsonValue::Number(s.history_cost)),
                ];
                if let Some(snap) = &s.snapshot {
                    fields.push(("snapshot".into(), snap.to_json()));
                }
                JsonValue::object(fields)
            })
            .collect();
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.route.v1".into())),
            ("iterations".into(), JsonValue::Number(self.iterations as f64)),
            ("violations".into(), JsonValue::Number(self.violations as f64)),
            ("overflow".into(), JsonValue::Number(self.overflow)),
            ("overflowed_edges".into(), JsonValue::Number(self.overflowed_edges as f64)),
            ("total_wirelength".into(), JsonValue::Number(self.total_wirelength)),
            ("series".into(), JsonValue::Array(series)),
        ])
    }
}

/// Routes a mapped netlist whose cells and ports already have positions.
/// Every cell pin consumes `cfg.pin_blockage` tracks of static blockage
/// in its gcell, modelling escape wiring and via congestion.
pub fn route_mapped(
    nl: &MappedNetlist,
    fp: &Floorplan,
    cfg: &RouteConfig,
) -> Result<RouteResult, RouteError> {
    let mut pin_sets: Vec<Vec<Point>> = Vec::new();
    for net in nl.nets() {
        let mut pins = vec![nl.signal_pos(net.driver)];
        for (c, _) in &net.sinks {
            pins.push(nl.cells()[*c as usize].pos);
        }
        for o in &net.po_sinks {
            pins.push(nl.output_pos(*o));
        }
        pin_sets.push(pins);
    }
    let blockages: Vec<(Point, f64)> = nl
        .cells()
        .iter()
        .map(|c| (c.pos, (c.inputs.len() + 1) as f64 * cfg.pin_blockage))
        .collect();
    let mut result = route_pin_sets_with_blockage(&pin_sets, &blockages, fp, cfg)?;
    // attribute offender nets back to their driver and, when the mapper
    // recorded one, the subject-graph tree the driver cell was covered
    // from — the audit's link from a hot boundary to the mapping decision
    // that caused it
    let nets = nl.nets();
    for off in &mut result.audit.offenders {
        match nets[off.net].driver {
            SignalRef::Pi(i) => {
                off.label = format!("pi:{}", nl.input_names()[i as usize]);
            }
            SignalRef::Cell(c) => {
                let cell = &nl.cells()[c as usize];
                off.label = format!("{}#{c}", cell.name);
                off.tree = cell.source_tree;
            }
        }
    }
    Ok(result)
}

/// Routes arbitrary pin sets (one per net) over the floorplan.
///
/// # Example
///
/// ```
/// use casyn_netlist::Point;
/// use casyn_place::Floorplan;
/// use casyn_route::{route_pin_sets, RouteConfig};
///
/// let fp = Floorplan::with_rows_and_area(10, 10.0 * 6.4 * 64.0);
/// let nets = vec![vec![Point::new(3.2, 3.2), Point::new(35.0, 35.0)]];
/// let result = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
/// assert!(result.is_routable());
/// assert!(result.total_wirelength > 0.0);
/// ```
pub fn route_pin_sets(
    nets: &[Vec<Point>],
    fp: &Floorplan,
    cfg: &RouteConfig,
) -> Result<RouteResult, RouteError> {
    route_pin_sets_with_blockage(nets, &[], fp, cfg)
}

/// [`route_pin_sets`] with additional static blockage at the given
/// points (tracks spread over the adjacent gcell boundaries).
pub fn route_pin_sets_with_blockage(
    nets: &[Vec<Point>],
    blockages: &[(Point, f64)],
    fp: &Floorplan,
    cfg: &RouteConfig,
) -> Result<RouteResult, RouteError> {
    let mut grid = RouteGrid::new(fp, cfg);
    for (i, (p, amount)) in blockages.iter().enumerate() {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(RouteError::BadBlockage { index: i, x: p.x, y: p.y });
        }
        grid.add_pin_blockage(fp.clamp(*p), *amount);
    }
    // net -> unique gcells -> MST -> two-pin connections
    let mut connections: Vec<(GcellCoord, GcellCoord)> = Vec::new();
    let mut net_of_connection: Vec<usize> = Vec::new();
    let mut net_bbox: Vec<(u16, u16, u16, u16)> = vec![(0, 0, 0, 0); nets.len()];
    for (ni, pins) in nets.iter().enumerate() {
        for (pi, p) in pins.iter().enumerate() {
            // a non-finite coordinate would alias into an arbitrary gcell
            // after the clamp; fail it as the typed input error it is
            if !p.x.is_finite() || !p.y.is_finite() {
                return Err(RouteError::BadPin { net: ni, pin: pi, x: p.x, y: p.y });
            }
        }
        let mut cells: Vec<GcellCoord> = pins.iter().map(|p| grid.gcell_of(fp.clamp(*p))).collect();
        if let Some(first) = cells.first() {
            let bb = cells.iter().fold((first.x, first.y, first.x, first.y), |bb, c| {
                (bb.0.min(c.x), bb.1.min(c.y), bb.2.max(c.x), bb.3.max(c.y))
            });
            net_bbox[ni] = bb;
        }
        cells.sort();
        cells.dedup();
        if cells.len() < 2 {
            continue;
        }
        let edges = decompose_net(&cells).map_err(|(connected, total)| {
            RouteError::TreeIncomplete { net: ni, connected, total }
        })?;
        net_of_connection.extend(std::iter::repeat_n(ni, edges.len()));
        connections.extend(edges);
    }
    let mut router = Maze::new(grid.nx(), grid.ny());
    let mut paths: Vec<Vec<EdgeRef>> = vec![Vec::new(); connections.len()];
    let mut present_factor = 0.5;
    let mut iterations = 0;
    // batched locally; one registry flush per routing run
    let mut reroutes = 0u64;
    let mut convergence = RouteConvergence::default();
    let telemetry = obs::enabled();
    for iter in 0..cfg.max_iters.max(1) {
        let mut iter_span = obs::trace::span("route.iter");
        iter_span.attr_num("iter", iter as f64);
        iterations = iter + 1;
        let margin = 4 + 4 * iter;
        let mut any = false;
        let mut rerouted_this_iter = 0u64;
        for (ci, (a, b)) in connections.iter().enumerate() {
            let needs = if iter == 0 { true } else { path_overflows(&grid, &paths[ci]) };
            if !needs {
                continue;
            }
            any = true;
            rerouted_this_iter += 1;
            rip_up(&mut grid, &paths[ci]);
            paths[ci] = router.route(&mut grid, *a, *b, present_factor, margin);
            if paths[ci].is_empty() && a != b {
                // the search box always contains a rectilinear path, so an
                // empty result between distinct gcells means the grid
                // itself is inconsistent — surface it, don't under-report
                return Err(RouteError::PathNotFound {
                    net: net_of_connection[ci],
                    from: (a.x as u32, a.y as u32),
                    to: (b.x as u32, b.y as u32),
                });
            }
            commit(&mut grid, &paths[ci]);
        }
        reroutes += rerouted_this_iter;
        let over = grid.update_history(cfg.history_increment);
        let overflow_now = grid.total_overflow();
        let max_util_now = grid.max_utilization();
        let history_now = grid.total_history();
        iter_span.attr_num("rerouted", rerouted_this_iter as f64);
        iter_span.attr_num("overflow", overflow_now);
        iter_span.attr_num("overflowed_edges", over as f64);
        iter_span.attr_num("max_util", max_util_now);
        iter_span.attr_num("history_cost", history_now);
        convergence.iters.push(RouteIterStats {
            iter,
            overflow: overflow_now,
            overflowed_edges: over,
            rerouted: rerouted_this_iter as usize,
            max_util: max_util_now,
            history_cost: history_now,
            snapshot: (cfg.snapshot_stride > 0 && iter % cfg.snapshot_stride == 0)
                .then(|| CongestionMap::from_grid(&grid)),
        });
        if telemetry {
            // per-iteration overflow trajectory and history-cost growth
            obs::hist_record("route.iter_overflow", overflow_now);
            obs::gauge_set("route.history_cost", history_now);
        }
        obs::log::trace(&format!(
            "route: iter {iter}: rerouted {rerouted_this_iter}, overflow {overflow_now:.1}"
        ));
        if over == 0 || !any {
            if over == 0 {
                obs::trace::instant(
                    "route.converged",
                    &[("iter", obs::trace::AttrValue::Num(iter as f64))],
                );
            }
            break;
        }
        // structurally unroutable: overflow is a large fraction of all
        // demand and negotiation cannot converge
        if iter >= 1 {
            let usage: f64 = grid.total_wirelength() / grid.gcell_size();
            if grid.total_overflow() > cfg.give_up_overflow_ratio * usage.max(1.0) {
                obs::log::debug(&format!(
                    "route: giving up at iter {iter}, overflow {:.1}",
                    grid.total_overflow()
                ));
                break;
            }
        }
        present_factor *= cfg.present_growth;
    }
    if telemetry {
        obs::counter_add("route.iterations", iterations as u64);
        obs::counter_add("route.reroutes", reroutes);
        obs::counter_add("route.connections", connections.len() as u64);
        obs::gauge_set("route.overflow", grid.total_overflow());
    }
    let overflow = grid.total_overflow();
    let overflowed_edges = count_overflowed(&grid);
    let mut net_wirelength = vec![0.0f64; nets.len()];
    for (ci, path) in paths.iter().enumerate() {
        net_wirelength[net_of_connection[ci]] += path.len() as f64 * grid.gcell_size();
    }
    let audit = build_audit(&grid, &paths, &net_of_connection, &net_bbox);
    Ok(RouteResult {
        violations: overflow.round() as usize,
        overflow,
        overflowed_edges,
        total_wirelength: grid.total_wirelength(),
        iterations,
        net_wirelength,
        congestion: CongestionMap::from_grid(&grid),
        convergence,
        audit,
    })
}

/// Decomposes a net's gcell set into two-pin connections. Two pins
/// connect directly; three pins route through the rectilinear Steiner
/// (median) point, which is optimal for three terminals; larger nets use
/// a Prim MST. On failure returns the `(connected, total)` gcell counts
/// of the incomplete tree.
fn decompose_net(cells: &[GcellCoord]) -> Result<Vec<(GcellCoord, GcellCoord)>, (usize, usize)> {
    match cells.len() {
        0 | 1 => Ok(Vec::new()),
        2 => Ok(vec![(cells[0], cells[1])]),
        3 => {
            let mut xs = [cells[0].x, cells[1].x, cells[2].x];
            let mut ys = [cells[0].y, cells[1].y, cells[2].y];
            xs.sort_unstable();
            ys.sort_unstable();
            let m = GcellCoord { x: xs[1], y: ys[1] };
            Ok(cells.iter().filter(|c| **c != m).map(|c| (m, *c)).collect())
        }
        _ => mst_edges(cells),
    }
}

/// Prim MST over gcell coordinates with Manhattan edge weights. Returns
/// `(connected, total)` if some vertex could not be attached (the former
/// `expect("tree incomplete")` panic, now a typed condition).
fn mst_edges(cells: &[GcellCoord]) -> Result<Vec<(GcellCoord, GcellCoord)>, (usize, usize)> {
    let n = cells.len();
    let dist = |a: GcellCoord, b: GcellCoord| {
        (a.x as i64 - b.x as i64).abs() + (a.y as i64 - b.y as i64).abs()
    };
    let mut in_tree = vec![false; n];
    let mut best = vec![(i64::MAX, 0usize); n];
    in_tree[0] = true;
    for j in 1..n {
        best[j] = (dist(cells[0], cells[j]), 0);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for step in 1..n {
        let Some((j, _)) = best
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by_key(|(j, (d, _))| (*d, *j))
        else {
            return Err((step, n));
        };
        in_tree[j] = true;
        edges.push((cells[best[j].1], cells[j]));
        for k in 0..n {
            if !in_tree[k] {
                let d = dist(cells[j], cells[k]);
                if d < best[k].0 {
                    best[k] = (d, j);
                }
            }
        }
    }
    Ok(edges)
}

/// A grid edge on a committed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EdgeRef {
    /// Horizontal boundary between gcells `(x, y)` and `(x+1, y)`.
    H {
        /// Left gcell column.
        x: usize,
        /// Row.
        y: usize,
    },
    /// Vertical boundary between gcells `(x, y)` and `(x, y+1)`.
    V {
        /// Column.
        x: usize,
        /// Lower gcell row.
        y: usize,
    },
}

fn rip_up(grid: &mut RouteGrid, path: &[EdgeRef]) {
    for e in path {
        match *e {
            EdgeRef::H { x, y } => grid.add_h(x, y, -1.0),
            EdgeRef::V { x, y } => grid.add_v(x, y, -1.0),
        }
    }
}

fn commit(grid: &mut RouteGrid, path: &[EdgeRef]) {
    for e in path {
        match *e {
            EdgeRef::H { x, y } => grid.add_h(x, y, 1.0),
            EdgeRef::V { x, y } => grid.add_v(x, y, 1.0),
        }
    }
}

fn path_overflows(grid: &RouteGrid, path: &[EdgeRef]) -> bool {
    path.iter().any(|e| match *e {
        EdgeRef::H { x, y } => grid.h_load(x, y) > grid.h_cap(),
        EdgeRef::V { x, y } => grid.v_load(x, y) > grid.v_cap(),
    })
}

fn count_overflowed(grid: &RouteGrid) -> usize {
    let mut n = 0;
    for y in 0..grid.ny() {
        for x in 0..grid.nx().saturating_sub(1) {
            if grid.h_load(x, y) > grid.h_cap() {
                n += 1;
            }
        }
    }
    for y in 0..grid.ny().saturating_sub(1) {
        for x in 0..grid.nx() {
            if grid.v_load(x, y) > grid.v_cap() {
                n += 1;
            }
        }
    }
    n
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by cost, deterministic tie-break on node id
        other.cost.total_cmp(&self.cost).then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable A* state over the grid.
struct Maze {
    nx: usize,
    ny: usize,
    dist: Vec<f64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    cur_stamp: u32,
}

impl Maze {
    fn new(nx: usize, ny: usize) -> Self {
        let n = nx * ny;
        Maze {
            nx,
            ny,
            dist: vec![0.0; n],
            parent: vec![u32::MAX; n],
            stamp: vec![0; n],
            cur_stamp: 0,
        }
    }

    /// A* from `a` to `b`, restricted to the bounding box inflated by
    /// `margin` gcells. Returns the edge list of the found path.
    fn route(
        &mut self,
        grid: &mut RouteGrid,
        a: GcellCoord,
        b: GcellCoord,
        present_factor: f64,
        margin: usize,
    ) -> Vec<EdgeRef> {
        self.cur_stamp += 1;
        let stamp = self.cur_stamp;
        let (nx, ny) = (self.nx, self.ny);
        let x_lo = (a.x.min(b.x) as usize).saturating_sub(margin);
        let x_hi = ((a.x.max(b.x) as usize) + margin).min(nx - 1);
        let y_lo = (a.y.min(b.y) as usize).saturating_sub(margin);
        let y_hi = ((a.y.max(b.y) as usize) + margin).min(ny - 1);
        let id = |x: usize, y: usize| (y * nx + x) as u32;
        let h = |x: usize, y: usize| {
            ((x as i64 - b.x as i64).abs() + (y as i64 - b.y as i64).abs()) as f64
        };
        let start = id(a.x as usize, a.y as usize);
        let goal = id(b.x as usize, b.y as usize);
        self.dist[start as usize] = 0.0;
        self.parent[start as usize] = u32::MAX;
        self.stamp[start as usize] = stamp;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { cost: h(a.x as usize, a.y as usize), node: start });
        while let Some(HeapEntry { cost: _, node }) = heap.pop() {
            if node == goal {
                break;
            }
            let (x, y) = ((node as usize) % nx, (node as usize) / nx);
            let d = self.dist[node as usize];
            // four neighbours with the edge between
            let mut try_step =
                |nxt_x: usize, nxt_y: usize, edge_cost: f64, heap: &mut BinaryHeap<HeapEntry>| {
                    let nid = id(nxt_x, nxt_y);
                    let nd = d + edge_cost;
                    if self.stamp[nid as usize] != stamp || nd < self.dist[nid as usize] {
                        self.stamp[nid as usize] = stamp;
                        self.dist[nid as usize] = nd;
                        self.parent[nid as usize] = node;
                        heap.push(HeapEntry { cost: nd + h(nxt_x, nxt_y), node: nid });
                    }
                };
            if x > x_lo {
                let c = edge_cost(
                    grid.h_load(x - 1, y),
                    grid.h_cap(),
                    grid.h_history(x - 1, y),
                    present_factor,
                );
                try_step(x - 1, y, c, &mut heap);
            }
            if x < x_hi {
                let c = edge_cost(
                    grid.h_load(x, y),
                    grid.h_cap(),
                    grid.h_history(x, y),
                    present_factor,
                );
                try_step(x + 1, y, c, &mut heap);
            }
            if y > y_lo {
                let c = edge_cost(
                    grid.v_load(x, y - 1),
                    grid.v_cap(),
                    grid.v_history(x, y - 1),
                    present_factor,
                );
                try_step(x, y - 1, c, &mut heap);
            }
            if y < y_hi {
                let c = edge_cost(
                    grid.v_load(x, y),
                    grid.v_cap(),
                    grid.v_history(x, y),
                    present_factor,
                );
                try_step(x, y + 1, c, &mut heap);
            }
        }
        // reconstruct
        let mut path = Vec::new();
        if self.stamp[goal as usize] != stamp {
            return path; // unreachable within box; should not happen
        }
        let mut cur = goal;
        while cur != start {
            let p = self.parent[cur as usize];
            let (cx, cy) = ((cur as usize) % nx, (cur as usize) / nx);
            let (px, py) = ((p as usize) % nx, (p as usize) / nx);
            if cy == py {
                path.push(EdgeRef::H { x: cx.min(px), y: cy });
            } else {
                path.push(EdgeRef::V { x: cx, y: cy.min(py) });
            }
            cur = p;
        }
        let _ = ny;
        path
    }
}

/// PathFinder edge cost: `(base + history) × presence`, where presence
/// grows with the would-be overflow of taking this edge.
fn edge_cost(usage: f64, cap: f64, history: f64, present_factor: f64) -> f64 {
    let would = usage + 1.0;
    let present = if would > cap {
        1.0 + (would - cap) * present_factor
    } else {
        // mild bias toward empty edges to spread demand early
        1.0 + 0.1 * (usage / cap)
    };
    (1.0 + history) * present
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(nx: usize, ny: usize) -> Floorplan {
        // ny rows of 6.4, width nx gcells of 6.4
        Floorplan::with_rows_and_area(ny, (ny as f64 * 6.4) * (nx as f64 * 6.4))
    }

    #[test]
    fn two_pin_net_routes_at_manhattan_length() {
        let fp = fp(10, 10);
        let cfg = RouteConfig::default();
        let nets = vec![vec![Point::new(3.2, 3.2), Point::new(3.2 + 6.4 * 4.0, 3.2 + 6.4 * 3.0)]];
        let r = route_pin_sets(&nets, &fp, &cfg).unwrap();
        assert!(r.is_routable());
        assert!((r.total_wirelength - 7.0 * 6.4).abs() < 1e-9, "wl = {}", r.total_wirelength);
    }

    #[test]
    fn same_gcell_net_needs_no_routing() {
        let fp = fp(4, 4);
        let nets = vec![vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert_eq!(r.total_wirelength, 0.0);
        assert!(r.is_routable());
    }

    #[test]
    fn multipin_net_uses_mst_topology() {
        let fp = fp(10, 10);
        // three pins in a row: MST should cost 2 edges not 3
        let y = 3.2;
        let nets =
            vec![vec![Point::new(3.2, y), Point::new(3.2 + 6.4, y), Point::new(3.2 + 12.8, y)]];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert!((r.total_wirelength - 2.0 * 6.4).abs() < 1e-9);
    }

    #[test]
    fn three_pin_steiner_beats_mst() {
        let fp = fp(12, 12);
        // an L of three pins: (0,0), (4,0), (2,5) in gcells.
        // MST: 4 + min(2+5, 2+5)=7 -> 11; Steiner through (2,0): 2+2+5 = 9.
        let g = 6.4;
        let nets = vec![vec![
            Point::new(3.2, 3.2),
            Point::new(3.2 + 4.0 * g, 3.2),
            Point::new(3.2 + 2.0 * g, 3.2 + 5.0 * g),
        ]];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert!(
            (r.total_wirelength - 9.0 * g).abs() < 1e-9,
            "steiner length expected, got {}",
            r.total_wirelength / g
        );
    }

    #[test]
    fn steiner_point_coinciding_with_pin_degenerates() {
        let fp = fp(12, 12);
        // median point equals the middle pin: no zero-length connections
        let g = 6.4;
        let nets = vec![vec![
            Point::new(3.2, 3.2),
            Point::new(3.2 + 2.0 * g, 3.2 + 2.0 * g),
            Point::new(3.2 + 4.0 * g, 3.2 + 4.0 * g),
        ]];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert!((r.total_wirelength - 8.0 * g).abs() < 1e-9);
        assert!(r.is_routable());
    }

    #[test]
    fn congestion_forces_detours_or_violations() {
        // a 3-wide channel with capacity ~12.5 per boundary; push 40
        // parallel nets through one column of boundaries
        let fp = fp(8, 3);
        let cfg = RouteConfig { max_iters: 10, ..Default::default() };
        let mut nets = Vec::new();
        for i in 0..40 {
            let y = 3.2 + 6.4 * ((i % 3) as f64);
            nets.push(vec![Point::new(3.2, y), Point::new(3.2 + 6.4 * 6.0, y)]);
        }
        let r = route_pin_sets(&nets, &fp, &cfg).unwrap();
        // 40 nets × 6 h-edges = 240 track segments over 3 rows of capacity
        // 12.5 — physically impossible: must overflow
        assert!(!r.is_routable());
        assert!(r.violations > 0);
    }

    #[test]
    fn negotiation_resolves_local_hotspots() {
        // two pin pairs forced through one gcell early on; plenty of
        // spare capacity around: after negotiation no overflow remains
        let fp = fp(12, 12);
        let cfg = RouteConfig { max_iters: 8, ..Default::default() };
        let mut nets = Vec::new();
        // 30 nets crossing the same central column but with room to spread
        for i in 0..30 {
            let y = 3.2 + 6.4 * ((i % 12) as f64);
            nets.push(vec![Point::new(3.2, y), Point::new(3.2 + 6.4 * 10.0, y)]);
        }
        let r = route_pin_sets(&nets, &fp, &cfg).unwrap();
        assert!(
            r.is_routable(),
            "30 nets over 12 rows × 12.5 tracks must route; got {} violations",
            r.violations
        );
    }

    #[test]
    fn deterministic_routing() {
        let fp = fp(10, 10);
        let nets: Vec<Vec<Point>> = (0..20)
            .map(|i| {
                vec![
                    Point::new(3.2 + (i as f64 % 5.0) * 6.4, 3.2),
                    Point::new(60.0 - (i as f64 % 7.0) * 6.4, 60.0),
                ]
            })
            .collect();
        let a = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        let b = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.total_wirelength, b.total_wirelength);
    }

    #[test]
    fn per_net_wirelength_is_reported() {
        let fp = fp(10, 10);
        let nets = vec![
            vec![Point::new(3.2, 3.2), Point::new(3.2 + 6.4 * 3.0, 3.2)], // 3 gcells
            vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],             // same gcell
        ];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert_eq!(r.net_wirelength.len(), 2);
        assert!((r.net_wirelength[0] - 3.0 * 6.4).abs() < 1e-9);
        assert_eq!(r.net_wirelength[1], 0.0);
        assert!((r.net_wirelength.iter().sum::<f64>() - r.total_wirelength).abs() < 1e-9);
    }

    #[test]
    fn mst_is_a_spanning_tree() {
        let cells: Vec<GcellCoord> = vec![
            GcellCoord { x: 0, y: 0 },
            GcellCoord { x: 5, y: 0 },
            GcellCoord { x: 0, y: 5 },
            GcellCoord { x: 5, y: 5 },
        ];
        let edges = mst_edges(&cells).unwrap();
        assert_eq!(edges.len(), 3);
        // total MST length for the unit square scaled by 5: 15
        let total: i64 = edges
            .iter()
            .map(|(a, b)| (a.x as i64 - b.x as i64).abs() + (a.y as i64 - b.y as i64).abs())
            .sum();
        assert_eq!(total, 15);
    }
}
