//! Overflow attribution: decomposes the demand on each over-capacity
//! gcell boundary by the nets that cross it, so a congested run answers
//! "which nets did this" instead of only "where". This is the evidence
//! the paper's methodology loop needs before deciding whether to raise K
//! — a hot region caused by a handful of long nets reads very
//! differently from one caused by uniform local demand.
//!
//! Attribution is exact, not heuristic: routed usage on a boundary is
//! the number of committed path edges crossing it, so summing each
//! net's edge count recovers the boundary's usage term, and adding the
//! static pin-escape blockage recovers the full load the capacity check
//! saw. [`build_audit`] asserts nothing but guarantees by construction
//! that for every audited boundary
//! `blockage + Σ nets[i].demand == demand` up to floating-point
//! rounding — the invariant the test suite checks.

use crate::grid::RouteGrid;
use crate::router::EdgeRef;
use casyn_obs::json::JsonValue;

/// One net's contribution to a boundary's demand, in tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct NetShare {
    /// Net index (the caller's net order; for
    /// [`route_mapped`](crate::route_mapped) the order of
    /// [`MappedNetlist::nets`](casyn_netlist::mapped::MappedNetlist::nets)).
    pub net: usize,
    /// Tracks this net occupies on the boundary (one per committed path
    /// edge; a multi-fanout net whose tree crosses the boundary twice
    /// counts twice, matching the router's usage accounting).
    pub demand: f64,
}

/// The demand decomposition of one over-capacity gcell boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryAudit {
    /// True for a horizontal boundary (between `(x, y)` and `(x+1, y)`),
    /// false for a vertical one (between `(x, y)` and `(x, y+1)`).
    pub horizontal: bool,
    /// Gcell column of the boundary's lower-left gcell.
    pub x: usize,
    /// Gcell row of the boundary's lower-left gcell.
    pub y: usize,
    /// Track capacity of the boundary.
    pub capacity: f64,
    /// Total load: routed usage plus static blockage. Exceeds
    /// `capacity` by construction — only overflowed boundaries are
    /// audited.
    pub demand: f64,
    /// Static pin-escape blockage share of the demand.
    pub blockage: f64,
    /// Per-net demand, sorted by demand descending (net index ascending
    /// on ties). Sums to `demand - blockage` within floating-point
    /// rounding.
    pub nets: Vec<NetShare>,
}

impl BoundaryAudit {
    /// Overflow of this boundary in tracks.
    pub fn overflow(&self) -> f64 {
        self.demand - self.capacity
    }
}

/// A net ranked by its total demand on overflowed boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOffender {
    /// Net index.
    pub net: usize,
    /// Human-readable identity. Defaults to `net{N}`;
    /// [`route_mapped`](crate::route_mapped) rewrites it to the driver —
    /// `pi:<name>` for a primary input, `<master>#<cell>` for a cell.
    pub label: String,
    /// Subject-graph tree the driver cell was mapped from, when known
    /// (cells synthesized outside tree covering — buffers, sequential
    /// elements — have none).
    pub tree: Option<u32>,
    /// Tracks this net occupies across all overflowed boundaries.
    pub demand: f64,
    /// `demand` as a fraction of the total load on all overflowed
    /// boundaries (blockage included in the denominator, so net shares
    /// and the blockage share jointly cover 1.0).
    pub share: f64,
    /// Number of distinct overflowed boundaries the net crosses.
    pub boundaries: usize,
    /// Gcell bounding box of the net's pins: `(x_min, y_min, x_max,
    /// y_max)`.
    pub bbox: (u16, u16, u16, u16),
}

/// The overflow-attribution report of one routing run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverflowAudit {
    /// Total residual overflow in track-segments (same figure as
    /// [`RouteResult::overflow`](crate::RouteResult::overflow)).
    pub total_overflow: f64,
    /// Every over-capacity boundary with its demand decomposition,
    /// ordered horizontals-then-verticals, row-major.
    pub boundaries: Vec<BoundaryAudit>,
    /// Nets ranked by their demand on overflowed boundaries
    /// (descending; net index ascending on ties).
    pub offenders: Vec<NetOffender>,
}

impl OverflowAudit {
    /// True when the run had no overflowed boundaries.
    pub fn is_clean(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// Serializes the report as a `casyn.audit.v1` document:
    ///
    /// ```json
    /// {
    ///   "schema": "casyn.audit.v1",
    ///   "total_overflow": 12.5,
    ///   "boundaries": [
    ///     {"dir": "h", "x": 3, "y": 1, "capacity": 12.5,
    ///      "demand": 17.2, "blockage": 1.2,
    ///      "nets": [{"net": 4, "demand": 9}, ...]}
    ///   ],
    ///   "offenders": [
    ///     {"net": 4, "label": "ND2#12", "tree": 3, "demand": 18,
    ///      "share": 0.31, "boundaries": 2, "bbox": [0, 1, 7, 2]}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> JsonValue {
        let boundaries = self
            .boundaries
            .iter()
            .map(|b| {
                JsonValue::object(vec![
                    (
                        "dir".into(),
                        JsonValue::Str(if b.horizontal { "h".into() } else { "v".into() }),
                    ),
                    ("x".into(), JsonValue::Number(b.x as f64)),
                    ("y".into(), JsonValue::Number(b.y as f64)),
                    ("capacity".into(), JsonValue::Number(b.capacity)),
                    ("demand".into(), JsonValue::Number(b.demand)),
                    ("blockage".into(), JsonValue::Number(b.blockage)),
                    (
                        "nets".into(),
                        JsonValue::Array(
                            b.nets
                                .iter()
                                .map(|s| {
                                    JsonValue::object(vec![
                                        ("net".into(), JsonValue::Number(s.net as f64)),
                                        ("demand".into(), JsonValue::Number(s.demand)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let offenders = self
            .offenders
            .iter()
            .map(|o| {
                let mut fields = vec![
                    ("net".into(), JsonValue::Number(o.net as f64)),
                    ("label".into(), JsonValue::Str(o.label.clone())),
                ];
                if let Some(t) = o.tree {
                    fields.push(("tree".into(), JsonValue::Number(t as f64)));
                }
                fields.extend([
                    ("demand".into(), JsonValue::Number(o.demand)),
                    ("share".into(), JsonValue::Number(o.share)),
                    ("boundaries".into(), JsonValue::Number(o.boundaries as f64)),
                    (
                        "bbox".into(),
                        JsonValue::Array(
                            [o.bbox.0, o.bbox.1, o.bbox.2, o.bbox.3]
                                .iter()
                                .map(|&v| JsonValue::Number(v as f64))
                                .collect(),
                        ),
                    ),
                ]);
                JsonValue::object(fields)
            })
            .collect();
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.audit.v1".into())),
            ("total_overflow".into(), JsonValue::Number(self.total_overflow)),
            ("boundaries".into(), JsonValue::Array(boundaries)),
            ("offenders".into(), JsonValue::Array(offenders)),
        ])
    }
}

/// Builds the attribution report from the final grid state and the
/// committed paths. Only over-capacity boundaries are audited, so a
/// clean run costs one pass over the grid and nothing per net.
pub(crate) fn build_audit(
    grid: &RouteGrid,
    paths: &[Vec<EdgeRef>],
    net_of_connection: &[usize],
    net_bbox: &[(u16, u16, u16, u16)],
) -> OverflowAudit {
    let (nx, ny) = (grid.nx(), grid.ny());
    let hw = nx.saturating_sub(1);
    let vh = ny.saturating_sub(1);
    // map each overflowed edge to its boundary-audit slot
    let mut h_slot: Vec<Option<usize>> = vec![None; hw * ny];
    let mut v_slot: Vec<Option<usize>> = vec![None; nx * vh];
    let mut boundaries: Vec<BoundaryAudit> = Vec::new();
    for y in 0..ny {
        for x in 0..hw {
            let load = grid.h_load(x, y);
            if load > grid.h_cap() {
                h_slot[y * hw + x] = Some(boundaries.len());
                boundaries.push(BoundaryAudit {
                    horizontal: true,
                    x,
                    y,
                    capacity: grid.h_cap(),
                    demand: load,
                    blockage: load - grid.h_usage(x, y),
                    nets: Vec::new(),
                });
            }
        }
    }
    for y in 0..vh {
        for x in 0..nx {
            let load = grid.v_load(x, y);
            if load > grid.v_cap() {
                v_slot[y * nx + x] = Some(boundaries.len());
                boundaries.push(BoundaryAudit {
                    horizontal: false,
                    x,
                    y,
                    capacity: grid.v_cap(),
                    demand: load,
                    blockage: load - grid.v_usage(x, y),
                    nets: Vec::new(),
                });
            }
        }
    }
    if boundaries.is_empty() {
        return OverflowAudit::default();
    }
    // one linear walk over every committed edge: tally (boundary, net)
    // occupancy for the overflowed boundaries only
    let mut per_boundary: Vec<std::collections::BTreeMap<usize, f64>> =
        vec![std::collections::BTreeMap::new(); boundaries.len()];
    for (ci, path) in paths.iter().enumerate() {
        let net = net_of_connection[ci];
        for e in path {
            let slot = match *e {
                EdgeRef::H { x, y } => h_slot[y * hw + x],
                EdgeRef::V { x, y } => v_slot[y * nx + x],
            };
            if let Some(b) = slot {
                *per_boundary[b].entry(net).or_insert(0.0) += 1.0;
            }
        }
    }
    let mut offender_demand: std::collections::BTreeMap<usize, (f64, usize)> =
        std::collections::BTreeMap::new();
    let mut total_demand = 0.0;
    for (b, tally) in per_boundary.into_iter().enumerate() {
        total_demand += boundaries[b].demand;
        let mut nets: Vec<NetShare> =
            tally.into_iter().map(|(net, demand)| NetShare { net, demand }).collect();
        for s in &nets {
            let e = offender_demand.entry(s.net).or_insert((0.0, 0));
            e.0 += s.demand;
            e.1 += 1;
        }
        nets.sort_by(|a, b| b.demand.total_cmp(&a.demand).then(a.net.cmp(&b.net)));
        boundaries[b].nets = nets;
    }
    let mut offenders: Vec<NetOffender> = offender_demand
        .into_iter()
        .map(|(net, (demand, crossed))| NetOffender {
            net,
            label: format!("net{net}"),
            tree: None,
            demand,
            share: if total_demand > 0.0 { demand / total_demand } else { 0.0 },
            boundaries: crossed,
            bbox: net_bbox.get(net).copied().unwrap_or((0, 0, 0, 0)),
        })
        .collect();
    offenders.sort_by(|a, b| b.demand.total_cmp(&a.demand).then(a.net.cmp(&b.net)));
    OverflowAudit { total_overflow: grid.total_overflow(), boundaries, offenders }
}

#[cfg(test)]
mod tests {
    use crate::grid::RouteConfig;
    use crate::{route_pin_sets, RouteResult};
    use casyn_netlist::Point;
    use casyn_place::Floorplan;

    fn congested() -> RouteResult {
        // the channel from the router tests: 40 parallel nets through a
        // 3-row channel of capacity 12.5 — guaranteed overflow
        let fp = Floorplan::with_rows_and_area(3, (3.0 * 6.4) * (8.0 * 6.4));
        let cfg = RouteConfig { max_iters: 10, ..Default::default() };
        let mut nets = Vec::new();
        for i in 0..40 {
            let y = 3.2 + 6.4 * ((i % 3) as f64);
            nets.push(vec![Point::new(3.2, y), Point::new(3.2 + 6.4 * 6.0, y)]);
        }
        route_pin_sets(&nets, &fp, &cfg).unwrap()
    }

    #[test]
    fn clean_run_has_empty_audit() {
        let fp = Floorplan::with_rows_and_area(10, (10.0 * 6.4) * (10.0 * 6.4));
        let nets = vec![vec![Point::new(3.2, 3.2), Point::new(35.0, 35.0)]];
        let r = route_pin_sets(&nets, &fp, &RouteConfig::default()).unwrap();
        assert!(r.is_routable());
        assert!(r.audit.is_clean());
        assert_eq!(r.audit.total_overflow, 0.0);
        assert!(r.audit.offenders.is_empty());
    }

    #[test]
    fn audited_boundaries_are_exactly_the_overflowed_ones() {
        let r = congested();
        assert!(!r.is_routable());
        assert_eq!(r.audit.boundaries.len(), r.overflowed_edges);
        assert!((r.audit.total_overflow - r.overflow).abs() < 1e-9);
        for b in &r.audit.boundaries {
            assert!(b.demand > b.capacity, "audited boundary is not overflowed");
            assert!(b.overflow() > 0.0);
        }
    }

    #[test]
    fn per_net_shares_sum_to_boundary_demand() {
        let r = congested();
        assert!(!r.audit.boundaries.is_empty());
        for b in &r.audit.boundaries {
            let nets: f64 = b.nets.iter().map(|s| s.demand).sum();
            assert!(
                (b.blockage + nets - b.demand).abs() < 1e-9,
                "boundary ({}, {}, h={}) demand {} != blockage {} + nets {}",
                b.x,
                b.y,
                b.horizontal,
                b.demand,
                b.blockage,
                nets
            );
        }
    }

    #[test]
    fn offender_shares_and_ranking() {
        let r = congested();
        let offs = &r.audit.offenders;
        assert!(!offs.is_empty());
        // ranked by demand descending
        for w in offs.windows(2) {
            assert!(w[0].demand >= w[1].demand);
        }
        // shares fractional; with blockage zero here they cover 1.0
        let total_share: f64 = offs.iter().map(|o| o.share).sum();
        let blockage: f64 = r.audit.boundaries.iter().map(|b| b.blockage).sum();
        assert_eq!(blockage, 0.0, "route_pin_sets adds no blockage");
        assert!((total_share - 1.0).abs() < 1e-9, "shares sum to {total_share}");
        // default labels; route_mapped overrides them
        assert!(offs.iter().all(|o| o.label == format!("net{}", o.net)));
        // the channel nets run along y, bbox must span the 6 gcells
        let top = &offs[0];
        assert_eq!(top.bbox.2 - top.bbox.0, 6);
    }

    #[test]
    fn audit_json_shape() {
        let r = congested();
        let doc = r.audit.to_json().to_string_pretty();
        assert!(doc.contains("\"schema\": \"casyn.audit.v1\""));
        assert!(doc.contains("\"offenders\""));
        assert!(doc.contains("\"boundaries\""));
        let parsed = casyn_obs::json::JsonValue::parse(&doc).unwrap();
        let offs = parsed.get("offenders").and_then(|v| v.as_array()).unwrap();
        assert_eq!(offs.len(), r.audit.offenders.len());
        let bbox = offs[0].get("bbox").and_then(|v| v.as_array()).unwrap();
        assert_eq!(bbox.len(), 4);
    }
}
