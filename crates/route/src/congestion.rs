//! Congestion maps: the artifact a designer inspects in the paper's
//! Fig. 3 loop before deciding whether to increase K.

use crate::grid::RouteGrid;
use casyn_obs::json::JsonValue;
use std::fmt;

/// Why a heat-map document could not be read back, in the same style as
/// the BLIF/PLA parser errors: syntax failures carry the line/column from
/// the JSON parser, shape failures name the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeatmapError {
    /// The document is not valid JSON.
    Syntax {
        /// 1-based line of the parse failure.
        line: usize,
        /// 1-based column of the parse failure.
        col: usize,
        /// Parser diagnostic.
        reason: String,
    },
    /// The document parsed but a field is missing, has the wrong type or
    /// an out-of-range value.
    Field {
        /// Path of the offending field, e.g. `h_demand[2]`.
        field: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for HeatmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeatmapError::Syntax { line, col, reason } => {
                write!(f, "heatmap: line {line}, col {col}: {reason}")
            }
            HeatmapError::Field { field, reason } => {
                write!(f, "heatmap: field \"{field}\": {reason}")
            }
        }
    }
}

impl std::error::Error for HeatmapError {}

/// A per-gcell congestion summary of a routed design, carrying the raw
/// boundary demand alongside the derived utilization so it can be
/// exported as a machine-readable heat map after the grid is gone.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    nx: usize,
    ny: usize,
    /// Per-gcell utilization: the maximum usage/capacity ratio over the
    /// boundaries adjacent to each gcell. Row-major, `ny × nx`.
    util: Vec<f64>,
    /// Demand on horizontal boundaries: `h_demand[y * (nx-1) + x]` is the
    /// load between gcells `(x, y)` and `(x+1, y)`.
    h_demand: Vec<f64>,
    /// Demand on vertical boundaries: `v_demand[y * nx + x]` is the load
    /// between gcells `(x, y)` and `(x, y+1)`.
    v_demand: Vec<f64>,
    h_cap: f64,
    v_cap: f64,
    gcell_size: f64,
}

impl CongestionMap {
    /// Summarizes a routed grid.
    pub fn from_grid(grid: &RouteGrid) -> Self {
        let (nx, ny) = (grid.nx(), grid.ny());
        let mut util = vec![0.0f64; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let mut u: f64 = 0.0;
                if x > 0 {
                    u = u.max(grid.h_load(x - 1, y) / grid.h_cap());
                }
                if x + 1 < nx {
                    u = u.max(grid.h_load(x, y) / grid.h_cap());
                }
                if y > 0 {
                    u = u.max(grid.v_load(x, y - 1) / grid.v_cap());
                }
                if y + 1 < ny {
                    u = u.max(grid.v_load(x, y) / grid.v_cap());
                }
                util[y * nx + x] = u;
            }
        }
        let hw = nx.saturating_sub(1);
        let vh = ny.saturating_sub(1);
        let mut h_demand = vec![0.0f64; hw * ny];
        let mut v_demand = vec![0.0f64; nx * vh];
        for y in 0..ny {
            for x in 0..hw {
                h_demand[y * hw + x] = grid.h_load(x, y);
            }
        }
        for y in 0..vh {
            for x in 0..nx {
                v_demand[y * nx + x] = grid.v_load(x, y);
            }
        }
        CongestionMap {
            nx,
            ny,
            util,
            h_demand,
            v_demand,
            h_cap: grid.h_cap(),
            v_cap: grid.v_cap(),
            gcell_size: grid.gcell_size(),
        }
    }

    /// Grid width in gcells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in gcells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Utilization of gcell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn util(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.nx && y < self.ny);
        self.util[y * self.nx + x]
    }

    /// The maximum gcell utilization.
    pub fn max_util(&self) -> f64 {
        self.util.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Number of gcells at or above the given utilization.
    pub fn hot_gcells(&self, threshold: f64) -> usize {
        self.util.iter().filter(|&&u| u >= threshold).count()
    }

    /// The designer's acceptance test from the methodology loop: no gcell
    /// above `threshold` utilization (1.0 = full capacity).
    pub fn is_acceptable(&self, threshold: f64) -> bool {
        self.max_util() <= threshold
    }

    /// Average utilization across the map — a uniformity indicator ("when
    /// congestion is uniformly distributed across the chip, final
    /// placement and routing can be executed").
    pub fn mean_util(&self) -> f64 {
        if self.util.is_empty() {
            return 0.0;
        }
        self.util.iter().sum::<f64>() / self.util.len() as f64
    }

    /// Demand on the horizontal boundary between `(x, y)` and `(x+1, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn h_demand(&self, x: usize, y: usize) -> f64 {
        assert!(x + 1 < self.nx && y < self.ny);
        self.h_demand[y * (self.nx - 1) + x]
    }

    /// Demand on the vertical boundary between `(x, y)` and `(x, y+1)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn v_demand(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.nx && y + 1 < self.ny);
        self.v_demand[y * self.nx + x]
    }

    /// Serializes the per-gcell demand/capacity state as JSON — the
    /// machine-readable heat map behind the CLI's `--heatmap` flag:
    ///
    /// ```json
    /// {
    ///   "schema": "casyn.heatmap.v1",
    ///   "nx": 3, "ny": 3, "gcell_size": 6.4,
    ///   "h_capacity": 10, "v_capacity": 10,
    ///   "h_demand": [[...nx-1 per row...], ...ny rows],
    ///   "v_demand": [[...nx per row...], ...ny-1 rows],
    ///   "util": [[...nx per row...], ...ny rows]
    /// }
    /// ```
    pub fn to_json(&self) -> JsonValue {
        let (nx, ny) = (self.nx, self.ny);
        let rows = |w: usize, h: usize, data: &[f64]| {
            JsonValue::Array(
                (0..h)
                    .map(|y| {
                        JsonValue::Array(
                            (0..w).map(|x| JsonValue::Number(data[y * w + x])).collect(),
                        )
                    })
                    .collect(),
            )
        };
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.heatmap.v1".into())),
            ("nx".into(), JsonValue::Number(nx as f64)),
            ("ny".into(), JsonValue::Number(ny as f64)),
            ("gcell_size".into(), JsonValue::Number(self.gcell_size)),
            ("h_capacity".into(), JsonValue::Number(self.h_cap)),
            ("v_capacity".into(), JsonValue::Number(self.v_cap)),
            ("h_demand".into(), rows(nx.saturating_sub(1), ny, &self.h_demand)),
            ("v_demand".into(), rows(nx, ny.saturating_sub(1), &self.v_demand)),
            ("util".into(), rows(nx, ny, &self.util)),
        ])
    }
}

impl CongestionMap {
    /// Reads a `casyn.heatmap.v1` document back into a [`CongestionMap`]
    /// — the inverse of [`CongestionMap::to_json`]. Syntax errors carry
    /// the JSON parser's line/column; shape errors name the field, e.g.
    /// `h_demand[2]` for a malformed third row.
    pub fn from_json(text: &str) -> Result<CongestionMap, HeatmapError> {
        let doc = JsonValue::parse(text).map_err(|e| HeatmapError::Syntax {
            line: e.line,
            col: e.col,
            reason: e.reason,
        })?;
        let field = |name: &str, reason: &str| HeatmapError::Field {
            field: name.to_string(),
            reason: reason.to_string(),
        };
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or_else(|| field("schema", "missing or not a string"))?;
        if schema != "casyn.heatmap.v1" {
            return Err(field(
                "schema",
                &format!("expected \"casyn.heatmap.v1\", got \"{schema}\""),
            ));
        }
        let dim = |name: &str| -> Result<usize, HeatmapError> {
            let v = doc
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| field(name, "missing or not a number"))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64) {
                return Err(field(name, &format!("must be a non-negative integer, got {v}")));
            }
            Ok(v as usize)
        };
        let pos = |name: &str| -> Result<f64, HeatmapError> {
            let v = doc
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| field(name, "missing or not a number"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(field(name, &format!("must be a positive number, got {v}")));
            }
            Ok(v)
        };
        let (nx, ny) = (dim("nx")?, dim("ny")?);
        let gcell_size = pos("gcell_size")?;
        let (h_cap, v_cap) = (pos("h_capacity")?, pos("v_capacity")?);
        // row-major matrices: `h` rows of `w` non-negative numbers each
        let matrix = |name: &str, w: usize, h: usize| -> Result<Vec<f64>, HeatmapError> {
            let rows = doc
                .get(name)
                .and_then(|v| v.as_array())
                .ok_or_else(|| field(name, "missing or not an array"))?;
            if rows.len() != h {
                return Err(field(name, &format!("expected {h} rows, got {}", rows.len())));
            }
            let mut out = Vec::with_capacity(w * h);
            for (y, row) in rows.iter().enumerate() {
                let row_field = format!("{name}[{y}]");
                let cells =
                    row.as_array().ok_or_else(|| field(&row_field, "row is not an array"))?;
                if cells.len() != w {
                    return Err(field(
                        &row_field,
                        &format!("expected {w} columns, got {}", cells.len()),
                    ));
                }
                for (x, cell) in cells.iter().enumerate() {
                    let v = cell.as_f64().ok_or_else(|| {
                        field(&format!("{name}[{y}][{x}]"), "cell is not a number")
                    })?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(field(
                            &format!("{name}[{y}][{x}]"),
                            &format!("must be finite and non-negative, got {v}"),
                        ));
                    }
                    out.push(v);
                }
            }
            Ok(out)
        };
        Ok(CongestionMap {
            h_demand: matrix("h_demand", nx.saturating_sub(1), ny)?,
            v_demand: matrix("v_demand", nx, ny.saturating_sub(1))?,
            util: matrix("util", nx, ny)?,
            nx,
            ny,
            h_cap,
            v_cap,
            gcell_size,
        })
    }

    /// Boundary capacities `(horizontal, vertical)` in tracks.
    pub fn capacities(&self) -> (f64, f64) {
        (self.h_cap, self.v_cap)
    }

    /// Gcell edge length in micrometres.
    pub fn gcell_size(&self) -> f64 {
        self.gcell_size
    }
}

/// [`CongestionMap::to_json`] for a grid you still hold: summarizes and
/// serializes in one step.
pub fn heatmap_json(grid: &RouteGrid) -> JsonValue {
    CongestionMap::from_grid(grid).to_json()
}

impl fmt::Display for CongestionMap {
    /// ASCII heat map: `.` < 50%, `-` < 80%, `+` < 100%, `#` ≥ 100%.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in (0..self.ny).rev() {
            for x in 0..self.nx {
                let u = self.util[y * self.nx + x];
                let ch = if u >= 1.0 {
                    '#'
                } else if u >= 0.8 {
                    '+'
                } else if u >= 0.5 {
                    '-'
                } else {
                    '.'
                };
                write!(f, "{ch}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::RouteConfig;
    use casyn_place::Floorplan;

    fn grid_3x3() -> RouteGrid {
        let fp = Floorplan::with_rows_and_area(3, 3.0 * 6.4 * 19.2);
        RouteGrid::new(&fp, &RouteConfig::default())
    }

    #[test]
    fn map_reflects_edge_usage() {
        let mut g = grid_3x3();
        let cap = g.h_cap();
        g.add_h(0, 1, cap); // edge (0,1)-(1,1) full
        let m = CongestionMap::from_grid(&g);
        assert!((m.util(0, 1) - 1.0).abs() < 1e-9);
        assert!((m.util(1, 1) - 1.0).abs() < 1e-9);
        assert_eq!(m.util(2, 0), 0.0);
        assert!((m.max_util() - 1.0).abs() < 1e-9);
        assert_eq!(m.hot_gcells(1.0), 2);
        assert!(!m.is_acceptable(0.9));
        assert!(m.is_acceptable(1.0));
    }

    #[test]
    fn ascii_render_shape() {
        let g = grid_3x3();
        let m = CongestionMap::from_grid(&g);
        let s = format!("{m}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 3 && l.chars().all(|c| c == '.')));
    }

    #[test]
    fn heatmap_json_shape_and_values() {
        let mut g = grid_3x3();
        g.add_h(0, 1, 3.0);
        let s = heatmap_json(&g).to_string_pretty();
        assert!(s.contains("\"schema\": \"casyn.heatmap.v1\""));
        assert!(s.contains("\"nx\": 3"));
        assert!(s.contains("\"h_demand\""));
        assert!(s.contains("3"));
        // ny rows of h_demand, each nx-1 wide; quick structural check
        let v = heatmap_json(&g);
        if let casyn_obs::json::JsonValue::Object(entries) = v {
            let h = entries.iter().find(|(k, _)| k == "h_demand").unwrap();
            if let casyn_obs::json::JsonValue::Array(rows) = &h.1 {
                assert_eq!(rows.len(), 3);
                for r in rows {
                    if let casyn_obs::json::JsonValue::Array(cells) = r {
                        assert_eq!(cells.len(), 2);
                    } else {
                        panic!("h_demand row is not an array");
                    }
                }
            } else {
                panic!("h_demand is not an array");
            }
        } else {
            panic!("heatmap is not an object");
        }
    }

    #[test]
    fn from_json_round_trips() {
        let mut g = grid_3x3();
        g.add_h(0, 1, 3.0);
        g.add_v(2, 0, 1.5);
        let m = CongestionMap::from_grid(&g);
        let back = CongestionMap::from_json(&m.to_json().to_string_pretty()).unwrap();
        assert_eq!(back.nx(), m.nx());
        assert_eq!(back.ny(), m.ny());
        assert_eq!(back.capacities(), m.capacities());
        assert_eq!(back.gcell_size(), m.gcell_size());
        for y in 0..m.ny() {
            for x in 0..m.nx() {
                assert_eq!(back.util(x, y), m.util(x, y));
            }
        }
        assert_eq!(back.h_demand(0, 1), m.h_demand(0, 1));
        assert_eq!(back.v_demand(2, 0), m.v_demand(2, 0));
    }

    #[test]
    fn from_json_reports_syntax_position() {
        let err = CongestionMap::from_json("{\n  \"schema\": oops\n}").unwrap_err();
        match err {
            HeatmapError::Syntax { line, col, .. } => {
                assert_eq!(line, 2);
                assert!(col > 1);
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn from_json_reports_field_diagnostics() {
        let good = CongestionMap::from_grid(&grid_3x3()).to_json().to_string_pretty();
        // wrong schema
        let e = CongestionMap::from_json(&good.replace("casyn.heatmap.v1", "casyn.heatmap.v9"))
            .unwrap_err();
        assert!(matches!(&e, HeatmapError::Field { field, .. } if field == "schema"), "{e}");
        // a malformed row: the second h_demand row is one column short
        let broken = r#"{
            "schema": "casyn.heatmap.v1",
            "nx": 3, "ny": 3, "gcell_size": 6.4,
            "h_capacity": 10, "v_capacity": 10,
            "h_demand": [[0, 0], [0], [0, 0]],
            "v_demand": [[0, 0, 0], [0, 0, 0]],
            "util": [[0, 0, 0], [0, 0, 0], [0, 0, 0]]
        }"#;
        let e = CongestionMap::from_json(broken).unwrap_err();
        match &e {
            HeatmapError::Field { field, reason } => {
                assert!(field.starts_with("h_demand["), "field = {field}");
                assert!(reason.contains("columns"), "reason = {reason}");
            }
            other => panic!("expected field error, got {other:?}"),
        }
        // missing dimension
        let e = CongestionMap::from_json(&good.replace("\"ny\"", "\"nyy\"")).unwrap_err();
        assert!(matches!(&e, HeatmapError::Field { field, .. } if field == "ny"), "{e}");
        // error text carries the field path for the CLI to print
        assert!(e.to_string().contains("ny"));
    }

    #[test]
    fn mean_util_averages() {
        let mut g = grid_3x3();
        g.add_h(0, 0, g.h_cap());
        let m = CongestionMap::from_grid(&g);
        assert!(m.mean_util() > 0.0 && m.mean_util() < 1.0);
    }
}
