//! Congestion maps: the artifact a designer inspects in the paper's
//! Fig. 3 loop before deciding whether to increase K.

use crate::grid::RouteGrid;
use std::fmt;

/// A per-gcell congestion summary of a routed design.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    nx: usize,
    ny: usize,
    /// Per-gcell utilization: the maximum usage/capacity ratio over the
    /// boundaries adjacent to each gcell. Row-major, `ny × nx`.
    util: Vec<f64>,
}

impl CongestionMap {
    /// Summarizes a routed grid.
    pub fn from_grid(grid: &RouteGrid) -> Self {
        let (nx, ny) = (grid.nx(), grid.ny());
        let mut util = vec![0.0f64; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let mut u: f64 = 0.0;
                if x > 0 {
                    u = u.max(grid.h_load(x - 1, y) / grid.h_cap());
                }
                if x + 1 < nx {
                    u = u.max(grid.h_load(x, y) / grid.h_cap());
                }
                if y > 0 {
                    u = u.max(grid.v_load(x, y - 1) / grid.v_cap());
                }
                if y + 1 < ny {
                    u = u.max(grid.v_load(x, y) / grid.v_cap());
                }
                util[y * nx + x] = u;
            }
        }
        CongestionMap { nx, ny, util }
    }

    /// Grid width in gcells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in gcells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Utilization of gcell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn util(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.nx && y < self.ny);
        self.util[y * self.nx + x]
    }

    /// The maximum gcell utilization.
    pub fn max_util(&self) -> f64 {
        self.util.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Number of gcells at or above the given utilization.
    pub fn hot_gcells(&self, threshold: f64) -> usize {
        self.util.iter().filter(|&&u| u >= threshold).count()
    }

    /// The designer's acceptance test from the methodology loop: no gcell
    /// above `threshold` utilization (1.0 = full capacity).
    pub fn is_acceptable(&self, threshold: f64) -> bool {
        self.max_util() <= threshold
    }

    /// Average utilization across the map — a uniformity indicator ("when
    /// congestion is uniformly distributed across the chip, final
    /// placement and routing can be executed").
    pub fn mean_util(&self) -> f64 {
        if self.util.is_empty() {
            return 0.0;
        }
        self.util.iter().sum::<f64>() / self.util.len() as f64
    }
}

impl fmt::Display for CongestionMap {
    /// ASCII heat map: `.` < 50%, `-` < 80%, `+` < 100%, `#` ≥ 100%.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in (0..self.ny).rev() {
            for x in 0..self.nx {
                let u = self.util[y * self.nx + x];
                let ch = if u >= 1.0 {
                    '#'
                } else if u >= 0.8 {
                    '+'
                } else if u >= 0.5 {
                    '-'
                } else {
                    '.'
                };
                write!(f, "{ch}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::RouteConfig;
    use casyn_place::Floorplan;

    fn grid_3x3() -> RouteGrid {
        let fp = Floorplan::with_rows_and_area(3, 3.0 * 6.4 * 19.2);
        RouteGrid::new(&fp, &RouteConfig::default())
    }

    #[test]
    fn map_reflects_edge_usage() {
        let mut g = grid_3x3();
        let cap = g.h_cap();
        g.add_h(0, 1, cap); // edge (0,1)-(1,1) full
        let m = CongestionMap::from_grid(&g);
        assert!((m.util(0, 1) - 1.0).abs() < 1e-9);
        assert!((m.util(1, 1) - 1.0).abs() < 1e-9);
        assert_eq!(m.util(2, 0), 0.0);
        assert!((m.max_util() - 1.0).abs() < 1e-9);
        assert_eq!(m.hot_gcells(1.0), 2);
        assert!(!m.is_acceptable(0.9));
        assert!(m.is_acceptable(1.0));
    }

    #[test]
    fn ascii_render_shape() {
        let g = grid_3x3();
        let m = CongestionMap::from_grid(&g);
        let s = format!("{m}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 3 && l.chars().all(|c| c == '.')));
    }

    #[test]
    fn mean_util_averages() {
        let mut g = grid_3x3();
        g.add_h(0, 0, g.h_cap());
        let m = CongestionMap::from_grid(&g);
        assert!(m.mean_util() > 0.0 && m.mean_util() < 1.0);
    }
}
