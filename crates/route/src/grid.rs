//! The capacitated routing grid.

use casyn_netlist::Point;
use casyn_place::Floorplan;

/// Integer gcell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GcellCoord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

/// Technology and algorithm parameters for global routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// Gcell edge length in micrometres.
    pub gcell: f64,
    /// Routing track pitch in micrometres.
    pub pitch: f64,
    /// Number of metal layers available for routing. The paper's
    /// experiments fix this to three.
    pub layers: usize,
    /// Fraction of the first metal layer not blocked by cell internals.
    pub m1_availability: f64,
    /// Maximum negotiation (rip-up and reroute) iterations.
    pub max_iters: usize,
    /// History cost increment per overflowed track per iteration.
    pub history_increment: f64,
    /// Present-congestion multiplier growth per iteration.
    pub present_growth: f64,
    /// Abandon negotiation early when, after the second iteration, the
    /// residual overflow exceeds this fraction of total track usage — the
    /// design is structurally unroutable and further rip-up only burns
    /// time (the detailed-router "gives up" verdict).
    pub give_up_overflow_ratio: f64,
    /// Uniform multiplier on both capacities. The paper pins each die so
    /// the minimum-area netlist sits at the routability edge; this knob
    /// expresses the same experimental control for a simulator whose
    /// absolute track supply differs from Silicon Ensemble's.
    pub capacity_scale: f64,
    /// Routing tracks consumed per cell pin in the pin's gcell (escape
    /// wiring and via blockage). This is what makes dense, high-
    /// utilization netlists unroutable even when their global wirelength
    /// is moderate — the failure mode of the paper's large-K mappings.
    pub pin_blockage: f64,
    /// Record a full [`CongestionMap`](crate::CongestionMap) snapshot on
    /// every Nth negotiation iteration in the convergence series
    /// (iterations 0, N, 2N, …). `0` disables snapshots; the scalar
    /// per-iteration statistics are always recorded. Snapshots are
    /// observational only — they never feed back into routing decisions,
    /// so results are bit-identical at any stride.
    pub snapshot_stride: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            gcell: 6.4,
            pitch: 0.64,
            layers: 3,
            m1_availability: 0.25,
            max_iters: 12,
            history_increment: 0.4,
            present_growth: 1.6,
            give_up_overflow_ratio: 0.08,
            capacity_scale: 1.0,
            pin_blockage: 0.35,
            snapshot_stride: 0,
        }
    }
}

impl RouteConfig {
    /// Horizontal track capacity per gcell boundary: one full horizontal
    /// layer (plus the unblocked share of M1) times tracks per gcell.
    /// With three layers the split is M1 (partial) + M2 horizontal + M3
    /// vertical, the classic HVH-less 3LM assignment.
    pub fn h_capacity(&self) -> f64 {
        let tracks = self.gcell / self.pitch;
        let h_layers = match self.layers {
            0 | 1 => self.m1_availability,
            n => (n - 1).div_ceil(2) as f64 + self.m1_availability,
        };
        tracks * h_layers * self.capacity_scale
    }

    /// Vertical track capacity per gcell boundary.
    pub fn v_capacity(&self) -> f64 {
        let tracks = self.gcell / self.pitch;
        let v_layers = match self.layers {
            0 | 1 => 0.0,
            n => ((n - 1) / 2).max(1) as f64,
        };
        tracks * v_layers * self.capacity_scale
    }
}

/// A routing grid over a floorplan, with per-edge usage and PathFinder
/// history.
#[derive(Debug, Clone)]
pub struct RouteGrid {
    nx: usize,
    ny: usize,
    gcell: f64,
    h_cap: f64,
    v_cap: f64,
    /// Usage of horizontal edges ((nx-1) × ny), row-major.
    h_usage: Vec<f64>,
    /// Usage of vertical edges (nx × (ny-1)), row-major.
    v_usage: Vec<f64>,
    /// Static blockage (pin escapes) added to the load but not to the
    /// routed wirelength.
    h_block: Vec<f64>,
    v_block: Vec<f64>,
    h_history: Vec<f64>,
    v_history: Vec<f64>,
}

impl RouteGrid {
    /// Builds the grid covering `fp` with the configured gcell size.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan is smaller than one gcell.
    pub fn new(fp: &Floorplan, cfg: &RouteConfig) -> Self {
        // tolerate floating fuzz: a die of 3.0000000000004 gcells is 3
        let nx = ((fp.die_width / cfg.gcell) - 1e-6).ceil().max(1.0) as usize;
        let ny = ((fp.die_height / cfg.gcell) - 1e-6).ceil().max(1.0) as usize;
        assert!(nx >= 1 && ny >= 1, "die smaller than one gcell");
        RouteGrid {
            nx,
            ny,
            gcell: cfg.gcell,
            h_cap: cfg.h_capacity(),
            v_cap: cfg.v_capacity(),
            h_usage: vec![0.0; (nx.saturating_sub(1)) * ny],
            v_usage: vec![0.0; nx * ny.saturating_sub(1)],
            h_block: vec![0.0; (nx.saturating_sub(1)) * ny],
            v_block: vec![0.0; nx * ny.saturating_sub(1)],
            h_history: vec![0.0; (nx.saturating_sub(1)) * ny],
            v_history: vec![0.0; nx * ny.saturating_sub(1)],
        }
    }

    /// Grid width in gcells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in gcells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Gcell size in micrometres.
    pub fn gcell_size(&self) -> f64 {
        self.gcell
    }

    /// Horizontal capacity per boundary.
    pub fn h_cap(&self) -> f64 {
        self.h_cap
    }

    /// Vertical capacity per boundary.
    pub fn v_cap(&self) -> f64 {
        self.v_cap
    }

    /// The gcell containing a die point.
    pub fn gcell_of(&self, p: Point) -> GcellCoord {
        let x = ((p.x / self.gcell).floor().max(0.0) as usize).min(self.nx - 1);
        let y = ((p.y / self.gcell).floor().max(0.0) as usize).min(self.ny - 1);
        GcellCoord { x: x as u16, y: y as u16 }
    }

    /// Centre of a gcell on the die.
    pub fn center_of(&self, c: GcellCoord) -> Point {
        Point::new((c.x as f64 + 0.5) * self.gcell, (c.y as f64 + 0.5) * self.gcell)
    }

    fn h_index(&self, x: usize, y: usize) -> usize {
        y * (self.nx - 1) + x
    }

    fn v_index(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    /// Usage of the horizontal edge from `(x, y)` to `(x+1, y)`.
    pub fn h_usage(&self, x: usize, y: usize) -> f64 {
        self.h_usage[self.h_index(x, y)]
    }

    /// Usage of the vertical edge from `(x, y)` to `(x, y+1)`.
    pub fn v_usage(&self, x: usize, y: usize) -> f64 {
        self.v_usage[self.v_index(x, y)]
    }

    /// Load (usage + blockage) of a horizontal edge — what capacity
    /// checks compare against.
    pub fn h_load(&self, x: usize, y: usize) -> f64 {
        let i = self.h_index(x, y);
        self.h_usage[i] + self.h_block[i]
    }

    /// Load (usage + blockage) of a vertical edge.
    pub fn v_load(&self, x: usize, y: usize) -> f64 {
        let i = self.v_index(x, y);
        self.v_usage[i] + self.v_block[i]
    }

    /// Spreads `amount` tracks of static blockage over the edges adjacent
    /// to the gcell containing `p` (pin-escape modelling).
    pub fn add_pin_blockage(&mut self, p: Point, amount: f64) {
        let c = self.gcell_of(p);
        let (x, y) = (c.x as usize, c.y as usize);
        let mut edges: Vec<(bool, usize, usize)> = Vec::with_capacity(4);
        if x > 0 {
            edges.push((true, x - 1, y));
        }
        if x + 1 < self.nx {
            edges.push((true, x, y));
        }
        if y > 0 {
            edges.push((false, x, y - 1));
        }
        if y + 1 < self.ny {
            edges.push((false, x, y));
        }
        if edges.is_empty() {
            return;
        }
        let share = amount / edges.len() as f64;
        for (horiz, ex, ey) in edges {
            if horiz {
                let i = self.h_index(ex, ey);
                self.h_block[i] += share;
            } else {
                let i = self.v_index(ex, ey);
                self.v_block[i] += share;
            }
        }
    }

    /// Adds `delta` (may be negative for rip-up) to a horizontal edge.
    pub fn add_h(&mut self, x: usize, y: usize, delta: f64) {
        let i = self.h_index(x, y);
        self.h_usage[i] += delta;
    }

    /// Adds `delta` to a vertical edge.
    pub fn add_v(&mut self, x: usize, y: usize, delta: f64) {
        let i = self.v_index(x, y);
        self.v_usage[i] += delta;
    }

    /// PathFinder history of a horizontal edge.
    pub fn h_history(&self, x: usize, y: usize) -> f64 {
        self.h_history[self.h_index(x, y)]
    }

    /// PathFinder history of a vertical edge.
    pub fn v_history(&self, x: usize, y: usize) -> f64 {
        self.v_history[self.v_index(x, y)]
    }

    /// Bumps history on every currently overflowed edge; returns the
    /// number of overflowed edges.
    pub fn update_history(&mut self, increment: f64) -> usize {
        let mut over = 0;
        for i in 0..self.h_usage.len() {
            let load = self.h_usage[i] + self.h_block[i];
            if load > self.h_cap {
                self.h_history[i] += increment * (load - self.h_cap);
                over += 1;
            }
        }
        for i in 0..self.v_usage.len() {
            let load = self.v_usage[i] + self.v_block[i];
            if load > self.v_cap {
                self.v_history[i] += increment * (load - self.v_cap);
                over += 1;
            }
        }
        over
    }

    /// Total overflow in track-segments: `Σ max(0, usage − capacity)`.
    /// This is the "number of routing violations" figure of the tables.
    pub fn total_overflow(&self) -> f64 {
        let h: f64 = self
            .h_usage
            .iter()
            .zip(&self.h_block)
            .map(|(u, b)| (u + b - self.h_cap).max(0.0))
            .sum();
        let v: f64 = self
            .v_usage
            .iter()
            .zip(&self.v_block)
            .map(|(u, b)| (u + b - self.v_cap).max(0.0))
            .sum();
        h + v
    }

    /// Total accumulated PathFinder history cost over all edges — a
    /// measure of how contested the grid has been across iterations.
    pub fn total_history(&self) -> f64 {
        self.h_history.iter().chain(self.v_history.iter()).sum()
    }

    /// Total used wirelength in micrometres (track segments × gcell size).
    pub fn total_wirelength(&self) -> f64 {
        let segs: f64 = self.h_usage.iter().chain(self.v_usage.iter()).sum();
        segs * self.gcell
    }

    /// Maximum edge utilization (usage / capacity) over the grid.
    pub fn max_utilization(&self) -> f64 {
        let h = self
            .h_usage
            .iter()
            .zip(&self.h_block)
            .map(|(u, b)| (u + b) / self.h_cap)
            .fold(0.0f64, f64::max);
        let v = self
            .v_usage
            .iter()
            .zip(&self.v_block)
            .map(|(u, b)| (u + b) / self.v_cap)
            .fold(0.0f64, f64::max);
        h.max(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_for_three_layers() {
        let cfg = RouteConfig::default();
        // 10 tracks per gcell; H: M2 + 0.25×M1 = 12.5; V: M3 = 10
        assert!((cfg.h_capacity() - 12.5).abs() < 1e-9);
        assert!((cfg.v_capacity() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacities_grow_with_layers() {
        let three = RouteConfig { layers: 3, ..Default::default() };
        let five = RouteConfig { layers: 5, ..Default::default() };
        assert!(five.h_capacity() > three.h_capacity());
        assert!(five.v_capacity() > three.v_capacity());
    }

    #[test]
    fn grid_shape_and_lookup() {
        let fp = Floorplan::with_rows_and_area(10, 64.0 * 640.0); // 640x64
        let grid = RouteGrid::new(&fp, &RouteConfig::default());
        assert_eq!(grid.nx(), 100);
        assert_eq!(grid.ny(), 10);
        let c = grid.gcell_of(Point::new(0.1, 0.1));
        assert_eq!(c, GcellCoord { x: 0, y: 0 });
        let c = grid.gcell_of(Point::new(1e9, 1e9));
        assert_eq!(c, GcellCoord { x: 99, y: 9 });
        let mid = grid.center_of(GcellCoord { x: 0, y: 0 });
        assert!((mid.x - 3.2).abs() < 1e-9 && (mid.y - 3.2).abs() < 1e-9);
    }

    #[test]
    fn usage_and_overflow_accounting() {
        let fp = Floorplan::with_rows_and_area(2, 2.0 * 6.4 * 12.8);
        let cfg = RouteConfig::default();
        let mut grid = RouteGrid::new(&fp, &cfg);
        assert_eq!(grid.total_overflow(), 0.0);
        let cap = grid.h_cap();
        grid.add_h(0, 0, cap + 3.0);
        assert!((grid.total_overflow() - 3.0).abs() < 1e-9);
        assert!((grid.max_utilization() - (cap + 3.0) / cap).abs() < 1e-9);
        let over = grid.update_history(0.5);
        assert_eq!(over, 1);
        assert!((grid.h_history(0, 0) - 1.5).abs() < 1e-9);
        grid.add_h(0, 0, -(cap + 3.0));
        assert_eq!(grid.total_overflow(), 0.0);
    }

    #[test]
    fn pin_blockage_adds_load_not_wirelength() {
        let fp = Floorplan::with_rows_and_area(3, 3.0 * 6.4 * 19.2);
        let mut grid = RouteGrid::new(&fp, &RouteConfig::default());
        grid.add_pin_blockage(Point::new(9.6, 9.6), 2.0); // centre gcell
                                                          // blockage spreads over the 4 adjacent edges
        let total_load: f64 = (0..2)
            .map(|x| grid.h_load(x, 1))
            .chain((0..1).flat_map(|_| vec![grid.v_load(1, 0), grid.v_load(1, 1)]))
            .sum();
        assert!((total_load - 2.0).abs() < 1e-9, "load {total_load}");
        assert_eq!(grid.total_wirelength(), 0.0, "blockage is not wire");
        // overflow counts blockage
        grid.add_pin_blockage(Point::new(9.6, 9.6), 1000.0);
        assert!(grid.total_overflow() > 0.0);
    }

    #[test]
    fn capacity_scale_multiplies() {
        let base = RouteConfig::default();
        let scaled = RouteConfig { capacity_scale: 2.0, ..base };
        assert!((scaled.h_capacity() - 2.0 * base.h_capacity()).abs() < 1e-9);
        assert!((scaled.v_capacity() - 2.0 * base.v_capacity()).abs() < 1e-9);
    }

    #[test]
    fn corner_gcell_blockage_uses_available_edges() {
        let fp = Floorplan::with_rows_and_area(3, 3.0 * 6.4 * 19.2);
        let mut grid = RouteGrid::new(&fp, &RouteConfig::default());
        grid.add_pin_blockage(Point::new(0.1, 0.1), 2.0); // corner: 2 edges
        let total = grid.h_load(0, 0) + grid.v_load(0, 0);
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wirelength_scales_with_gcell() {
        let fp = Floorplan::with_rows_and_area(2, 2.0 * 6.4 * 12.8);
        let mut grid = RouteGrid::new(&fp, &RouteConfig::default());
        grid.add_h(0, 0, 2.0);
        grid.add_v(0, 0, 1.0);
        assert!((grid.total_wirelength() - 3.0 * 6.4).abs() < 1e-9);
    }
}
