//! Seeded synthetic benchmark generators.
//!
//! The paper evaluates on three IWLS93 circuits: **SPLA** (22 834 base
//! gates) and **PDC** (23 058) — both PLA benchmarks — and **TOO_LARGE**
//! (27 977), a multi-level circuit. The IWLS93 suite is not
//! redistributable here, so these generators produce deterministic
//! synthetic circuits with matched structural statistics (inputs, outputs,
//! product-term counts and literal densities taken from the published
//! benchmark descriptions), which decompose to base-gate counts close to
//! the paper's. Real `.pla` files can be substituted through
//! [`crate::pla::Pla`]'s `FromStr` at any time; every downstream pass is
//! agnostic to the source.

use crate::network::Network;
use crate::pla::Pla;
use crate::sop::{Cube, Polarity, Sop};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_pla`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlaGenConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of product terms.
    pub terms: usize,
    /// Minimum literals per product term.
    pub min_literals: usize,
    /// Maximum literals per product term (inclusive).
    pub max_literals: usize,
    /// Expected number of outputs each term feeds (≥ 1; values above 1
    /// create the AND-plane sharing typical of multi-output PLAs).
    pub mean_outputs_per_term: f64,
    /// RNG seed; the same seed always yields the same PLA.
    pub seed: u64,
}

impl Default for PlaGenConfig {
    fn default() -> Self {
        PlaGenConfig {
            inputs: 16,
            outputs: 8,
            terms: 64,
            min_literals: 3,
            max_literals: 8,
            mean_outputs_per_term: 1.5,
            seed: 1,
        }
    }
}

/// Generates a random PLA according to `cfg`. Every output is fed by at
/// least one term and every term feeds at least one output.
///
/// # Panics
///
/// Panics if `cfg.max_literals > cfg.inputs`, if term or output counts are
/// zero, or if `min_literals > max_literals`.
pub fn random_pla(cfg: &PlaGenConfig) -> Pla {
    assert!(cfg.max_literals <= cfg.inputs, "more literals than inputs");
    assert!(cfg.min_literals >= 1 && cfg.min_literals <= cfg.max_literals);
    assert!(cfg.terms > 0 && cfg.outputs > 0 && cfg.inputs > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pla = Pla::new(cfg.inputs, cfg.outputs);
    let extra_p = (cfg.mean_outputs_per_term - 1.0).clamp(0.0, cfg.outputs as f64 - 1.0)
        / (cfg.outputs as f64 - 1.0).max(1.0);
    for t in 0..cfg.terms {
        let nlits = rng.gen_range(cfg.min_literals..=cfg.max_literals);
        let mut vars: Vec<usize> = (0..cfg.inputs).collect();
        // partial Fisher-Yates: pick nlits distinct variables
        for i in 0..nlits {
            let j = rng.gen_range(i..vars.len());
            vars.swap(i, j);
        }
        let mut cube = Cube::one(cfg.inputs);
        for &v in &vars[..nlits] {
            let pol = if rng.gen_bool(0.5) { Polarity::Positive } else { Polarity::Negative };
            cube.set(v, pol);
        }
        let mut outs = vec![false; cfg.outputs];
        // guarantee coverage: term t always feeds output t % outputs
        outs[t % cfg.outputs] = true;
        for (o, out) in outs.iter_mut().enumerate() {
            if o != t % cfg.outputs && rng.gen_bool(extra_p) {
                *out = true;
            }
        }
        pla.add_term(cube, outs);
    }
    pla
}

/// Synthetic stand-in for the IWLS93 **SPLA** benchmark (16 inputs,
/// 46 outputs, 2 307 product terms). The paper reports 22 834 base gates
/// after NAND2/INV decomposition; this configuration is calibrated to land
/// within a few percent of that (see `EXPERIMENTS.md` for the measured
/// value).
pub fn spla() -> Pla {
    random_pla(&PlaGenConfig {
        inputs: 16,
        outputs: 46,
        terms: 2307,
        min_literals: 6,
        max_literals: 13,
        mean_outputs_per_term: 1.35,
        seed: 0x5b1a,
    })
}

/// Synthetic stand-in for the IWLS93 **PDC** benchmark (16 inputs,
/// 40 outputs, 2 810 product terms; paper: 23 058 base gates).
pub fn pdc() -> Pla {
    random_pla(&PlaGenConfig {
        inputs: 16,
        outputs: 40,
        terms: 2810,
        min_literals: 3,
        max_literals: 11,
        mean_outputs_per_term: 1.25,
        seed: 0x9dc,
    })
}

/// Parameters for [`random_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetGenConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of internal logic nodes.
    pub nodes: usize,
    /// Fanins per node are drawn from `2..=max_fanins`.
    pub max_fanins: usize,
    /// Cubes per node SOP are drawn from `1..=max_cubes`.
    pub max_cubes: usize,
    /// Fanins are drawn from the most recent `locality_window` nodes,
    /// giving the generated circuit the spatial locality (low Rent
    /// exponent) of real logic rather than an expander graph.
    pub locality_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetGenConfig {
    fn default() -> Self {
        NetGenConfig {
            inputs: 32,
            outputs: 32,
            nodes: 256,
            max_fanins: 4,
            max_cubes: 3,
            locality_window: 64,
            seed: 1,
        }
    }
}

/// Generates a random multi-level Boolean network. Node fanins are drawn
/// from a sliding window of recently created nodes so the circuit has
/// realistic locality; each node's SOP is a random cover over its fanins.
///
/// # Panics
///
/// Panics if `inputs < 2`, `max_fanins < 2` or any count is zero.
pub fn random_network(cfg: &NetGenConfig) -> Network {
    assert!(cfg.inputs >= 2 && cfg.outputs > 0 && cfg.nodes > 0);
    assert!(cfg.max_fanins >= 2 && cfg.max_cubes >= 1 && cfg.locality_window >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Network::new();
    let mut pool: Vec<crate::network::NodeId> =
        (0..cfg.inputs).map(|k| net.add_input(format!("iJ{k}J"))).collect();
    for _ in 0..cfg.nodes {
        let window = cfg.locality_window.min(pool.len());
        let start = pool.len() - window;
        let nf = rng.gen_range(2..=cfg.max_fanins.min(window));
        // distinct fanins from the window
        let mut picks: Vec<usize> = Vec::with_capacity(nf);
        while picks.len() < nf {
            let c = rng.gen_range(start..pool.len());
            if !picks.contains(&c) {
                picks.push(c);
            }
        }
        let fanins: Vec<_> = picks.iter().map(|&i| pool[i]).collect();
        let ncubes = rng.gen_range(1..=cfg.max_cubes);
        let mut cubes = Vec::with_capacity(ncubes);
        for _ in 0..ncubes {
            let mut c = Cube::one(nf);
            let mut any = false;
            for v in 0..nf {
                match rng.gen_range(0..3) {
                    0 => {
                        c.set(v, Polarity::Positive);
                        any = true;
                    }
                    1 => {
                        c.set(v, Polarity::Negative);
                        any = true;
                    }
                    _ => {}
                }
            }
            if !any {
                c.set(rng.gen_range(0..nf), Polarity::Positive);
            }
            cubes.push(c);
        }
        let mut sop = Sop::from_cubes(nf, cubes);
        sop.make_irredundant_scc();
        let id = net.add_node(fanins, sop);
        pool.push(id);
    }
    // outputs: prefer late (deep) nodes so the whole cone stays live
    let n = pool.len();
    for k in 0..cfg.outputs {
        let lo = n - (n / 4).max(cfg.outputs).min(n);
        let idx = rng.gen_range(lo..n);
        net.add_output(format!("oJ{k}J"), pool[idx]);
    }
    net
}

/// Synthetic stand-in for the IWLS93 **TOO_LARGE** benchmark. The real
/// `too_large` is an espresso two-level benchmark with 38 inputs and
/// 3 outputs; the paper reports 27 977 base gates after decomposition.
/// Wide product terms make it extraction-rich, which is what lets full
/// SIS synthesis undercut DAGON's cell area in Table 1.
pub fn too_large() -> Network {
    random_pla(&PlaGenConfig {
        inputs: 38,
        outputs: 3,
        terms: 1390,
        min_literals: 10,
        max_literals: 22,
        mean_outputs_per_term: 1.2,
        seed: 0x100_1a57e,
    })
    .to_network()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pla_is_deterministic() {
        let cfg = PlaGenConfig::default();
        let a = random_pla(&cfg);
        let b = random_pla(&cfg);
        assert_eq!(a.to_pla_string(), b.to_pla_string());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_pla(&PlaGenConfig { seed: 1, ..Default::default() });
        let b = random_pla(&PlaGenConfig { seed: 2, ..Default::default() });
        assert_ne!(a.to_pla_string(), b.to_pla_string());
    }

    #[test]
    fn every_output_is_fed_and_every_term_feeds() {
        let pla = random_pla(&PlaGenConfig::default());
        let cfg = PlaGenConfig::default();
        for o in 0..cfg.outputs {
            assert!(pla.terms().iter().any(|t| t.outputs[o]), "output {o} unfed");
        }
        for (i, t) in pla.terms().iter().enumerate() {
            assert!(t.outputs.iter().any(|&b| b), "term {i} feeds nothing");
        }
    }

    #[test]
    fn literal_bounds_respected() {
        let cfg = PlaGenConfig { min_literals: 4, max_literals: 6, ..Default::default() };
        let pla = random_pla(&cfg);
        for t in pla.terms() {
            let n = t.cube.literal_count();
            assert!((4..=6).contains(&n), "term has {n} literals");
        }
    }

    #[test]
    fn random_network_is_deterministic_and_simulates() {
        let cfg = NetGenConfig::default();
        let a = random_network(&cfg);
        let b = random_network(&cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        let pi = vec![true; cfg.inputs];
        assert_eq!(a.simulate_outputs(&pi), b.simulate_outputs(&pi));
        assert_eq!(a.outputs().len(), cfg.outputs);
    }

    #[test]
    fn named_benchmarks_have_documented_shapes() {
        let s = spla();
        assert_eq!(s.num_inputs(), 16);
        assert_eq!(s.num_outputs(), 46);
        assert_eq!(s.terms().len(), 2307);
        let p = pdc();
        assert_eq!(p.num_inputs(), 16);
        assert_eq!(p.num_outputs(), 40);
        assert_eq!(p.terms().len(), 2810);
    }

    #[test]
    fn too_large_builds() {
        let n = too_large();
        assert_eq!(n.inputs().len(), 38);
        assert_eq!(n.outputs().len(), 3);
        assert!(n.num_logic_nodes() > 1000);
    }
}
