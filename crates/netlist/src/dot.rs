//! Graphviz DOT export for visual inspection of subject graphs and
//! mapped netlists.

use crate::mapped::{MappedNetlist, SignalRef};
use crate::subject::{BaseKind, SubjectGraph};
use std::fmt::Write as _;

/// Renders a subject graph as a DOT digraph (inputs as boxes, NANDs as
/// houses, inverters as triangles; primary outputs as double circles).
pub fn subject_to_dot(g: &SubjectGraph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{name}\" {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for id in g.ids() {
        let (shape, label) = match g.kind(id) {
            BaseKind::Input => {
                let pname = g
                    .inputs()
                    .iter()
                    .find(|(_, i)| *i == id)
                    .map(|(n, _)| n.as_str())
                    .unwrap_or("?");
                ("box", pname.to_string())
            }
            BaseKind::Nand2 => ("house", format!("nand {id}")),
            BaseKind::Inv => ("invtriangle", format!("inv {id}")),
        };
        let _ = writeln!(s, "  {} [shape={shape}, label=\"{label}\"];", id.index());
    }
    for id in g.ids() {
        for f in g.fanins(id) {
            let _ = writeln!(s, "  {} -> {};", f.index(), id.index());
        }
    }
    for (name, id) in g.outputs() {
        let _ = writeln!(s, "  \"po_{name}\" [shape=doublecircle, label=\"{name}\"];");
        let _ = writeln!(s, "  {} -> \"po_{name}\";", id.index());
    }
    s.push_str("}\n");
    s
}

/// Renders a mapped netlist as a DOT digraph (cells labelled by master
/// name).
pub fn mapped_to_dot(nl: &MappedNetlist, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{name}\" {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for (i, pin) in nl.input_names().iter().enumerate() {
        let _ = writeln!(s, "  \"pi{i}\" [shape=box, label=\"{pin}\"];");
    }
    for (ci, cell) in nl.cells().iter().enumerate() {
        let _ = writeln!(s, "  \"u{ci}\" [shape=component, label=\"u{ci}\\n{}\"];", cell.name);
    }
    let src_name = |sig: SignalRef| match sig {
        SignalRef::Pi(i) => format!("pi{i}"),
        SignalRef::Cell(c) => format!("u{c}"),
    };
    for (ci, cell) in nl.cells().iter().enumerate() {
        for src in &cell.inputs {
            let _ = writeln!(s, "  \"{}\" -> \"u{ci}\";", src_name(*src));
        }
    }
    for (oi, (oname, src)) in nl.outputs().iter().enumerate() {
        let _ = writeln!(s, "  \"po{oi}\" [shape=doublecircle, label=\"{oname}\"];");
        let _ = writeln!(s, "  \"{}\" -> \"po{oi}\";", src_name(*src));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedCell;
    use crate::Point;

    #[test]
    fn subject_dot_contains_every_vertex_and_edge() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("y", i);
        let dot = subject_to_dot(&g, "t");
        assert!(dot.starts_with("digraph \"t\" {"));
        assert!(dot.contains("shape=box, label=\"a\""));
        assert!(dot.contains("shape=house"));
        assert!(dot.contains("shape=invtriangle"));
        assert!(dot.contains("po_y"));
        // edges: a->n, b->n, n->i, i->po
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn mapped_dot_labels_masters() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let c = nl.add_cell(MappedCell {
            lib_cell: 0,
            name: "IV".into(),
            inputs: vec![a],
            area: 8.192,
            width: 1.28,
            pos: Point::default(),
            source_tree: None,
        });
        nl.add_output("y", c);
        let dot = mapped_to_dot(&nl, "m");
        assert!(dot.contains("u0\\nIV"));
        assert!(dot.contains("\"pi0\" -> \"u0\""));
        assert!(dot.contains("\"u0\" -> \"po0\""));
    }
}
