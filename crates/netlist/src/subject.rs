//! The subject graph: a DAG of base gates (two-input NANDs and inverters)
//! plus primary inputs.
//!
//! Technology mapping consumes this representation: the unbound network is
//! decomposed into NAND2/INV base functions, the subject graph is placed
//! on the layout image, partitioned into trees and covered with library
//! cells. Gates are stored in topological order (fanins always precede
//! fanouts), which every downstream pass relies on.

use std::collections::HashMap;
use std::fmt;

/// Index of a gate (or primary input) inside a [`SubjectGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl GateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The kind of a base gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseKind {
    /// A primary input (no fanins).
    Input,
    /// A two-input NAND.
    Nand2,
    /// An inverter.
    Inv,
}

#[derive(Debug, Clone)]
struct Gate {
    kind: BaseKind,
    fanin: [GateId; 2], // Inv uses fanin[0]; Input uses neither
}

/// A DAG of NAND2/INV base gates.
///
/// # Example
///
/// ```
/// use casyn_netlist::subject::SubjectGraph;
///
/// let mut g = SubjectGraph::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let n = g.add_nand2(a, b);
/// let and = g.add_inv(n);
/// g.add_output("y", and);
/// assert_eq!(g.simulate_outputs(&[true, true]), vec![true]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubjectGraph {
    gates: Vec<Gate>,
    inputs: Vec<(String, GateId)>,
    outputs: Vec<(String, GateId)>,
    /// Structural-hashing table: (kind, fanin0, fanin1) -> gate.
    strash: HashMap<(BaseKind, GateId, GateId), GateId>,
    /// When true, `add_nand2`/`add_inv` reuse structurally identical gates.
    hashing: bool,
}

impl SubjectGraph {
    /// Creates an empty subject graph with structural hashing enabled.
    pub fn new() -> Self {
        SubjectGraph { hashing: true, ..Self::default() }
    }

    /// Creates an empty subject graph without structural hashing: every
    /// `add_*` call creates a fresh gate even if an identical one exists.
    /// Useful for experiments that need explicit logic duplication.
    pub fn without_hashing() -> Self {
        SubjectGraph { hashing: false, ..Self::default() }
    }

    /// Adds a primary input named `name`.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate { kind: BaseKind::Input, fanin: [id, id] });
        self.inputs.push((name.into(), id));
        id
    }

    /// Adds (or reuses, under structural hashing) a two-input NAND.
    ///
    /// # Panics
    ///
    /// Panics if a fanin does not exist yet.
    pub fn add_nand2(&mut self, a: GateId, b: GateId) -> GateId {
        assert!(a.index() < self.gates.len() && b.index() < self.gates.len());
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if self.hashing {
            if let Some(&g) = self.strash.get(&(BaseKind::Nand2, a, b)) {
                return g;
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate { kind: BaseKind::Nand2, fanin: [a, b] });
        if self.hashing {
            self.strash.insert((BaseKind::Nand2, a, b), id);
        }
        id
    }

    /// Adds (or reuses, under structural hashing) an inverter.
    ///
    /// # Panics
    ///
    /// Panics if the fanin does not exist yet.
    pub fn add_inv(&mut self, a: GateId) -> GateId {
        assert!(a.index() < self.gates.len());
        if self.hashing {
            if let Some(&g) = self.strash.get(&(BaseKind::Inv, a, a)) {
                return g;
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate { kind: BaseKind::Inv, fanin: [a, a] });
        if self.hashing {
            self.strash.insert((BaseKind::Inv, a, a), id);
        }
        id
    }

    /// Builds `a AND b` (NAND + INV).
    pub fn add_and2(&mut self, a: GateId, b: GateId) -> GateId {
        let n = self.add_nand2(a, b);
        self.add_inv(n)
    }

    /// Builds `a OR b` (`nand(!a, !b)`).
    pub fn add_or2(&mut self, a: GateId, b: GateId) -> GateId {
        let na = self.add_inv(a);
        let nb = self.add_inv(b);
        self.add_nand2(na, nb)
    }

    /// Declares `gate` as primary output `name`.
    pub fn add_output(&mut self, name: impl Into<String>, gate: GateId) {
        self.outputs.push((name.into(), gate));
    }

    /// The kind of `id`.
    pub fn kind(&self, id: GateId) -> BaseKind {
        self.gates[id.index()].kind
    }

    /// Fanins of `id`: two for NAND2, one for INV, none for inputs.
    pub fn fanins(&self, id: GateId) -> &[GateId] {
        let g = &self.gates[id.index()];
        match g.kind {
            BaseKind::Input => &[],
            BaseKind::Inv => &g.fanin[..1],
            BaseKind::Nand2 => &g.fanin[..2],
        }
    }

    /// Total number of vertices (inputs + gates).
    pub fn num_vertices(&self) -> usize {
        self.gates.len()
    }

    /// Number of base gates (NAND2 + INV), excluding primary inputs. This
    /// is the "base gates" count the paper reports for each benchmark.
    pub fn num_gates(&self) -> usize {
        self.gates.len() - self.inputs.len()
    }

    /// All vertex ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Primary inputs as `(name, gate)` pairs.
    pub fn inputs(&self) -> &[(String, GateId)] {
        &self.inputs
    }

    /// Primary outputs as `(name, gate)` pairs.
    pub fn outputs(&self) -> &[(String, GateId)] {
        &self.outputs
    }

    /// Fanout counts per vertex, counting primary-output references.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gates.len()];
        for g in &self.gates {
            match g.kind {
                BaseKind::Input => {}
                BaseKind::Inv => counts[g.fanin[0].index()] += 1,
                BaseKind::Nand2 => {
                    counts[g.fanin[0].index()] += 1;
                    counts[g.fanin[1].index()] += 1;
                }
            }
        }
        for (_, id) in &self.outputs {
            counts[id.index()] += 1;
        }
        counts
    }

    /// Fanout adjacency: for each vertex, the list of gates that read it.
    /// Primary-output references are not included (see
    /// [`SubjectGraph::outputs`]).
    pub fn fanout_lists(&self) -> Vec<Vec<GateId>> {
        let mut lists = vec![Vec::new(); self.gates.len()];
        for (idx, g) in self.gates.iter().enumerate() {
            let id = GateId(idx as u32);
            for f in match g.kind {
                BaseKind::Input => &[][..],
                BaseKind::Inv => &g.fanin[..1],
                BaseKind::Nand2 => &g.fanin[..2],
            } {
                lists[f.index()].push(id);
            }
        }
        lists
    }

    /// Evaluates all vertices under a primary-input assignment (one value
    /// per input, in declaration order). Returns one value per vertex.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len() != self.inputs().len()`.
    pub fn simulate(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(pi_values.len(), self.inputs.len(), "one value per input required");
        let mut values = vec![false; self.gates.len()];
        for ((_, id), v) in self.inputs.iter().zip(pi_values) {
            values[id.index()] = *v;
        }
        for (idx, g) in self.gates.iter().enumerate() {
            match g.kind {
                BaseKind::Input => {}
                BaseKind::Inv => values[idx] = !values[g.fanin[0].index()],
                BaseKind::Nand2 => {
                    values[idx] = !(values[g.fanin[0].index()] && values[g.fanin[1].index()])
                }
            }
        }
        values
    }

    /// Evaluates only the primary outputs, in declaration order.
    pub fn simulate_outputs(&self, pi_values: &[bool]) -> Vec<bool> {
        let values = self.simulate(pi_values);
        self.outputs.iter().map(|(_, id)| values[id.index()]).collect()
    }

    /// Logic depth (maximum number of gates on any input-to-output path).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        let mut best = 0;
        for (idx, g) in self.gates.iter().enumerate() {
            let d = match g.kind {
                BaseKind::Input => 0,
                BaseKind::Inv => depth[g.fanin[0].index()] + 1,
                BaseKind::Nand2 => depth[g.fanin[0].index()].max(depth[g.fanin[1].index()]) + 1,
            };
            depth[idx] = d;
            best = best.max(d);
        }
        best
    }

    /// Drops gates not reachable from any primary output. Returns the
    /// cleaned graph together with the old-to-new id mapping (unreachable
    /// vertices map to `None`). Primary inputs are always kept.
    pub fn sweep(&self) -> (SubjectGraph, Vec<Option<GateId>>) {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = self.outputs.iter().map(|(_, id)| *id).collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for f in self.fanins(id) {
                stack.push(*f);
            }
        }
        for (_, id) in &self.inputs {
            live[id.index()] = true;
        }
        let mut out =
            if self.hashing { SubjectGraph::new() } else { SubjectGraph::without_hashing() };
        let mut map: Vec<Option<GateId>> = vec![None; self.gates.len()];
        for (idx, g) in self.gates.iter().enumerate() {
            if !live[idx] {
                continue;
            }
            let new = match g.kind {
                BaseKind::Input => {
                    let name =
                        self.inputs.iter().find(|(_, id)| id.index() == idx).expect("input name");
                    out.add_input(name.0.clone())
                }
                BaseKind::Inv => {
                    let f = map[g.fanin[0].index()].expect("fanin live");
                    out.add_inv(f)
                }
                BaseKind::Nand2 => {
                    let a = map[g.fanin[0].index()].expect("fanin live");
                    let b = map[g.fanin[1].index()].expect("fanin live");
                    out.add_nand2(a, b)
                }
            };
            map[idx] = Some(new);
        }
        for (name, id) in &self.outputs {
            out.add_output(name.clone(), map[id.index()].expect("output live"));
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_and_inv_functions() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("nand", n);
        g.add_output("and", i);
        for m in 0..4u32 {
            let av = m & 1 == 1;
            let bv = m & 2 == 2;
            assert_eq!(g.simulate_outputs(&[av, bv]), vec![!(av && bv), av && bv]);
        }
    }

    #[test]
    fn structural_hashing_reuses_gates() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n1 = g.add_nand2(a, b);
        let n2 = g.add_nand2(b, a); // commutative: same gate
        assert_eq!(n1, n2);
        let i1 = g.add_inv(n1);
        let i2 = g.add_inv(n1);
        assert_eq!(i1, i2);
        assert_eq!(g.num_gates(), 2);
    }

    #[test]
    fn without_hashing_duplicates() {
        let mut g = SubjectGraph::without_hashing();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n1 = g.add_nand2(a, b);
        let n2 = g.add_nand2(a, b);
        assert_ne!(n1, n2);
        assert_eq!(g.num_gates(), 2);
    }

    #[test]
    fn or_gate_helper() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let o = g.add_or2(a, b);
        g.add_output("o", o);
        assert_eq!(g.simulate_outputs(&[false, false]), vec![false]);
        assert_eq!(g.simulate_outputs(&[true, false]), vec![true]);
        assert_eq!(g.simulate_outputs(&[false, true]), vec![true]);
        assert_eq!(g.simulate_outputs(&[true, true]), vec![true]);
    }

    #[test]
    fn fanout_counts_count_po_references() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let i = g.add_inv(a);
        g.add_output("o1", i);
        g.add_output("o2", i);
        let counts = g.fanout_counts();
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[i.index()], 2);
    }

    #[test]
    fn depth_of_chain() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let mut cur = a;
        for _ in 0..5 {
            cur = g.add_inv(cur);
        }
        g.add_output("o", cur);
        assert_eq!(g.depth(), 5);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let dead = g.add_nand2(a, b);
        let _deader = g.add_inv(dead);
        let live = g.add_inv(a);
        g.add_output("o", live);
        let (clean, map) = g.sweep();
        assert_eq!(clean.num_gates(), 1);
        assert_eq!(clean.inputs().len(), 2); // inputs kept even if unused
        assert!(map[dead.index()].is_none());
        assert!(map[live.index()].is_some());
        assert_eq!(clean.simulate_outputs(&[true, false]), vec![false]);
    }

    #[test]
    fn fanout_lists_match_counts() {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let i = g.add_inv(n);
        g.add_output("o", i);
        let lists = g.fanout_lists();
        assert_eq!(lists[a.index()], vec![n]);
        assert_eq!(lists[n.index()], vec![i]);
        assert!(lists[i.index()].is_empty());
    }
}
