//! Structural Verilog export of mapped netlists.
//!
//! Emits one gate-level module instantiating the library masters by name
//! (pins `A`, `B`, `C`, `D` in order plus output `Y`), the format a
//! downstream place&route or simulation flow would consume from a 2002-era
//! mapper.

use crate::mapped::{MappedNetlist, SignalRef};

/// Characters Verilog identifiers cannot contain are replaced with `_`.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Writes `nl` as a structural Verilog module named `module_name`.
pub fn to_verilog(nl: &MappedNetlist, module_name: &str) -> String {
    const PIN_NAMES: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let mut s = String::new();
    let inputs: Vec<String> = nl.input_names().iter().map(|n| sanitize(n)).collect();
    let outputs: Vec<String> = nl.outputs().iter().map(|(n, _)| sanitize(n)).collect();
    s.push_str(&format!("module {}(", sanitize(module_name)));
    let ports: Vec<&str> =
        inputs.iter().map(String::as_str).chain(outputs.iter().map(String::as_str)).collect();
    s.push_str(&ports.join(", "));
    s.push_str(");\n");
    for i in &inputs {
        s.push_str(&format!("  input {i};\n"));
    }
    for o in &outputs {
        s.push_str(&format!("  output {o};\n"));
    }
    let wire_of = |sig: SignalRef| -> String {
        match sig {
            SignalRef::Pi(i) => inputs[i as usize].clone(),
            SignalRef::Cell(c) => format!("w{c}"),
        }
    };
    for (ci, _) in nl.cells().iter().enumerate() {
        s.push_str(&format!("  wire w{ci};\n"));
    }
    for (ci, cell) in nl.cells().iter().enumerate() {
        s.push_str(&format!("  {} u{ci} (", sanitize(&cell.name)));
        let mut pins: Vec<String> = cell
            .inputs
            .iter()
            .enumerate()
            .map(|(pi, src)| format!(".{}({})", PIN_NAMES[pi.min(7)], wire_of(*src)))
            .collect();
        pins.push(format!(".Y(w{ci})"));
        s.push_str(&pins.join(", "));
        s.push_str(");\n");
    }
    for ((_, src), oname) in nl.outputs().iter().zip(&outputs) {
        s.push_str(&format!("  assign {} = {};\n", oname, wire_of(*src)));
    }
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedCell;
    use crate::Point;

    #[test]
    fn emits_module_with_instances() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b[0]"); // needs sanitizing
        let n = nl.add_cell(MappedCell {
            lib_cell: 1,
            name: "ND2".into(),
            inputs: vec![a, b],
            area: 12.288,
            width: 1.92,
            pos: Point::default(),
            source_tree: None,
        });
        nl.add_output("y", n);
        let v = to_verilog(&nl, "top");
        assert!(v.contains("module top(a, b_0_, y);"));
        assert!(v.contains("ND2 u0 (.A(a), .B(b_0_), .Y(w0));"));
        assert!(v.contains("assign y = w0;"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn sanitizes_leading_digits_and_symbols() {
        assert_eq!(sanitize("0in"), "_0in");
        assert_eq!(sanitize("iJ0J"), "iJ0J");
        assert_eq!(sanitize("a.b/c"), "a_b_c");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn pi_driven_output() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        nl.add_output("y", a);
        let v = to_verilog(&nl, "feed");
        assert!(v.contains("assign y = a;"));
    }
}
