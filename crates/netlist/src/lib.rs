//! Core intermediate representations for congestion-aware logic synthesis.
//!
//! This crate provides the data structures shared by the whole `casyn`
//! stack:
//!
//! * [`sop`] — cubes and sum-of-products covers, the two-level
//!   representation used by PLAs and by the algebraic optimizer.
//! * [`network`] — the multi-level Boolean network (technology-independent
//!   logic, one SOP per node) produced by the front end.
//! * [`subject`] — the *subject graph*: a DAG of base gates (two-input
//!   NANDs and inverters) that technology mapping covers with library
//!   cells, exactly as in DAGON/MIS.
//! * [`mapped`] — the technology-dependent gate-level netlist produced by
//!   the mapper, with cell positions and derived nets.
//! * [`pla`] — espresso-style `.pla` parsing/printing.
//! * [`bench`] — seeded synthetic benchmark generators standing in for the
//!   IWLS93 circuits used by the paper (SPLA, PDC, TOO_LARGE).
//!
//! # Example
//!
//! ```
//! use casyn_netlist::subject::SubjectGraph;
//!
//! let mut g = SubjectGraph::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let n = g.add_nand2(a, b);
//! let y = g.add_inv(n); // y = a AND b
//! g.add_output("y", y);
//! assert_eq!(g.num_gates(), 2);
//! ```

pub mod bench;
pub mod blif;
pub mod dot;
pub mod mapped;
pub mod network;
pub mod pla;
pub mod seq;
pub mod sop;
pub mod subject;
pub mod verilog;

pub use blif::Blif;
pub use mapped::{MappedCell, MappedNetlist, Net, SignalRef};
pub use network::{Network, NodeFunction, NodeId};
pub use pla::Pla;
pub use seq::{Latch, LatchInit, SeqNetwork};
pub use sop::{Cube, Sop};
pub use subject::{BaseKind, GateId, SubjectGraph};
pub use verilog::to_verilog;

/// A point on the chip layout image, in micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in micrometres.
    pub x: f64,
    /// Vertical coordinate in micrometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`, the metric used by the
    /// paper's `distance()` function: routing is rectilinear, so the L1
    /// norm reflects wirelength.
    pub fn manhattan(&self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`.
    pub fn euclidean(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_default_is_origin() {
        let p = Point::default();
        assert_eq!(p, Point::new(0.0, 0.0));
    }
}
