//! Programmable logic array (PLA) representation with espresso-style
//! `.pla` parsing and printing.
//!
//! SPLA and PDC — the two IWLS93 benchmarks the paper evaluates — are PLA
//! benchmarks, so this module is the entry point for reproducing those
//! experiments: a [`Pla`] converts into a two-level [`Network`]
//! (one AND plane node per product term, one OR node per output), which is
//! then optimized and decomposed into the subject graph.

use crate::network::Network;
use crate::sop::{Cube, Polarity, Sop};
use std::fmt;
use std::str::FromStr;

/// Errors produced while parsing a `.pla` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePlaError {
    /// A directive (`.i`, `.o`, …) was unknown or had a malformed
    /// argument.
    BadDirective { line: usize, directive: String },
    /// An `.ilb`/`.ob` label list disagreed with the declared port count.
    BadLabels { line: usize, directive: String, expected: usize, got: usize },
    /// A product-term line had the wrong width or an invalid character.
    BadTerm { line: usize, reason: String },
    /// `.i`/`.o` missing before the first product term.
    MissingHeader,
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePlaError::BadDirective { line, directive } => {
                write!(f, "malformed directive on line {line}: {directive}")
            }
            ParsePlaError::BadLabels { line, directive, expected, got } => {
                write!(f, "{directive} on line {line} names {got} ports, expected {expected}")
            }
            ParsePlaError::BadTerm { line, reason } => {
                write!(f, "bad product term on line {line}: {reason}")
            }
            ParsePlaError::MissingHeader => write!(f, "missing .i/.o header"),
        }
    }
}

impl std::error::Error for ParsePlaError {}

/// One PLA row: an input cube and the set of outputs it feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaTerm {
    /// Input plane: the product term.
    pub cube: Cube,
    /// Output plane: `outputs[k]` is true when the term feeds output `k`.
    pub outputs: Vec<bool>,
}

/// A two-level AND/OR array.
#[derive(Debug, Clone, Default)]
pub struct Pla {
    num_inputs: usize,
    num_outputs: usize,
    terms: Vec<PlaTerm>,
    input_labels: Vec<String>,
    output_labels: Vec<String>,
}

impl Pla {
    /// Creates an empty PLA with default port labels (`iJ<k>J` inputs and
    /// `oJ<k>J` outputs, the naming convention visible in the paper's
    /// timing reports).
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Pla {
            num_inputs,
            num_outputs,
            terms: Vec::new(),
            input_labels: (0..num_inputs).map(|k| format!("iJ{k}J")).collect(),
            output_labels: (0..num_outputs).map(|k| format!("oJ{k}J")).collect(),
        }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The product terms.
    pub fn terms(&self) -> &[PlaTerm] {
        &self.terms
    }

    /// Input port labels.
    pub fn input_labels(&self) -> &[String] {
        &self.input_labels
    }

    /// Output port labels.
    pub fn output_labels(&self) -> &[String] {
        &self.output_labels
    }

    /// Adds a product term.
    ///
    /// # Panics
    ///
    /// Panics if the cube universe or output-vector length mismatch the
    /// PLA dimensions.
    pub fn add_term(&mut self, cube: Cube, outputs: Vec<bool>) {
        assert_eq!(cube.num_vars(), self.num_inputs, "cube universe mismatch");
        assert_eq!(outputs.len(), self.num_outputs, "output plane mismatch");
        self.terms.push(PlaTerm { cube, outputs });
    }

    /// The SOP of one output column.
    pub fn output_sop(&self, output: usize) -> Sop {
        let cubes: Vec<Cube> =
            self.terms.iter().filter(|t| t.outputs[output]).map(|t| t.cube.clone()).collect();
        Sop::from_cubes(self.num_inputs, cubes)
    }

    /// Evaluates all outputs on an input assignment.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        let fired: Vec<bool> = self.terms.iter().map(|t| t.cube.eval(assignment)).collect();
        (0..self.num_outputs)
            .map(|o| self.terms.iter().zip(&fired).any(|(t, f)| *f && t.outputs[o]))
            .collect()
    }

    /// Converts the PLA to a two-level Boolean [`Network`]: one node per
    /// distinct product term (shared across outputs, as in a physical PLA
    /// AND plane) and one OR node per output.
    pub fn to_network(&self) -> Network {
        let mut net = Network::new();
        let pis: Vec<_> = self.input_labels.iter().map(|n| net.add_input(n.clone())).collect();
        // AND plane: one node per term.
        let mut term_nodes = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let lits: Vec<(usize, Polarity)> = t.cube.literals().collect();
            if lits.is_empty() {
                // Constant-one term: represent as a single-variable tautology
                // over the first input (x + !x).
                let mut c0 = Cube::one(1);
                c0.set(0, Polarity::Positive);
                let mut c1 = Cube::one(1);
                c1.set(0, Polarity::Negative);
                term_nodes.push(net.add_node(vec![pis[0]], Sop::from_cubes(1, vec![c0, c1])));
                continue;
            }
            let fanins: Vec<_> = lits.iter().map(|(v, _)| pis[*v]).collect();
            let mut cube = Cube::one(lits.len());
            for (i, (_, p)) in lits.iter().enumerate() {
                cube.set(i, *p);
            }
            term_nodes.push(net.add_node(fanins, Sop::from_cube(cube)));
        }
        // OR plane: one node per output.
        for (o, label) in self.output_labels.iter().enumerate() {
            let fanins: Vec<_> = self
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| t.outputs[o])
                .map(|(i, _)| term_nodes[i])
                .collect();
            if fanins.is_empty() {
                // Constant-zero output: !x * x over the first input.
                let zero = net.add_node(vec![pis[0]], Sop::zero(1));
                net.add_output(label.clone(), zero);
                continue;
            }
            let k = fanins.len();
            let cubes: Vec<Cube> = (0..k)
                .map(|i| {
                    let mut c = Cube::one(k);
                    c.set(i, Polarity::Positive);
                    c
                })
                .collect();
            let node = net.add_node(fanins, Sop::from_cubes(k, cubes));
            net.add_output(label.clone(), node);
        }
        net
    }

    /// Serializes in espresso `.pla` format.
    pub fn to_pla_string(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            ".i {}\n.o {}\n.p {}\n",
            self.num_inputs,
            self.num_outputs,
            self.terms.len()
        ));
        for t in &self.terms {
            for v in 0..self.num_inputs {
                s.push(match t.cube.literal(v) {
                    Some(Polarity::Positive) => '1',
                    Some(Polarity::Negative) => '0',
                    None => '-',
                });
            }
            s.push(' ');
            for o in 0..self.num_outputs {
                s.push(if t.outputs[o] { '1' } else { '0' });
            }
            s.push('\n');
        }
        s.push_str(".e\n");
        s
    }
}

impl FromStr for Pla {
    type Err = ParsePlaError;

    /// Parses the espresso `.pla` subset: `.i`, `.o`, `.p` (ignored),
    /// `.ilb`, `.ob`, `.e`, comments (`#`) and `01-` / `01~` planes.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut ni: Option<usize> = None;
        let mut no: Option<usize> = None;
        let mut pla: Option<Pla> = None;
        let mut ilb: Option<(usize, Vec<String>)> = None;
        let mut ob: Option<(usize, Vec<String>)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let bad =
                    || ParsePlaError::BadDirective { line: lineno + 1, directive: line.into() };
                let mut it = rest.split_whitespace();
                match it.next() {
                    Some("i") => ni = Some(it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?),
                    Some("o") => no = Some(it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?),
                    Some("ilb") => ilb = Some((lineno + 1, it.map(String::from).collect())),
                    Some("ob") => ob = Some((lineno + 1, it.map(String::from).collect())),
                    Some("p") | Some("e") | Some("end") | Some("type") => {}
                    _ => return Err(bad()),
                }
                continue;
            }
            // product term line
            let (ni, no) = match (ni, no) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ParsePlaError::MissingHeader),
            };
            let p = pla.get_or_insert_with(|| Pla::new(ni, no));
            let compact: Vec<char> = line.chars().filter(|c| !c.is_whitespace()).collect();
            if compact.len() != ni + no {
                return Err(ParsePlaError::BadTerm {
                    line: lineno + 1,
                    reason: format!("expected {} plane characters, got {}", ni + no, compact.len()),
                });
            }
            let mut cube = Cube::one(ni);
            for (v, ch) in compact[..ni].iter().enumerate() {
                match ch {
                    '1' => cube.set(v, Polarity::Positive),
                    '0' => cube.set(v, Polarity::Negative),
                    '-' | '~' | '2' => {}
                    c => {
                        return Err(ParsePlaError::BadTerm {
                            line: lineno + 1,
                            reason: format!("invalid input-plane character '{c}'"),
                        })
                    }
                }
            }
            let mut outs = vec![false; no];
            for (o, ch) in compact[ni..].iter().enumerate() {
                match ch {
                    '1' | '4' => outs[o] = true,
                    '0' | '-' | '~' | '2' | '3' => {}
                    c => {
                        return Err(ParsePlaError::BadTerm {
                            line: lineno + 1,
                            reason: format!("invalid output-plane character '{c}'"),
                        })
                    }
                }
            }
            p.add_term(cube, outs);
        }
        let mut pla = match pla {
            Some(p) => p,
            None => match (ni, no) {
                (Some(a), Some(b)) => Pla::new(a, b),
                _ => return Err(ParsePlaError::MissingHeader),
            },
        };
        if let Some((line, labels)) = ilb {
            if labels.len() != pla.num_inputs {
                return Err(ParsePlaError::BadLabels {
                    line,
                    directive: ".ilb".into(),
                    expected: pla.num_inputs,
                    got: labels.len(),
                });
            }
            pla.input_labels = labels;
        }
        if let Some((line, labels)) = ob {
            if labels.len() != pla.num_outputs {
                return Err(ParsePlaError::BadLabels {
                    line,
                    directive: ".ob".into(),
                    expected: pla.num_outputs,
                    got: labels.len(),
                });
            }
            pla.output_labels = labels;
        }
        Ok(pla)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# two-bit comparator
.i 4
.o 1
.p 3
1-0- 1
01-0 1
11-- 1
.e
";

    #[test]
    fn parse_and_eval() {
        let pla: Pla = SAMPLE.parse().unwrap();
        assert_eq!(pla.num_inputs(), 4);
        assert_eq!(pla.num_outputs(), 1);
        assert_eq!(pla.terms().len(), 3);
        // 1-0-: x0 & !x2
        assert_eq!(pla.eval(&[true, false, false, false]), vec![true]);
        assert_eq!(pla.eval(&[false, false, false, false]), vec![false]);
        // 11--
        assert_eq!(pla.eval(&[true, true, true, true]), vec![true]);
    }

    #[test]
    fn roundtrip_via_string() {
        let pla: Pla = SAMPLE.parse().unwrap();
        let text = pla.to_pla_string();
        let again: Pla = text.parse().unwrap();
        assert_eq!(again.terms().len(), pla.terms().len());
        for m in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(pla.eval(&asg), again.eval(&asg));
        }
    }

    #[test]
    fn to_network_is_equivalent() {
        let pla: Pla = SAMPLE.parse().unwrap();
        let net = pla.to_network();
        for m in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(pla.eval(&asg), net.simulate_outputs(&asg), "mismatch at {asg:?}");
        }
    }

    #[test]
    fn output_sop_selects_column() {
        let pla: Pla = SAMPLE.parse().unwrap();
        let sop = pla.output_sop(0);
        assert_eq!(sop.num_cubes(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!("1- 1".parse::<Pla>(), Err(ParsePlaError::MissingHeader)));
        assert!(matches!(".i 2\n.o 1\n1 1".parse::<Pla>(), Err(ParsePlaError::BadTerm { .. })));
        assert_eq!(
            ".i 2\n.i x\n".parse::<Pla>().unwrap_err(),
            ParsePlaError::BadDirective { line: 2, directive: ".i x".into() }
        );
        assert!(matches!(".i 2\n.o 1\nxy 1".parse::<Pla>(), Err(ParsePlaError::BadTerm { .. })));
    }

    #[test]
    fn label_count_mismatch_is_an_error() {
        let e = ".i 2\n.o 1\n.ilb only_one\n11 1\n.e\n".parse::<Pla>().unwrap_err();
        assert_eq!(
            e,
            ParsePlaError::BadLabels { line: 3, directive: ".ilb".into(), expected: 2, got: 1 }
        );
        let e = ".i 2\n.o 1\n.ob x y z\n11 1\n.e\n".parse::<Pla>().unwrap_err();
        assert_eq!(
            e,
            ParsePlaError::BadLabels { line: 3, directive: ".ob".into(), expected: 1, got: 3 }
        );
    }

    #[test]
    fn default_labels_match_paper_convention() {
        let pla = Pla::new(2, 2);
        assert_eq!(pla.input_labels()[0], "iJ0J");
        assert_eq!(pla.output_labels()[1], "oJ1J");
    }

    #[test]
    fn ilb_ob_labels_are_applied() {
        let text = ".i 2\n.o 1\n.ilb alpha beta\n.ob gamma\n11 1\n.e\n";
        let pla: Pla = text.parse().unwrap();
        assert_eq!(pla.input_labels(), &["alpha".to_string(), "beta".to_string()]);
        assert_eq!(pla.output_labels(), &["gamma".to_string()]);
    }

    #[test]
    fn multi_output_sharing_in_network() {
        // one term feeding two outputs must become a shared AND-plane node
        let mut pla = Pla::new(2, 2);
        let mut c = Cube::one(2);
        c.set(0, Polarity::Positive);
        c.set(1, Polarity::Positive);
        pla.add_term(c, vec![true, true]);
        let net = pla.to_network();
        // nodes: 2 PIs + 1 term + 2 ORs
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.simulate_outputs(&[true, true]), vec![true, true]);
    }
}
