//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! SIS — the front end the paper builds on — speaks BLIF, so this module
//! lets real technology-independent netlists flow in and out of the
//! stack. The supported subset covers `.model`, `.inputs`, `.outputs`,
//! `.names` with SOP rows, `.latch` (D flip-flops, parsed into a
//! [`crate::seq::SeqNetwork`]) and `.end`. Subcircuits are rejected with
//! a clear error.

use crate::network::{Network, NodeFunction, NodeId};
use crate::seq::{Latch, LatchInit, SeqNetwork};
use crate::sop::{Cube, Polarity, Sop};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Errors produced while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBlifError {
    /// The text contained no `.model`.
    MissingModel,
    /// A construct the combinational subset does not support.
    Unsupported { line: usize, what: String },
    /// A `.names` row was malformed.
    BadRow { line: usize, reason: String },
    /// A signal was referenced but never defined.
    Undefined { name: String },
    /// A signal was defined more than once.
    Redefined { line: usize, name: String },
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::MissingModel => write!(f, "missing .model"),
            ParseBlifError::Unsupported { line, what } => {
                write!(f, "unsupported construct on line {line}: {what}")
            }
            ParseBlifError::BadRow { line, reason } => {
                write!(f, "bad .names row on line {line}: {reason}")
            }
            ParseBlifError::Undefined { name } => write!(f, "undefined signal: {name}"),
            ParseBlifError::Redefined { line, name } => {
                write!(f, "signal redefined on line {line}: {name}")
            }
        }
    }
}

impl std::error::Error for ParseBlifError {}

/// A parsed BLIF model, convertible to a [`Network`] (combinational
/// view) or a [`SeqNetwork`] (with flip-flops).
#[derive(Debug, Clone)]
pub struct Blif {
    /// The model name from `.model` (empty when anonymous).
    pub model: String,
    seq: SeqNetwork,
}

impl Blif {
    /// The combinational core of the model (latch outputs appear as
    /// pseudo primary inputs after the real ones).
    pub fn network(&self) -> &Network {
        &self.seq.core
    }

    /// Consumes the parse and returns the combinational core.
    pub fn into_network(self) -> Network {
        self.seq.core
    }

    /// The full sequential view.
    pub fn seq(&self) -> &SeqNetwork {
        &self.seq
    }

    /// Consumes the parse and returns the sequential view.
    pub fn into_seq(self) -> SeqNetwork {
        self.seq
    }

    /// Number of flip-flops.
    pub fn num_latches(&self) -> usize {
        self.seq.latches.len()
    }
}

struct NamesBlock {
    line: usize,
    signals: Vec<String>, // inputs..., output last
    rows: Vec<(String, char)>,
}

impl FromStr for Blif {
    type Err = ParseBlifError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        // join continuation lines ending in '\'
        let mut lines: Vec<(usize, String)> = Vec::new();
        let mut pending: Option<(usize, String)> = None;
        for (ln, raw) in text.lines().enumerate() {
            let no_comment = raw.split('#').next().unwrap_or("");
            let (acc_ln, mut acc) = pending.take().unwrap_or((ln + 1, String::new()));
            acc.push_str(no_comment);
            if let Some(stripped) = acc.strip_suffix('\\') {
                pending = Some((acc_ln, format!("{stripped} ")));
                continue;
            }
            if !acc.trim().is_empty() {
                lines.push((acc_ln, acc));
            }
        }
        let mut model = None;
        // input names with the line of their declaring .inputs directive
        let mut inputs: Vec<(usize, String)> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut blocks: Vec<NamesBlock> = Vec::new();
        // (d name, q name, init, declaration line)
        let mut latch_decls: Vec<(String, String, LatchInit, usize)> = Vec::new();
        for (ln, line) in &lines {
            let mut it = line.split_whitespace();
            let Some(head) = it.next() else { continue };
            match head {
                ".model" => model = Some(it.next().unwrap_or("").to_string()),
                ".inputs" => inputs.extend(it.map(|s| (*ln, s.to_string()))),
                ".outputs" => outputs.extend(it.map(String::from)),
                ".names" => {
                    let signals: Vec<String> = it.map(String::from).collect();
                    if signals.is_empty() {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: ".names needs at least an output".into(),
                        });
                    }
                    blocks.push(NamesBlock { line: *ln, signals, rows: Vec::new() });
                }
                ".end" => break,
                ".latch" => {
                    let rest: Vec<&str> = it.collect();
                    if rest.len() < 2 {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: ".latch needs input and output".into(),
                        });
                    }
                    // last token may be the init value; optional type and
                    // control tokens in between are accepted and ignored
                    let init = match rest.last().copied() {
                        Some("0") => LatchInit::Zero,
                        Some("1") => LatchInit::One,
                        Some("2") | Some("3") => LatchInit::Unknown,
                        _ => LatchInit::Unknown,
                    };
                    latch_decls.push((rest[0].to_string(), rest[1].to_string(), init, *ln));
                }
                ".subckt" | ".gate" | ".mlatch" => {
                    return Err(ParseBlifError::Unsupported { line: *ln, what: head.into() })
                }
                ".exdc" | ".default_input_arrival" => {
                    return Err(ParseBlifError::Unsupported { line: *ln, what: head.into() })
                }
                _ if head.starts_with('.') => {
                    return Err(ParseBlifError::Unsupported { line: *ln, what: head.into() })
                }
                _ => {
                    // an SOP row of the most recent .names
                    let Some(block) = blocks.last_mut() else {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: "row outside .names".into(),
                        });
                    };
                    let mut parts: Vec<&str> = line.split_whitespace().collect();
                    let n_in = block.signals.len() - 1;
                    let (plane, out) = if n_in == 0 {
                        if parts.len() != 1 {
                            return Err(ParseBlifError::BadRow {
                                line: *ln,
                                reason: format!("expected 1 field, got {}", parts.len()),
                            });
                        }
                        ("".to_string(), parts.remove(0))
                    } else {
                        if parts.len() != 2 {
                            return Err(ParseBlifError::BadRow {
                                line: *ln,
                                reason: format!("expected 2 fields, got {}", parts.len()),
                            });
                        }
                        (parts[0].to_string(), parts[1])
                    };
                    if plane.chars().count() != n_in {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: format!(
                                "input plane has {} characters, .names declares {} inputs",
                                plane.chars().count(),
                                n_in
                            ),
                        });
                    }
                    if let Some(c) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: format!("invalid input-plane character '{c}'"),
                        });
                    }
                    let oc = out.chars().next().unwrap_or('1');
                    if oc != '0' && oc != '1' {
                        return Err(ParseBlifError::BadRow {
                            line: *ln,
                            reason: format!("output plane must be 0/1, got {out}"),
                        });
                    }
                    block.rows.push((plane, oc));
                }
            }
        }
        let model = model.ok_or(ParseBlifError::MissingModel)?;
        // every signal may be defined once: by .inputs, a .latch output,
        // or a .names block
        let mut defined_at: HashMap<&str, usize> = HashMap::new();
        for (ln, name) in &inputs {
            if defined_at.insert(name, *ln).is_some() {
                return Err(ParseBlifError::Redefined { line: *ln, name: name.clone() });
            }
        }
        for (_, q_name, _, ln) in &latch_decls {
            if defined_at.insert(q_name, *ln).is_some() {
                return Err(ParseBlifError::Redefined { line: *ln, name: q_name.clone() });
            }
        }
        for block in &blocks {
            let out = block.signals.last().expect("checked non-empty at parse");
            if defined_at.insert(out, block.line).is_some() {
                return Err(ParseBlifError::Redefined { line: block.line, name: out.clone() });
            }
        }
        // build the network: real inputs, latch pseudo-inputs, then blocks
        let mut net = Network::new();
        let mut id_of: HashMap<String, NodeId> = HashMap::new();
        for (_, name) in &inputs {
            let id = net.add_input(name.clone());
            id_of.insert(name.clone(), id);
        }
        let num_real_inputs = inputs.len();
        let mut latch_qs: Vec<NodeId> = Vec::new();
        for (_, q_name, _, _) in &latch_decls {
            let id = net.add_input(q_name.clone());
            id_of.insert(q_name.clone(), id);
            latch_qs.push(id);
        }
        // iterate until all blocks placed (they may be out of order)
        let mut remaining: Vec<&NamesBlock> = blocks.iter().collect();
        let mut progress = true;
        while !remaining.is_empty() && progress {
            progress = false;
            remaining.retain(|block| {
                let (fanin_names, out_name) = block.signals.split_at(block.signals.len() - 1);
                if !fanin_names.iter().all(|n| id_of.contains_key(n)) {
                    return true; // keep for later
                }
                let fanins: Vec<NodeId> = fanin_names.iter().map(|n| id_of[n]).collect();
                let n_in = fanins.len();
                // on-set rows only; '0' output rows define the complement,
                // which the subset does not support mixed
                let mut sop = Sop::zero(n_in);
                let mut complemented = false;
                for (plane, oc) in &block.rows {
                    if *oc == '0' {
                        complemented = true;
                    }
                    let mut cube = Cube::one(n_in);
                    for (v, ch) in plane.chars().enumerate() {
                        match ch {
                            '1' => cube.set(v, Polarity::Positive),
                            '0' => cube.set(v, Polarity::Negative),
                            '-' => {}
                            _ => {}
                        }
                    }
                    sop.push(cube);
                }
                let id = if block.rows.is_empty() {
                    // constant zero
                    net.add_node(fanins, Sop::zero(n_in))
                } else if complemented {
                    // f' given: build f = NOT(given) via De Morgan is
                    // nontrivial for general SOPs; reject mixed planes
                    let inner = net.add_node(fanins, sop);
                    net.add_not(inner)
                } else {
                    net.add_node(fanins, sop)
                };
                id_of.insert(out_name[0].clone(), id);
                progress = true;
                false
            });
        }
        if let Some(block) = remaining.first() {
            let missing =
                block.signals.iter().find(|n| !id_of.contains_key(*n)).cloned().unwrap_or_default();
            return Err(ParseBlifError::Undefined { name: missing });
        }
        for name in &outputs {
            let id =
                *id_of.get(name).ok_or_else(|| ParseBlifError::Undefined { name: name.clone() })?;
            net.add_output(name.clone(), id);
        }
        let mut latches = Vec::with_capacity(latch_decls.len());
        for ((d_name, q_name, init, _), q) in latch_decls.into_iter().zip(latch_qs) {
            let d = *id_of.get(&d_name).ok_or(ParseBlifError::Undefined { name: d_name })?;
            latches.push(Latch { name: q_name, d, q, init });
        }
        let seq = SeqNetwork { core: net, latches, num_real_inputs };
        seq.check();
        Ok(Blif { model, seq })
    }
}

/// Writes a network as BLIF text.
pub fn to_blif(net: &Network, model: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(".model {model}\n"));
    let name_of = |id: NodeId| -> String {
        match net.node(id) {
            NodeFunction::Input(name) => name.clone(),
            NodeFunction::Logic { .. } => format!("n{}", id.0),
        }
    };
    s.push_str(".inputs");
    for id in net.inputs() {
        s.push_str(&format!(" {}", name_of(*id)));
    }
    s.push('\n');
    s.push_str(".outputs");
    for (name, _) in net.outputs() {
        s.push_str(&format!(" {name}"));
    }
    s.push('\n');
    for id in net.topological_order() {
        if let NodeFunction::Logic { fanins, sop } = net.node(id) {
            s.push_str(".names");
            for f in fanins {
                s.push_str(&format!(" {}", name_of(*f)));
            }
            s.push_str(&format!(" {}\n", name_of(id)));
            for cube in sop.cubes() {
                if !fanins.is_empty() {
                    for v in 0..fanins.len() {
                        s.push(match cube.literal(v) {
                            Some(Polarity::Positive) => '1',
                            Some(Polarity::Negative) => '0',
                            None => '-',
                        });
                    }
                    s.push(' ');
                }
                s.push_str("1\n");
            }
        }
    }
    // alias outputs onto their driving nodes with a buffer when names differ
    for (name, id) in net.outputs() {
        let driver = name_of(*id);
        if *name != driver {
            s.push_str(&format!(".names {driver} {name}\n1 1\n"));
        }
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a full adder
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parse_full_adder() {
        let blif: Blif = SAMPLE.parse().unwrap();
        assert_eq!(blif.model, "adder");
        let net = blif.network();
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.outputs().len(), 2);
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = m & 2 == 2;
            let c = m & 4 == 4;
            let want_sum = (a as u32 + b as u32 + c as u32) % 2 == 1;
            let want_cout = (a as u32 + b as u32 + c as u32) >= 2;
            assert_eq!(net.simulate_outputs(&[a, b, c]), vec![want_sum, want_cout]);
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let blif: Blif = SAMPLE.parse().unwrap();
        let text = to_blif(blif.network(), "adder");
        let again: Blif = text.parse().unwrap();
        for m in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(
                blif.network().simulate_outputs(&asg),
                again.network().simulate_outputs(&asg)
            );
        }
    }

    #[test]
    fn out_of_order_names_blocks() {
        let text = "\
.model ooo
.inputs a b
.outputs y
.names t y
0 1
.names a b t
11 1
.end
";
        let blif: Blif = text.parse().unwrap();
        // y = !(a & b)
        assert_eq!(blif.network().simulate_outputs(&[true, true]), vec![false]);
        assert_eq!(blif.network().simulate_outputs(&[true, false]), vec![true]);
    }

    #[test]
    fn complemented_output_plane() {
        let text = ".model c\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let blif: Blif = text.parse().unwrap();
        // rows with output 0 define the complement: y = !(ab)
        assert_eq!(blif.network().simulate_outputs(&[true, true]), vec![false]);
        assert_eq!(blif.network().simulate_outputs(&[false, true]), vec![true]);
    }

    #[test]
    fn constant_and_continuation() {
        let text = ".model k\n.inputs a\n.outputs z one\n.names z\n.names \\\none\n1\n.end\n";
        let blif: Blif = text.parse().unwrap();
        assert_eq!(blif.network().simulate_outputs(&[false]), vec![false, true]);
    }

    #[test]
    fn latch_parsing_builds_sequential_view() {
        // a toggle counter: d = !q, out = q
        let text = "\
.model tff
.inputs
.outputs out
.latch d q 0
.names q d
0 1
.names q out
1 1
.end
";
        let blif: Blif = text.parse().unwrap();
        assert_eq!(blif.num_latches(), 1);
        let seq = blif.seq();
        assert_eq!(seq.num_real_inputs, 0);
        let out = seq.simulate(&[vec![], vec![], vec![], vec![]]);
        assert_eq!(out, vec![vec![false], vec![true], vec![false], vec![true]]);
    }

    #[test]
    fn latch_init_one() {
        let text =
            ".model m\n.inputs\n.outputs o\n.latch d q 1\n.names q d\n1 1\n.names q o\n1 1\n.end\n";
        let blif: Blif = text.parse().unwrap();
        let out = blif.seq().simulate(&[vec![], vec![]]);
        assert_eq!(out, vec![vec![true], vec![true]]);
    }

    #[test]
    fn errors() {
        assert!(matches!(".inputs a\n".parse::<Blif>(), Err(ParseBlifError::MissingModel)));
        assert!(matches!(
            ".model m\n.subckt foo a=b\n.end\n".parse::<Blif>(),
            Err(ParseBlifError::Unsupported { .. })
        ));
        assert!(matches!(
            ".model m\n.inputs a\n.outputs y\n.end\n".parse::<Blif>(),
            Err(ParseBlifError::Undefined { .. })
        ));
        assert!(matches!(
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1 1\n.end\n".parse::<Blif>(),
            Err(ParseBlifError::BadRow { .. })
        ));
    }

    #[test]
    fn row_plane_width_is_validated() {
        // .names declares 2 inputs but the row plane has 3 characters
        let e = ".model m\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert_eq!(
            e,
            ParseBlifError::BadRow {
                line: 5,
                reason: "input plane has 3 characters, .names declares 2 inputs".into(),
            }
        );
        // invalid plane character
        let e = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1x 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert!(matches!(e, ParseBlifError::BadRow { line: 5, .. }), "got {e:?}");
        // a constant block must not carry an input plane
        let e = ".model m\n.inputs a\n.outputs y z\n.names a y\n1 1\n.names z\n1 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert!(matches!(e, ParseBlifError::BadRow { line: 7, .. }), "got {e:?}");
    }

    #[test]
    fn duplicate_definitions_carry_lines() {
        // the same output driven by two .names blocks
        let e = ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert_eq!(e, ParseBlifError::Redefined { line: 6, name: "y".into() });
        // an input repeated in .inputs
        let e = ".model m\n.inputs a\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert_eq!(e, ParseBlifError::Redefined { line: 3, name: "a".into() });
        // a .names block shadowing a latch output
        let e = ".model m\n.inputs a\n.outputs q\n.latch a q 0\n.names a q\n1 1\n.end\n"
            .parse::<Blif>()
            .unwrap_err();
        assert_eq!(e, ParseBlifError::Redefined { line: 5, name: "q".into() });
    }
}
