//! Sequential circuits: a combinational core plus D flip-flops.
//!
//! The paper's flow (and this library's mapper) is combinational; a
//! [`SeqNetwork`] wraps a [`Network`] with latch records so sequential
//! designs can ride the same pipeline: each flip-flop's output `Q` is a
//! pseudo primary input of the core, its data pin `D` is driven by a core
//! node, and synthesis maps the core while the flip-flops pass through.

use crate::network::{Network, NodeFunction, NodeId};
use std::fmt;

/// Initial value of a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatchInit {
    /// Powers up at 0.
    #[default]
    Zero,
    /// Powers up at 1.
    One,
    /// Unknown/don't-care power-up state (simulated as 0).
    Unknown,
}

impl LatchInit {
    /// The simulation value at cycle 0.
    pub fn as_bool(self) -> bool {
        matches!(self, LatchInit::One)
    }
}

/// One D flip-flop: `q` is a pseudo-input node of the core network whose
/// next-cycle value is the core's `d` node.
#[derive(Debug, Clone, PartialEq)]
pub struct Latch {
    /// Register name (the BLIF `.latch` output signal).
    pub name: String,
    /// The core node computing the next state.
    pub d: NodeId,
    /// The pseudo primary input presenting the current state.
    pub q: NodeId,
    /// Power-up value.
    pub init: LatchInit,
}

/// A sequential network: combinational core + flip-flops.
#[derive(Debug, Clone, Default)]
pub struct SeqNetwork {
    /// The combinational core. Latch `q` nodes appear as primary inputs
    /// of this network *after* the real primary inputs, in latch order.
    pub core: Network,
    /// The flip-flops.
    pub latches: Vec<Latch>,
    /// How many of `core.inputs()` are real circuit inputs (the rest are
    /// latch outputs).
    pub num_real_inputs: usize,
}

impl SeqNetwork {
    /// Wraps a purely combinational network (no latches).
    pub fn combinational(core: Network) -> Self {
        let num_real_inputs = core.inputs().len();
        SeqNetwork { core, latches: Vec::new(), num_real_inputs }
    }

    /// True when the design has no flip-flops.
    pub fn is_combinational(&self) -> bool {
        self.latches.is_empty()
    }

    /// Simulates `cycles` clock cycles. `stimulus[t]` holds the real
    /// primary-input values for cycle `t`; returns the primary-output
    /// values per cycle.
    ///
    /// # Panics
    ///
    /// Panics if a stimulus row has the wrong width.
    pub fn simulate(&self, stimulus: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut state: Vec<bool> = self.latches.iter().map(|l| l.init.as_bool()).collect();
        let mut out = Vec::with_capacity(stimulus.len());
        for row in stimulus {
            assert_eq!(row.len(), self.num_real_inputs, "stimulus width mismatch");
            let mut pi = row.clone();
            pi.extend_from_slice(&state);
            let values = self.core.simulate(&pi);
            out.push(
                self.core.outputs().iter().map(|(_, id)| values[id.index()]).collect::<Vec<bool>>(),
            );
            for (s, l) in state.iter_mut().zip(&self.latches) {
                *s = values[l.d.index()];
            }
        }
        out
    }

    /// Validates the latch wiring: every `q` is a core input appearing
    /// after the real inputs, every `d` is a core node. Returns a
    /// description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let inputs = self.core.inputs();
        if self.num_real_inputs > inputs.len() {
            return Err(format!(
                "{} real inputs claimed but the core has only {}",
                self.num_real_inputs,
                inputs.len()
            ));
        }
        if inputs.len() - self.num_real_inputs != self.latches.len() {
            return Err(format!(
                "one pseudo-input per latch expected: {} pseudo-inputs vs {} latches",
                inputs.len() - self.num_real_inputs,
                self.latches.len()
            ));
        }
        for (k, l) in self.latches.iter().enumerate() {
            if inputs[self.num_real_inputs + k] != l.q {
                return Err(format!("latch {k}: q must be pseudo-input {k}"));
            }
            if !matches!(self.core.node(l.q), NodeFunction::Input(_)) {
                return Err(format!("latch {k}: q is not an input node"));
            }
            if l.d.index() >= self.core.num_nodes() {
                return Err(format!("latch {k}: d is out of range"));
            }
        }
        Ok(())
    }

    /// [`SeqNetwork::validate`] as an assertion, for use during
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent wiring.
    pub fn check(&self) {
        if let Err(e) = self.validate() {
            panic!("inconsistent sequential network: {e}");
        }
    }
}

impl fmt::Display for SeqNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequential network: {} real inputs, {} outputs, {} latches, {} literals",
            self.num_real_inputs,
            self.core.outputs().len(),
            self.latches.len(),
            self.core.literal_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toggle flip-flop: q' = q XOR enable.
    fn toggle() -> SeqNetwork {
        let mut net = Network::new();
        let en = net.add_input("en");
        let q = net.add_input("q_state");
        // d = en XOR q = en*!q + !en*q
        use crate::sop::{Cube, Polarity, Sop};
        let mut c0 = Cube::one(2);
        c0.set(0, Polarity::Positive);
        c0.set(1, Polarity::Negative);
        let mut c1 = Cube::one(2);
        c1.set(0, Polarity::Negative);
        c1.set(1, Polarity::Positive);
        let d = net.add_node(vec![en, q], Sop::from_cubes(2, vec![c0, c1]));
        net.add_output("out", q);
        let seq = SeqNetwork {
            core: net,
            latches: vec![Latch { name: "t".into(), d, q, init: LatchInit::Zero }],
            num_real_inputs: 1,
        };
        seq.check();
        seq
    }

    #[test]
    fn toggle_ff_toggles() {
        let seq = toggle();
        assert!(!seq.is_combinational());
        // enable every cycle: out = 0,1,0,1
        let out = seq.simulate(&vec![vec![true]; 4]);
        assert_eq!(out, vec![vec![false], vec![true], vec![false], vec![true]]);
        // never enabled: stays 0
        let out = seq.simulate(&vec![vec![false]; 3]);
        assert_eq!(out, vec![vec![false]; 3]);
    }

    #[test]
    fn init_one_starts_high() {
        let mut seq = toggle();
        seq.latches[0].init = LatchInit::One;
        let out = seq.simulate(&vec![vec![false]; 2]);
        assert_eq!(out, vec![vec![true], vec![true]]);
    }

    #[test]
    fn combinational_wrapper() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let n = net.add_not(a);
        net.add_output("y", n);
        let seq = SeqNetwork::combinational(net);
        assert!(seq.is_combinational());
        seq.check();
        let out = seq.simulate(&[vec![true], vec![false]]);
        assert_eq!(out, vec![vec![false], vec![true]]);
    }

    #[test]
    #[should_panic(expected = "stimulus width")]
    fn wrong_stimulus_width_panics() {
        toggle().simulate(&[vec![true, false]]);
    }
}
