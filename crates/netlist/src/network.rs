//! The multi-level Boolean network: the technology-independent logic
//! representation manipulated by the optimizer before decomposition into
//! base gates.
//!
//! A [`Network`] is a DAG whose nodes are either primary inputs or
//! internal functions. Each internal node carries a [`Sop`] over its local
//! fanin list, the same model as SIS/MIS. Primary outputs name nodes.

use crate::sop::{Polarity, Sop};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a network node computes.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFunction {
    /// A primary input with its port name.
    Input(String),
    /// An internal node: an SOP whose variable `i` is the node's `i`-th
    /// fanin.
    Logic {
        /// Local fanins; SOP variable `i` refers to `fanins[i]`.
        fanins: Vec<NodeId>,
        /// The node function over the local fanins.
        sop: Sop,
    },
}

/// A technology-independent multi-level logic network.
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: Vec<NodeFunction>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeFunction::Input(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds an internal logic node computing `sop` over `fanins`.
    ///
    /// # Panics
    ///
    /// Panics if the SOP universe does not match the fanin count, or if a
    /// fanin id is out of range (fanins must already exist, which keeps the
    /// node list topologically ordered).
    pub fn add_node(&mut self, fanins: Vec<NodeId>, sop: Sop) -> NodeId {
        assert_eq!(sop.num_vars(), fanins.len(), "SOP universe != fanin count");
        for f in &fanins {
            assert!(f.index() < self.nodes.len(), "fanin {f} does not exist");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeFunction::Logic { fanins, sop });
        id
    }

    /// Declares `node` as a primary output named `name`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// The function of a node.
    pub fn node(&self, id: NodeId) -> &NodeFunction {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node function (used by the optimizer when it
    /// restructures logic).
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeFunction {
        &mut self.nodes[id.index()]
    }

    /// All node ids in topological order (fanins before fanouts).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Number of nodes (inputs + logic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(name, node)` pairs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Total literal count over all logic nodes — the standard area proxy
    /// of the technology-independent phase.
    pub fn literal_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                NodeFunction::Input(_) => 0,
                NodeFunction::Logic { sop, .. } => sop.literal_count(),
            })
            .sum()
    }

    /// Number of internal (logic) nodes.
    pub fn num_logic_nodes(&self) -> usize {
        self.nodes.len() - self.inputs.len()
    }

    /// Node ids in a topological order (fanins before fanouts). Fresh
    /// nodes always reference existing ones, but the optimizer may rewire
    /// an old node to a newer divisor, so index order is not reliable and
    /// this order is recomputed.
    ///
    /// # Panics
    ///
    /// Panics if rewiring introduced a combinational cycle.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let NodeFunction::Logic { fanins, .. } = node {
                for f in fanins {
                    indeg[idx] += 1;
                    fanout[f.index()].push(idx);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i as u32));
            for &f in &fanout[i] {
                indeg[f] -= 1;
                if indeg[f] == 0 {
                    queue.push(f);
                }
            }
        }
        assert_eq!(order.len(), n, "combinational cycle in network");
        order
    }

    /// Evaluates every node under the given primary-input assignment.
    ///
    /// Returns one value per node, in node order. `pi_values` maps each
    /// entry of [`Network::inputs`] (in order) to its value.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len() != self.inputs().len()` or on a
    /// combinational cycle.
    pub fn simulate(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(pi_values.len(), self.inputs.len(), "one value per input required");
        let mut pi_of_node: HashMap<NodeId, usize> = HashMap::new();
        for (i, id) in self.inputs.iter().enumerate() {
            pi_of_node.insert(*id, i);
        }
        let mut values = vec![false; self.nodes.len()];
        for id in self.topological_order() {
            let idx = id.index();
            values[idx] = match &self.nodes[idx] {
                NodeFunction::Input(_) => pi_values[pi_of_node[&id]],
                NodeFunction::Logic { fanins, sop } => {
                    let local: Vec<bool> = fanins.iter().map(|f| values[f.index()]).collect();
                    sop.eval(&local)
                }
            };
        }
        values
    }

    /// Evaluates only the primary outputs, in declaration order.
    pub fn simulate_outputs(&self, pi_values: &[bool]) -> Vec<bool> {
        let values = self.simulate(pi_values);
        self.outputs.iter().map(|(_, id)| values[id.index()]).collect()
    }

    /// Fanout counts per node (number of logic nodes referencing it, plus
    /// one per primary-output reference).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let NodeFunction::Logic { fanins, .. } = node {
                for f in fanins {
                    counts[f.index()] += 1;
                }
            }
        }
        for (_, id) in &self.outputs {
            counts[id.index()] += 1;
        }
        counts
    }

    /// Builds the conjunction node `a AND b` as a one-cube SOP.
    pub fn add_and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut c = crate::sop::Cube::one(2);
        c.set(0, Polarity::Positive);
        c.set(1, Polarity::Positive);
        self.add_node(vec![a, b], Sop::from_cube(c))
    }

    /// Builds the disjunction node `a OR b` as a two-cube SOP.
    pub fn add_or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut c0 = crate::sop::Cube::one(2);
        c0.set(0, Polarity::Positive);
        let mut c1 = crate::sop::Cube::one(2);
        c1.set(1, Polarity::Positive);
        self.add_node(vec![a, b], Sop::from_cubes(2, vec![c0, c1]))
    }

    /// Builds the complement node `!a`.
    pub fn add_not(&mut self, a: NodeId) -> NodeId {
        let mut c = crate::sop::Cube::one(1);
        c.set(0, Polarity::Negative);
        self.add_node(vec![a], Sop::from_cube(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sop::Cube;

    fn xor_network() -> Network {
        // y = a XOR b as SOP over (a, b)
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let mut c0 = Cube::one(2);
        c0.set(0, Polarity::Positive);
        c0.set(1, Polarity::Negative);
        let mut c1 = Cube::one(2);
        c1.set(0, Polarity::Negative);
        c1.set(1, Polarity::Positive);
        let y = net.add_node(vec![a, b], Sop::from_cubes(2, vec![c0, c1]));
        net.add_output("y", y);
        net
    }

    #[test]
    fn simulate_xor() {
        let net = xor_network();
        assert_eq!(net.simulate_outputs(&[false, false]), vec![false]);
        assert_eq!(net.simulate_outputs(&[true, false]), vec![true]);
        assert_eq!(net.simulate_outputs(&[false, true]), vec![true]);
        assert_eq!(net.simulate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    fn literal_count_counts_logic_only() {
        let net = xor_network();
        assert_eq!(net.literal_count(), 4);
        assert_eq!(net.num_logic_nodes(), 1);
        assert_eq!(net.num_nodes(), 3);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let n = net.add_not(a);
        let m = net.add_not(n);
        net.add_output("o1", m);
        net.add_output("o2", n);
        let counts = net.fanout_counts();
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[n.index()], 2); // used by m and by o2
        assert_eq!(counts[m.index()], 1);
    }

    #[test]
    fn gate_helpers_compute_expected_functions() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let and = net.add_and2(a, b);
        let or = net.add_or2(a, b);
        let not = net.add_not(a);
        net.add_output("and", and);
        net.add_output("or", or);
        net.add_output("not", not);
        for m in 0..4u32 {
            let av = m & 1 == 1;
            let bv = m & 2 == 2;
            let out = net.simulate_outputs(&[av, bv]);
            assert_eq!(out, vec![av && bv, av || bv, !av]);
        }
    }

    #[test]
    #[should_panic(expected = "SOP universe")]
    fn add_node_validates_universe() {
        let mut net = Network::new();
        let a = net.add_input("a");
        net.add_node(vec![a], Sop::one(2));
    }
}
