//! Cubes and sum-of-products covers.
//!
//! A [`Cube`] is a product of literals over a fixed variable universe; a
//! [`Sop`] is a set of cubes interpreted as their disjunction. These are
//! the two-level representation behind PLAs ([`crate::pla`]) and the
//! algebraic operations (division, kernels) of the technology-independent
//! optimizer.

use std::fmt;

/// Polarity of a literal inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// The variable appears complemented.
    Negative,
    /// The variable appears uncomplemented.
    Positive,
}

/// A product term: for each variable, present positively, negatively, or
/// absent (don't-care in the input plane).
///
/// Internally a pair of bitsets over the variable universe.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    pos: Vec<u64>,
    neg: Vec<u64>,
    num_vars: usize,
}

fn words(n: usize) -> usize {
    n.div_ceil(64)
}

impl Cube {
    /// The universal cube (constant one) over `num_vars` variables.
    pub fn one(num_vars: usize) -> Self {
        Cube { pos: vec![0; words(num_vars)], neg: vec![0; words(num_vars)], num_vars }
    }

    /// Number of variables in the universe (not the number of literals).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a literal; replaces any previous literal of the same variable.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn set(&mut self, var: usize, pol: Polarity) {
        assert!(var < self.num_vars, "variable {var} out of range");
        let (w, b) = (var / 64, 1u64 << (var % 64));
        match pol {
            Polarity::Positive => {
                self.pos[w] |= b;
                self.neg[w] &= !b;
            }
            Polarity::Negative => {
                self.neg[w] |= b;
                self.pos[w] &= !b;
            }
        }
    }

    /// Removes any literal of `var` from the cube.
    pub fn clear(&mut self, var: usize) {
        let (w, b) = (var / 64, 1u64 << (var % 64));
        self.pos[w] &= !b;
        self.neg[w] &= !b;
    }

    /// Polarity of `var` in this cube, or `None` if absent.
    pub fn literal(&self, var: usize) -> Option<Polarity> {
        let (w, b) = (var / 64, 1u64 << (var % 64));
        if self.pos[w] & b != 0 {
            Some(Polarity::Positive)
        } else if self.neg[w] & b != 0 {
            Some(Polarity::Negative)
        } else {
            None
        }
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> usize {
        self.pos.iter().chain(self.neg.iter()).map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over `(var, polarity)` pairs in ascending variable order.
    pub fn literals(&self) -> impl Iterator<Item = (usize, Polarity)> + '_ {
        (0..self.num_vars).filter_map(move |v| self.literal(v).map(|p| (v, p)))
    }

    /// True if this cube contains every literal of `other` (i.e. `other`
    /// implies `self` as products: `self` divides `other`).
    pub fn contains(&self, other: &Cube) -> bool {
        self.pos.iter().zip(&other.pos).all(|(a, b)| a & b == *a)
            && self.neg.iter().zip(&other.neg).all(|(a, b)| a & b == *a)
    }

    /// Product of two cubes, or `None` when they clash (x and !x).
    pub fn and(&self, other: &Cube) -> Option<Cube> {
        let mut out = self.clone();
        for i in 0..self.pos.len() {
            out.pos[i] |= other.pos[i];
            out.neg[i] |= other.neg[i];
            if out.pos[i] & out.neg[i] != 0 {
                return None;
            }
        }
        Some(out)
    }

    /// Cofactor: removes from `self` all literals present in `other`.
    /// Caller must ensure `other.contains`-compatibility; this is the
    /// quotient of algebraic division by a single cube when it succeeds.
    pub fn without(&self, other: &Cube) -> Cube {
        let mut out = self.clone();
        for i in 0..self.pos.len() {
            out.pos[i] &= !other.pos[i];
            out.neg[i] &= !other.neg[i];
        }
        out
    }

    /// True when the cube has no literals (constant one).
    pub fn is_one(&self) -> bool {
        self.pos.iter().all(|w| *w == 0) && self.neg.iter().all(|w| *w == 0)
    }

    /// Evaluates the cube on an assignment (`assignment[v]` is the value
    /// of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the variable universe.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.literals().all(|(v, p)| match p {
            Polarity::Positive => assignment[v],
            Polarity::Negative => !assignment[v],
        })
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, p) in self.literals() {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            match p {
                Polarity::Positive => write!(f, "x{v}")?,
                Polarity::Negative => write!(f, "!x{v}")?,
            }
        }
        Ok(())
    }
}

/// A sum-of-products cover: the disjunction of its cubes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
    num_vars: usize,
}

impl Sop {
    /// The empty cover (constant zero) over `num_vars` variables.
    pub fn zero(num_vars: usize) -> Self {
        Sop { cubes: Vec::new(), num_vars }
    }

    /// The cover containing only the universal cube (constant one).
    pub fn one(num_vars: usize) -> Self {
        Sop { cubes: vec![Cube::one(num_vars)], num_vars }
    }

    /// A cover consisting of a single cube.
    pub fn from_cube(cube: Cube) -> Self {
        let num_vars = cube.num_vars();
        Sop { cubes: vec![cube], num_vars }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cubes disagree on the variable universe.
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.num_vars(), num_vars, "cube universe mismatch");
        }
        Sop { cubes, num_vars }
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (product terms).
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Adds a cube to the cover.
    ///
    /// # Panics
    ///
    /// Panics on variable-universe mismatch.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_vars, "cube universe mismatch");
        self.cubes.push(cube);
    }

    /// Total literal count, the classic area proxy of technology-independent
    /// optimization (Brayton et al.).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// True if the cover is the constant zero (no cubes).
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// True if some cube is the universal cube (cover is constant one).
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_one)
    }

    /// Evaluates the cover on an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Removes single-cube containment: any cube contained in another cube
    /// of the cover is dropped. Returns the number of cubes removed.
    pub fn make_irredundant_scc(&mut self) -> usize {
        let before = self.cubes.len();
        let cubes = std::mem::take(&mut self.cubes);
        for (i, c) in cubes.iter().enumerate() {
            let redundant =
                cubes.iter().enumerate().any(|(j, d)| j != i && d.contains(c) && (c != d || j < i));
            if !redundant {
                self.cubes.push(c.clone());
            }
        }
        before - self.cubes.len()
    }

    /// Algebraic (weak) division of `self` by `divisor`.
    ///
    /// Returns `(quotient, remainder)` such that
    /// `self = quotient * divisor + remainder` algebraically. The quotient
    /// is the intersection over divisor cubes `d` of `{ c / d }`; this is
    /// the standard algorithm from multilevel logic synthesis.
    pub fn divide(&self, divisor: &Sop) -> (Sop, Sop) {
        assert_eq!(self.num_vars, divisor.num_vars);
        if divisor.is_zero() {
            return (Sop::zero(self.num_vars), self.clone());
        }
        let mut quotient: Option<Vec<Cube>> = None;
        for d in &divisor.cubes {
            let mut q: Vec<Cube> = Vec::new();
            for c in &self.cubes {
                if d.contains(c) {
                    q.push(c.without(d));
                }
            }
            quotient = Some(match quotient {
                None => q,
                Some(prev) => prev.into_iter().filter(|c| q.contains(c)).collect(),
            });
            if quotient.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let q = Sop::from_cubes(self.num_vars, quotient.unwrap_or_default());
        // remainder = self - q*divisor
        let mut product: Vec<Cube> = Vec::new();
        for qc in &q.cubes {
            for dc in &divisor.cubes {
                if let Some(p) = qc.and(dc) {
                    product.push(p);
                }
            }
        }
        let rem: Vec<Cube> = self.cubes.iter().filter(|c| !product.contains(c)).cloned().collect();
        (q, Sop::from_cubes(self.num_vars, rem))
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Sop {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if cubes disagree on the variable universe.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let num_vars = cubes.first().map_or(0, Cube::num_vars);
        Sop::from_cubes(num_vars, cubes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(num_vars: usize, lits: &[(usize, Polarity)]) -> Cube {
        let mut c = Cube::one(num_vars);
        for &(v, p) in lits {
            c.set(v, p);
        }
        c
    }

    #[test]
    fn cube_set_and_query() {
        let mut c = Cube::one(70);
        c.set(0, Polarity::Positive);
        c.set(65, Polarity::Negative);
        assert_eq!(c.literal(0), Some(Polarity::Positive));
        assert_eq!(c.literal(65), Some(Polarity::Negative));
        assert_eq!(c.literal(1), None);
        assert_eq!(c.literal_count(), 2);
        c.set(0, Polarity::Negative); // flip
        assert_eq!(c.literal(0), Some(Polarity::Negative));
        assert_eq!(c.literal_count(), 2);
        c.clear(0);
        assert_eq!(c.literal(0), None);
    }

    #[test]
    fn cube_and_detects_clash() {
        let a = cube(4, &[(0, Polarity::Positive)]);
        let b = cube(4, &[(0, Polarity::Negative)]);
        assert!(a.and(&b).is_none());
        let c = cube(4, &[(1, Polarity::Positive)]);
        let ac = a.and(&c).unwrap();
        assert_eq!(ac.literal_count(), 2);
    }

    #[test]
    fn cube_contains_and_without() {
        let ab = cube(4, &[(0, Polarity::Positive), (1, Polarity::Positive)]);
        let a = cube(4, &[(0, Polarity::Positive)]);
        assert!(a.contains(&ab));
        assert!(!ab.contains(&a));
        let b = ab.without(&a);
        assert_eq!(b.literal(0), None);
        assert_eq!(b.literal(1), Some(Polarity::Positive));
    }

    #[test]
    fn cube_eval() {
        let c = cube(3, &[(0, Polarity::Positive), (2, Polarity::Negative)]);
        assert!(c.eval(&[true, false, false]));
        assert!(!c.eval(&[true, false, true]));
        assert!(!c.eval(&[false, true, false]));
        assert!(Cube::one(3).eval(&[false, false, false]));
    }

    #[test]
    fn sop_eval_and_literals() {
        // f = ab + !c
        let f = Sop::from_cubes(
            3,
            vec![
                cube(3, &[(0, Polarity::Positive), (1, Polarity::Positive)]),
                cube(3, &[(2, Polarity::Negative)]),
            ],
        );
        assert_eq!(f.literal_count(), 3);
        assert!(f.eval(&[true, true, true]));
        assert!(f.eval(&[false, false, false]));
        assert!(!f.eval(&[true, false, true]));
    }

    #[test]
    fn sop_scc_removes_contained_cubes() {
        let mut f = Sop::from_cubes(
            3,
            vec![
                cube(3, &[(0, Polarity::Positive)]),
                cube(3, &[(0, Polarity::Positive), (1, Polarity::Positive)]),
            ],
        );
        assert_eq!(f.make_irredundant_scc(), 1);
        assert_eq!(f.num_cubes(), 1);
        assert_eq!(f.cubes()[0].literal_count(), 1);
    }

    #[test]
    fn sop_scc_keeps_one_of_duplicates() {
        let c = cube(2, &[(0, Polarity::Positive)]);
        let mut f = Sop::from_cubes(2, vec![c.clone(), c]);
        assert_eq!(f.make_irredundant_scc(), 1);
        assert_eq!(f.num_cubes(), 1);
    }

    #[test]
    fn algebraic_division_textbook() {
        // f = ac + ad + bc + bd + e  divided by  (a + b)
        // quotient = c + d, remainder = e
        let p = Polarity::Positive;
        let f = Sop::from_cubes(
            5,
            vec![
                cube(5, &[(0, p), (2, p)]),
                cube(5, &[(0, p), (3, p)]),
                cube(5, &[(1, p), (2, p)]),
                cube(5, &[(1, p), (3, p)]),
                cube(5, &[(4, p)]),
            ],
        );
        let d = Sop::from_cubes(5, vec![cube(5, &[(0, p)]), cube(5, &[(1, p)])]);
        let (q, r) = f.divide(&d);
        assert_eq!(q.num_cubes(), 2);
        assert!(q.cubes().contains(&cube(5, &[(2, p)])));
        assert!(q.cubes().contains(&cube(5, &[(3, p)])));
        assert_eq!(r.num_cubes(), 1);
        assert!(r.cubes().contains(&cube(5, &[(4, p)])));
    }

    #[test]
    fn division_by_nondivisor_gives_empty_quotient() {
        let p = Polarity::Positive;
        let f = Sop::from_cubes(3, vec![cube(3, &[(0, p)])]);
        let d = Sop::from_cubes(3, vec![cube(3, &[(1, p)])]);
        let (q, r) = f.divide(&d);
        assert!(q.is_zero());
        assert_eq!(r, f);
    }

    #[test]
    fn division_reconstructs_function() {
        // check f == q*d + r by simulation on all assignments
        let p = Polarity::Positive;
        let n = Polarity::Negative;
        let f = Sop::from_cubes(
            4,
            vec![cube(4, &[(0, p), (1, p)]), cube(4, &[(0, p), (2, n)]), cube(4, &[(3, p)])],
        );
        let d = Sop::from_cubes(4, vec![cube(4, &[(0, p)])]);
        let (q, r) = f.divide(&d);
        for m in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            let lhs = f.eval(&asg);
            let rhs = (q.eval(&asg) && d.eval(&asg)) || r.eval(&asg);
            assert_eq!(lhs, rhs, "mismatch at {asg:?}");
        }
    }

    #[test]
    fn display_forms() {
        let p = Polarity::Positive;
        let f = Sop::from_cubes(2, vec![cube(2, &[(0, p), (1, Polarity::Negative)])]);
        assert_eq!(format!("{f}"), "x0*!x1");
        assert_eq!(format!("{}", Sop::zero(2)), "0");
        assert_eq!(format!("{}", Cube::one(2)), "1");
    }
}
