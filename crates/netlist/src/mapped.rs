//! The technology-dependent gate-level netlist produced by the mapper.
//!
//! A [`MappedNetlist`] is a list of library-cell instances with input
//! connections, plus primary-input/primary-output ports. Cell metadata
//! needed by placement and routing (area, width, name) is denormalized
//! into each instance so this crate stays independent of the library
//! crate; timing looks cells up again through `lib_cell`.

use crate::Point;
use std::collections::HashMap;
use std::fmt;

/// The source of a signal in a mapped netlist: a primary input port or the
/// output of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalRef {
    /// Primary input with the given index into [`MappedNetlist::input_names`].
    Pi(u32),
    /// Output of the cell instance with the given index.
    Cell(u32),
}

/// One placed library-cell instance.
#[derive(Debug, Clone)]
pub struct MappedCell {
    /// Index of the cell master in the library used for mapping.
    pub lib_cell: u32,
    /// Master name (denormalized for reports and debugging).
    pub name: String,
    /// Signals driving each input pin, in pin order.
    pub inputs: Vec<SignalRef>,
    /// Footprint area in square micrometres.
    pub area: f64,
    /// Footprint width in micrometres (area / row height).
    pub width: f64,
    /// Position on the layout image (centre of the cell). Starts at the
    /// centre of mass assigned by the mapper; legalization overwrites it.
    pub pos: Point,
    /// Subject-graph tree this cell was covered from, when the mapper
    /// emitted it (`None` for cells synthesized outside tree covering —
    /// buffers, sequential elements, hand-built test netlists). Carried
    /// for congestion attribution: it links a routing hotspot back to
    /// the mapping decision that produced the offending net.
    pub source_tree: Option<u32>,
}

/// A net: one driver and its fanout pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The signal source.
    pub driver: SignalRef,
    /// Sink pins as `(cell index, pin index)`.
    pub sinks: Vec<(u32, u32)>,
    /// Indices of primary outputs driven by this net.
    pub po_sinks: Vec<u32>,
}

impl Net {
    /// Number of pins on the net (driver + sinks + primary outputs).
    pub fn degree(&self) -> usize {
        1 + self.sinks.len() + self.po_sinks.len()
    }
}

/// A placed, mapped gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct MappedNetlist {
    cells: Vec<MappedCell>,
    input_names: Vec<String>,
    input_pos: Vec<Point>,
    outputs: Vec<(String, SignalRef)>,
    output_pos: Vec<Point>,
}

impl MappedNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a primary input; ports start at the origin until a
    /// floorplan assigns pad positions.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalRef {
        let idx = self.input_names.len() as u32;
        self.input_names.push(name.into());
        self.input_pos.push(Point::default());
        SignalRef::Pi(idx)
    }

    /// Adds a cell instance and returns the signal of its output.
    pub fn add_cell(&mut self, cell: MappedCell) -> SignalRef {
        let idx = self.cells.len() as u32;
        self.cells.push(cell);
        SignalRef::Cell(idx)
    }

    /// Declares a primary output driven by `signal`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: SignalRef) {
        self.outputs.push((name.into(), signal));
        self.output_pos.push(Point::default());
    }

    /// The cell instances.
    pub fn cells(&self) -> &[MappedCell] {
        &self.cells
    }

    /// Mutable access to cell instances (placement updates positions).
    pub fn cells_mut(&mut self) -> &mut [MappedCell] {
        &mut self.cells
    }

    /// Primary-input names, indexed by [`SignalRef::Pi`].
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs as `(name, driver)` pairs.
    pub fn outputs(&self) -> &[(String, SignalRef)] {
        &self.outputs
    }

    /// Port position of primary input `idx`.
    pub fn input_pos(&self, idx: u32) -> Point {
        self.input_pos[idx as usize]
    }

    /// Port position of primary output `idx`.
    pub fn output_pos(&self, idx: u32) -> Point {
        self.output_pos[idx as usize]
    }

    /// Sets the pad position of primary input `idx`.
    pub fn set_input_pos(&mut self, idx: u32, pos: Point) {
        self.input_pos[idx as usize] = pos;
    }

    /// Sets the pad position of primary output `idx`.
    pub fn set_output_pos(&mut self, idx: u32, pos: Point) {
        self.output_pos[idx as usize] = pos;
    }

    /// Number of cell instances.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total cell area in square micrometres (the "Cell Area" column of
    /// the paper's tables).
    pub fn cell_area(&self) -> f64 {
        self.cells.iter().map(|c| c.area).sum()
    }

    /// Position of a signal source: the driving cell's position or the
    /// input pad.
    pub fn signal_pos(&self, signal: SignalRef) -> Point {
        match signal {
            SignalRef::Pi(i) => self.input_pos[i as usize],
            SignalRef::Cell(i) => self.cells[i as usize].pos,
        }
    }

    /// Builds the net list: one [`Net`] per signal source that has at
    /// least one sink. Nets are returned in a deterministic order (inputs
    /// first, then cells by index).
    pub fn nets(&self) -> Vec<Net> {
        let mut by_driver: HashMap<SignalRef, Net> = HashMap::new();
        for (ci, cell) in self.cells.iter().enumerate() {
            for (pi, src) in cell.inputs.iter().enumerate() {
                by_driver
                    .entry(*src)
                    .or_insert_with(|| Net {
                        driver: *src,
                        sinks: Vec::new(),
                        po_sinks: Vec::new(),
                    })
                    .sinks
                    .push((ci as u32, pi as u32));
            }
        }
        for (oi, (_, src)) in self.outputs.iter().enumerate() {
            by_driver
                .entry(*src)
                .or_insert_with(|| Net { driver: *src, sinks: Vec::new(), po_sinks: Vec::new() })
                .po_sinks
                .push(oi as u32);
        }
        let mut nets: Vec<Net> = by_driver.into_values().collect();
        nets.sort_by_key(|n| n.driver);
        nets
    }

    /// Simulates the netlist. `eval` computes one cell master's function:
    /// given the library cell index and the input pin values, it returns
    /// the output value. Returns the primary-output values in declaration
    /// order. Cells may be stored in any order; a topological order is
    /// derived internally.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the number of inputs, or
    /// if the netlist contains a combinational cycle.
    pub fn simulate_outputs_with(
        &self,
        eval: impl Fn(u32, &[bool]) -> bool,
        pi_values: &[bool],
    ) -> Vec<bool> {
        assert_eq!(pi_values.len(), self.input_names.len(), "one value per input required");
        let order = self.topological_order();
        let mut values = vec![false; self.cells.len()];
        let mut done = vec![false; self.cells.len()];
        for ci in order {
            let cell = &self.cells[ci];
            let ins: Vec<bool> = cell
                .inputs
                .iter()
                .map(|s| match s {
                    SignalRef::Pi(i) => pi_values[*i as usize],
                    SignalRef::Cell(i) => {
                        assert!(done[*i as usize], "combinational cycle in netlist");
                        values[*i as usize]
                    }
                })
                .collect();
            values[ci] = eval(cell.lib_cell, &ins);
            done[ci] = true;
        }
        self.outputs
            .iter()
            .map(|(_, s)| match s {
                SignalRef::Pi(i) => pi_values[*i as usize],
                SignalRef::Cell(i) => values[*i as usize],
            })
            .collect()
    }

    /// Cell indices in topological order (drivers before readers).
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle.
    pub fn topological_order(&self) -> Vec<usize> {
        self.topological_order_cut(|_| false)
    }

    /// Topological order where cells for which `is_source` returns true
    /// have their input edges ignored (they act as pure sources) —
    /// sequential cells in a registered design, whose outputs launch
    /// fresh timing paths. Every cell still appears exactly once.
    ///
    /// # Panics
    ///
    /// Panics when a cycle remains after cutting (a combinational loop).
    pub fn topological_order_cut(&self, is_source: impl Fn(usize) -> bool) -> Vec<usize> {
        let n = self.cells.len();
        let mut indeg = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, cell) in self.cells.iter().enumerate() {
            if is_source(ci) {
                continue;
            }
            for src in &cell.inputs {
                if let SignalRef::Cell(d) = src {
                    indeg[ci] += 1;
                    fanout[*d as usize].push(ci);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(ci) = queue.pop() {
            order.push(ci);
            for &f in &fanout[ci] {
                indeg[f] -= 1;
                if indeg[f] == 0 {
                    queue.push(f);
                }
            }
        }
        assert_eq!(order.len(), n, "combinational cycle in netlist");
        order
    }

    /// Rewires every reference to `from` (cell inputs and primary
    /// outputs) to `to`. Returns the number of references changed.
    pub fn replace_signal(&mut self, from: SignalRef, to: SignalRef) -> usize {
        let mut changed = 0;
        for cell in &mut self.cells {
            for src in &mut cell.inputs {
                if *src == from {
                    *src = to;
                    changed += 1;
                }
            }
        }
        for (_, src) in &mut self.outputs {
            if *src == from {
                *src = to;
                changed += 1;
            }
        }
        changed
    }

    /// Removes the last `n` primary-input ports.
    ///
    /// # Panics
    ///
    /// Panics if any removed input is still referenced by a cell or
    /// output.
    pub fn remove_trailing_inputs(&mut self, n: usize) {
        assert!(n <= self.input_names.len());
        let keep = (self.input_names.len() - n) as u32;
        let referenced = |sig: &SignalRef| matches!(sig, SignalRef::Pi(i) if *i >= keep);
        for cell in &self.cells {
            assert!(
                !cell.inputs.iter().any(referenced),
                "removed input still referenced by a cell"
            );
        }
        assert!(
            !self.outputs.iter().any(|(_, s)| referenced(s)),
            "removed input still referenced by an output"
        );
        self.input_names.truncate(keep as usize);
        self.input_pos.truncate(keep as usize);
    }

    /// Removes the last `n` primary-output ports (used to strip the
    /// temporary latch-data outputs after flip-flop insertion).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the output count.
    pub fn remove_trailing_outputs(&mut self, n: usize) {
        assert!(n <= self.outputs.len());
        let keep = self.outputs.len() - n;
        self.outputs.truncate(keep);
        self.output_pos.truncate(keep);
    }

    /// Histogram of cell-master names to instance counts.
    pub fn cell_histogram(&self) -> HashMap<&str, usize> {
        let mut h: HashMap<&str, usize> = HashMap::new();
        for c in &self.cells {
            *h.entry(c.name.as_str()).or_default() += 1;
        }
        h
    }
}

impl fmt::Display for MappedNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mapped netlist: {} cells, {} inputs, {} outputs, area {:.3} um^2",
            self.num_cells(),
            self.input_names.len(),
            self.outputs.len(),
            self.cell_area()
        )?;
        for (i, c) in self.cells.iter().enumerate() {
            writeln!(f, "  u{}: {} {:?}", i, c.name, c.inputs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(input: SignalRef) -> MappedCell {
        MappedCell {
            lib_cell: 0,
            name: "IV".into(),
            inputs: vec![input],
            area: 8.192,
            width: 1.28,
            pos: Point::default(),
            source_tree: None,
        }
    }

    fn nand2(a: SignalRef, b: SignalRef) -> MappedCell {
        MappedCell {
            lib_cell: 1,
            name: "ND2".into(),
            inputs: vec![a, b],
            area: 12.288,
            width: 1.92,
            pos: Point::default(),
            source_tree: None,
        }
    }

    fn eval(lib_cell: u32, ins: &[bool]) -> bool {
        match lib_cell {
            0 => !ins[0],
            1 => !(ins[0] && ins[1]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn build_and_simulate_and_gate() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n = nl.add_cell(nand2(a, b));
        let y = nl.add_cell(inv(n));
        nl.add_output("y", y);
        for m in 0..4u32 {
            let av = m & 1 == 1;
            let bv = m & 2 == 2;
            assert_eq!(nl.simulate_outputs_with(eval, &[av, bv]), vec![av && bv]);
        }
        assert_eq!(nl.num_cells(), 2);
        assert!((nl.cell_area() - 20.48).abs() < 1e-9);
    }

    #[test]
    fn nets_group_sinks_by_driver() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let x = nl.add_cell(inv(a));
        let y = nl.add_cell(inv(x));
        let z = nl.add_cell(inv(x));
        nl.add_output("y", y);
        nl.add_output("z", z);
        let nets = nl.nets();
        assert_eq!(nets.len(), 4); // a, x, y, z
        let net_x = nets.iter().find(|n| n.driver == x).unwrap();
        assert_eq!(net_x.sinks.len(), 2);
        assert_eq!(net_x.degree(), 3);
        let net_y = nets.iter().find(|n| n.driver == y).unwrap();
        assert_eq!(net_y.po_sinks, vec![0]);
    }

    #[test]
    fn topological_order_handles_any_storage_order() {
        // Store the INV before its driver NAND by construction trickery.
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Placeholder input that we patch afterwards.
        let y = nl.add_cell(inv(a));
        let n = nl.add_cell(nand2(a, b));
        nl.cells_mut()[0].inputs[0] = n;
        nl.add_output("y", y);
        let order = nl.topological_order();
        let pos_of = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos_of(1) < pos_of(0));
        assert_eq!(nl.simulate_outputs_with(eval, &[true, true]), vec![true]);
    }

    #[test]
    fn port_positions_roundtrip() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        nl.add_output("o", a);
        nl.set_input_pos(0, Point::new(1.0, 2.0));
        nl.set_output_pos(0, Point::new(3.0, 4.0));
        assert_eq!(nl.input_pos(0), Point::new(1.0, 2.0));
        assert_eq!(nl.output_pos(0), Point::new(3.0, 4.0));
        assert_eq!(nl.signal_pos(a), Point::new(1.0, 2.0));
    }

    #[test]
    fn replace_signal_and_port_removal() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_cell(inv(b));
        nl.add_output("o", b);
        // rewire everything reading b to read x's output instead
        let changed = nl.replace_signal(b, x);
        assert_eq!(changed, 2); // the inv's own input and the output
                                // ... which made a self-loop; point the inv at `a` instead
        nl.cells_mut()[0].inputs[0] = a;
        // b is now unreferenced and removable
        nl.remove_trailing_inputs(1);
        assert_eq!(nl.input_names(), &["a".to_string()]);
        nl.remove_trailing_outputs(1);
        assert!(nl.outputs().is_empty());
    }

    #[test]
    #[should_panic(expected = "still referenced")]
    fn remove_referenced_input_panics() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        nl.add_cell(inv(a));
        nl.remove_trailing_inputs(1);
    }

    #[test]
    fn cut_order_breaks_register_loops() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let dff = nl.add_cell(inv(a)); // placeholder master, index 0
        let logic = nl.add_cell(nand2(dff, a));
        // close the loop: the "register" reads the logic output
        nl.cells_mut()[0].inputs[0] = logic;
        nl.add_output("q", dff);
        // plain ordering panics; cutting at the register succeeds
        let order = nl.topological_order_cut(|c| c == 0);
        assert_eq!(order.len(), 2);
        let pos_of = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos_of(0) < pos_of(1));
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn cycle_detection() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let x = nl.add_cell(nand2(a, a));
        let y = nl.add_cell(inv(x));
        // introduce a cycle: x reads y
        nl.cells_mut()[0].inputs[1] = y;
        nl.topological_order();
    }
}
