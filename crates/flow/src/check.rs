//! Stage-boundary invariant checks.
//!
//! Each check inspects the artifact a pipeline stage just produced and
//! returns a [`FlowError`] with [`FlowErrorKind::Invariant`] when the
//! artifact is corrupt, instead of letting a downstream stage trip over
//! it with an opaque panic or — worse — silently produce wrong results.
//! The flow runs them after every stage when
//! [`crate::FlowOptions::validate`] is set (the default in debug builds,
//! `--validate` in release); each check also bumps the `check.passed` /
//! `check.failed` observability counters so validation coverage shows up
//! in telemetry.

use crate::error::{FlowError, Stage};
use casyn_core::partition::{Forest, TreeNode};
use casyn_netlist::mapped::{MappedNetlist, SignalRef};
use casyn_netlist::subject::{BaseKind, SubjectGraph};
use casyn_netlist::Point;
use casyn_obs as obs;
use casyn_place::Floorplan;
use casyn_route::RouteResult;

/// Slack allowed when testing "inside the die": positions sit exactly on
/// the die boundary after clamping, and row arithmetic can leave them a
/// rounding error outside it.
const BOUNDS_EPS: f64 = 1e-6;

/// Records the check verdict in the metrics registry and warns on failure.
fn report(name: &str, result: Result<(), FlowError>) -> Result<(), FlowError> {
    match &result {
        Ok(()) => obs::counter_add("check.passed", 1),
        Err(e) => {
            obs::counter_add("check.failed", 1);
            obs::log::warn(&format!("invariant check {name} failed: {e}"));
        }
    }
    result
}

/// Checks that a subject graph is a well-formed DAG: every fanin of a
/// gate precedes the gate (the append-only construction order downstream
/// passes rely on), arities match the gate kinds, and every primary
/// output names an existing vertex. Blamed on `stage` (decomposition or
/// optimization, whichever produced the graph).
pub fn subject_dag(stage: Stage, graph: &SubjectGraph) -> Result<(), FlowError> {
    report("subject_dag", subject_dag_inner(stage, graph))
}

fn subject_dag_inner(stage: Stage, graph: &SubjectGraph) -> Result<(), FlowError> {
    let n = graph.num_vertices();
    for id in graph.ids() {
        let fanins = graph.fanins(id);
        let arity = match graph.kind(id) {
            BaseKind::Input => 0,
            BaseKind::Inv => 1,
            BaseKind::Nand2 => 2,
        };
        if fanins.len() != arity {
            return Err(FlowError::invariant(
                stage,
                format!("gate {id} has {} fanins, expected {arity}", fanins.len()),
            ));
        }
        for f in fanins {
            if f.index() >= id.index() {
                return Err(FlowError::invariant(
                    stage,
                    format!("gate {id} reads {f}, which does not precede it (cycle or forward reference)"),
                ));
            }
        }
    }
    for (name, id) in graph.outputs() {
        if id.index() >= n {
            return Err(FlowError::invariant(
                stage,
                format!("output {name} names vertex {id} but the graph has {n} vertices"),
            ));
        }
    }
    Ok(())
}

/// Checks that every position is finite and inside the die (within
/// [`BOUNDS_EPS`]). Used after initial placement and again after
/// legalization, hence the explicit `stage`.
pub fn placement_in_bounds(
    stage: Stage,
    positions: &[Point],
    fp: &Floorplan,
) -> Result<(), FlowError> {
    report("placement_in_bounds", placement_in_bounds_inner(stage, positions, fp))
}

fn placement_in_bounds_inner(
    stage: Stage,
    positions: &[Point],
    fp: &Floorplan,
) -> Result<(), FlowError> {
    for (i, p) in positions.iter().enumerate() {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(FlowError::invariant(
                stage,
                format!("position {i} is not finite: ({}, {})", p.x, p.y),
            ));
        }
        if p.x < -BOUNDS_EPS
            || p.y < -BOUNDS_EPS
            || p.x > fp.die_width + BOUNDS_EPS
            || p.y > fp.die_height + BOUNDS_EPS
        {
            return Err(FlowError::invariant(
                stage,
                format!(
                    "position {i} at ({:.3}, {:.3}) lies outside the {:.3} x {:.3} die",
                    p.x, p.y, fp.die_width, fp.die_height
                ),
            ));
        }
    }
    Ok(())
}

/// Checks that a partition covers the subject graph completely: every
/// gate (non-input vertex) is hosted as an internal node of exactly the
/// tree recorded in `host`, and every tree's internal nodes point back at
/// real gates. A gate the forest lost would silently vanish from the
/// mapped netlist.
pub fn partition_covers(graph: &SubjectGraph, forest: &Forest) -> Result<(), FlowError> {
    report("partition_covers", partition_covers_inner(graph, forest))
}

fn partition_covers_inner(graph: &SubjectGraph, forest: &Forest) -> Result<(), FlowError> {
    let n = graph.num_vertices();
    if forest.host.len() != n || forest.father.len() != n {
        return Err(FlowError::invariant(
            Stage::Partition,
            format!(
                "forest tracks {} vertices (host) / {} (father) but the graph has {n}",
                forest.host.len(),
                forest.father.len()
            ),
        ));
    }
    for id in graph.ids() {
        let v = id.index();
        match (graph.kind(id), forest.host[v]) {
            (BaseKind::Input, Some(_)) => {
                return Err(FlowError::invariant(
                    Stage::Partition,
                    format!("primary input {id} is hosted as an internal tree node"),
                ));
            }
            (BaseKind::Input, None) => {}
            (_, None) => {
                return Err(FlowError::invariant(
                    Stage::Partition,
                    format!("gate {id} is not covered by any tree"),
                ));
            }
            (_, Some((t, node))) => {
                let tree = forest.trees.get(t as usize).ok_or_else(|| {
                    FlowError::invariant(
                        Stage::Partition,
                        format!(
                            "gate {id} claims tree {t} but the forest has {}",
                            forest.trees.len()
                        ),
                    )
                })?;
                let hosted = match tree.nodes.get(node as usize) {
                    Some(TreeNode::Inv { gate, .. }) | Some(TreeNode::Nand { gate, .. }) => {
                        Some(*gate)
                    }
                    _ => None,
                };
                if hosted != Some(id) {
                    return Err(FlowError::invariant(
                        Stage::Partition,
                        format!("gate {id} claims tree {t} node {node}, which hosts {hosted:?}"),
                    ));
                }
            }
        }
    }
    for (t, tree) in forest.trees.iter().enumerate() {
        if tree.nodes.is_empty() {
            return Err(FlowError::invariant(Stage::Partition, format!("tree {t} is empty")));
        }
        if tree.root_gate.index() >= n {
            return Err(FlowError::invariant(
                Stage::Partition,
                format!("tree {t} is rooted at {}, outside the graph", tree.root_gate),
            ));
        }
    }
    Ok(())
}

/// Checks that a mapped netlist is internally consistent: every signal
/// reference names an existing input or cell, and the cell graph is
/// acyclic (via a non-panicking Kahn pass — the netlist's own
/// `topological_order` asserts). Blamed on `stage` (map or legalize).
pub fn mapped_netlist(stage: Stage, nl: &MappedNetlist) -> Result<(), FlowError> {
    mapped_netlist_cut(stage, nl, |_| false)
}

/// [`mapped_netlist`] for sequential netlists: cells for which
/// `is_source` returns true (flip-flops) act as pure sources, so
/// register loops through them are legal while purely combinational
/// cycles still fail.
pub fn mapped_netlist_cut(
    stage: Stage,
    nl: &MappedNetlist,
    is_source: impl Fn(usize) -> bool,
) -> Result<(), FlowError> {
    report("mapped_netlist", mapped_netlist_inner(stage, nl, is_source))
}

fn mapped_netlist_inner(
    stage: Stage,
    nl: &MappedNetlist,
    is_source: impl Fn(usize) -> bool,
) -> Result<(), FlowError> {
    let num_cells = nl.num_cells();
    let num_inputs = nl.input_names().len();
    let check_ref = |what: String, s: SignalRef| -> Result<(), FlowError> {
        match s {
            SignalRef::Pi(i) if (i as usize) < num_inputs => Ok(()),
            SignalRef::Cell(i) if (i as usize) < num_cells => Ok(()),
            SignalRef::Pi(i) => Err(FlowError::invariant(
                stage,
                format!("{what} reads primary input {i} but the netlist has {num_inputs}"),
            )),
            SignalRef::Cell(i) => Err(FlowError::invariant(
                stage,
                format!("{what} reads cell {i} but the netlist has {num_cells}"),
            )),
        }
    };
    for (ci, cell) in nl.cells().iter().enumerate() {
        for (pi, src) in cell.inputs.iter().enumerate() {
            check_ref(format!("cell {ci} ({}) pin {pi}", cell.name), *src)?;
        }
    }
    for (name, src) in nl.outputs() {
        check_ref(format!("output {name}"), *src)?;
    }
    // Kahn's algorithm, tolerant of corruption: whatever is left
    // unordered at the end sits on a cycle.
    let mut indeg = vec![0usize; num_cells];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); num_cells];
    for (ci, cell) in nl.cells().iter().enumerate() {
        if is_source(ci) {
            continue;
        }
        for src in &cell.inputs {
            if let SignalRef::Cell(d) = src {
                indeg[ci] += 1;
                fanout[*d as usize].push(ci);
            }
        }
    }
    let mut queue: Vec<usize> = (0..num_cells).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(ci) = queue.pop() {
        seen += 1;
        for &f in &fanout[ci] {
            indeg[f] -= 1;
            if indeg[f] == 0 {
                queue.push(f);
            }
        }
    }
    if seen != num_cells {
        return Err(FlowError::invariant(
            stage,
            format!("netlist has a combinational cycle through {} cells", num_cells - seen),
        ));
    }
    Ok(())
}

/// Checks that the router produced a result covering every net: one
/// finite, non-negative wirelength entry per input net.
pub fn route_complete(num_nets: usize, route: &RouteResult) -> Result<(), FlowError> {
    report("route_complete", route_complete_inner(num_nets, route))
}

fn route_complete_inner(num_nets: usize, route: &RouteResult) -> Result<(), FlowError> {
    if route.net_wirelength.len() != num_nets {
        return Err(FlowError::invariant(
            Stage::Route,
            format!(
                "route result covers {} nets but the netlist has {num_nets}",
                route.net_wirelength.len()
            ),
        ));
    }
    for (i, wl) in route.net_wirelength.iter().enumerate() {
        if !wl.is_finite() || *wl < 0.0 {
            return Err(FlowError::invariant(
                Stage::Route,
                format!("net {i} has invalid routed wirelength {wl}"),
            ));
        }
    }
    if !route.total_wirelength.is_finite() || route.total_wirelength < 0.0 {
        return Err(FlowError::invariant(
            Stage::Route,
            format!("total routed wirelength {} is invalid", route.total_wirelength),
        ));
    }
    Ok(())
}

/// Convenience: asserts the error is an invariant failure at `stage`
/// (test helper used by this crate's own tests).
#[cfg(test)]
fn assert_invariant_at(e: &FlowError, stage: Stage) {
    assert_eq!(e.stage, stage);
    assert_eq!(e.kind, crate::error::FlowErrorKind::Invariant);
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_core::partition::{partition, PartitionScheme};
    use casyn_netlist::mapped::MappedCell;

    fn tiny_graph() -> SubjectGraph {
        let mut g = SubjectGraph::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let n = g.add_nand2(a, b);
        let y = g.add_inv(n);
        g.add_output("y", y);
        g
    }

    #[test]
    fn good_subject_graph_passes() {
        assert!(subject_dag(Stage::Decompose, &tiny_graph()).is_ok());
    }

    #[test]
    fn placement_bounds_catch_nan_and_escapees() {
        let fp = Floorplan { die_width: 10.0, die_height: 10.0, num_rows: 2 };
        let good = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        assert!(placement_in_bounds(Stage::Place, &good, &fp).is_ok());
        let nan = vec![Point::new(f64::NAN, 1.0)];
        assert_invariant_at(
            &placement_in_bounds(Stage::Place, &nan, &fp).unwrap_err(),
            Stage::Place,
        );
        let out = vec![Point::new(11.0, 1.0)];
        let e = placement_in_bounds(Stage::Legalize, &out, &fp).unwrap_err();
        assert_invariant_at(&e, Stage::Legalize);
        assert!(e.detail.contains("outside"));
    }

    #[test]
    fn partition_cover_passes_and_detects_loss() {
        let g = tiny_graph();
        let mut forest = partition(&g, PartitionScheme::Dagon, &[]);
        assert!(partition_covers(&g, &forest).is_ok());
        // Pretend the NAND (vertex 2) was never hosted.
        forest.host[2] = None;
        let e = partition_covers(&g, &forest).unwrap_err();
        assert_invariant_at(&e, Stage::Partition);
        assert!(e.detail.contains("not covered"));
    }

    #[test]
    fn mapped_netlist_catches_dangling_refs_and_cycles() {
        let mut nl = MappedNetlist::new();
        let a = nl.add_input("a");
        let x = nl.add_cell(MappedCell {
            lib_cell: 0,
            name: "IV".into(),
            inputs: vec![a],
            area: 1.0,
            width: 1.0,
            pos: Point::default(),
            source_tree: None,
        });
        nl.add_output("y", x);
        assert!(mapped_netlist(Stage::Map, &nl).is_ok());
        // Dangling reference.
        nl.cells_mut()[0].inputs[0] = SignalRef::Cell(7);
        let e = mapped_netlist(Stage::Map, &nl).unwrap_err();
        assert_invariant_at(&e, Stage::Map);
        assert!(e.detail.contains("cell 7"));
        // Self-loop: cell 0 reads its own output.
        nl.cells_mut()[0].inputs[0] = SignalRef::Cell(0);
        let e = mapped_netlist(Stage::Map, &nl).unwrap_err();
        assert!(e.detail.contains("cycle"));
    }

    #[test]
    fn route_completeness_requires_one_length_per_net() {
        let fp = Floorplan { die_width: 40.0, die_height: 40.0, num_rows: 4 };
        let cfg = casyn_route::RouteConfig::default();
        let nets =
            vec![vec![Point::new(1.0, 1.0), Point::new(30.0, 30.0)], vec![Point::new(5.0, 5.0)]];
        let mut r = casyn_route::route_pin_sets(&nets, &fp, &cfg).unwrap();
        assert!(route_complete(2, &r).is_ok());
        assert_invariant_at(&route_complete(3, &r).unwrap_err(), Stage::Route);
        r.net_wirelength[0] = f64::NAN;
        assert!(route_complete(2, &r).unwrap_err().detail.contains("invalid"));
    }
}
