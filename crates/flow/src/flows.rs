//! The three synthesis flows compared by the paper, plus the shared
//! front end.
//!
//! Every flow entry point returns `Result<_, FlowError>`: a stage that
//! cannot proceed reports *where* and *why* instead of panicking, so the
//! sweep/batch drivers above can retry, degrade or skip. When
//! [`FlowOptions::validate`] is set (the default in debug builds), a
//! [`crate::check`] invariant check runs at every stage boundary; a
//! [`FlowOptions::fault`] plan injects deterministic faults at the same
//! boundaries for testing the recovery machinery.

use crate::check;
use crate::error::{FlowError, FlowErrorKind, Stage};
use crate::telemetry::{FlowTelemetry, StageScope};
use casyn_core::{
    buffer_fanout, map, BufferOptions, CostKind, MapOptions, MapStats, PartitionScheme,
};
use casyn_exec::Pool;
use casyn_exec::{FaultKind, FaultPlan};
use casyn_library::{corelib018, Library};
use casyn_logic::{decompose, optimize, OptimizeOptions};
use casyn_netlist::mapped::{MappedNetlist, SignalRef};
use casyn_netlist::network::Network;
use casyn_netlist::subject::SubjectGraph;
use casyn_netlist::Point;
use casyn_place::instance::assign_mapped_ports;
use casyn_place::{legalize_rows, place_subject_pool, Floorplan, PlacerOptions};
use casyn_route::{route_mapped, RouteConfig, RouteResult};
use casyn_timing::{analyze_routed, StaResult, TimingConfig};

/// Options shared by all flows.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// The cell library (defaults to [`corelib018`]).
    pub lib: Library,
    /// Placement tuning.
    pub placer: PlacerOptions,
    /// Routing technology and negotiation parameters.
    pub route: RouteConfig,
    /// STA parameters.
    pub timing: TimingConfig,
    /// A fixed floorplan; when `None`, one is derived from the min-area
    /// cell area at `target_utilization`.
    pub floorplan: Option<Floorplan>,
    /// Target utilization used when deriving a floorplan (the paper's
    /// SPLA experiment sits at 61.1% for K = 0).
    pub target_utilization: f64,
    /// Technology-independent optimization effort (the "SIS" phase);
    /// `None` skips extraction.
    pub optimize: Option<OptimizeOptions>,
    /// Post-mapping fanout buffering (`None` = off). Splits high-fanout
    /// nets with buffer trees before legalization.
    pub buffering: Option<BufferOptions>,
    /// Run the stage-boundary invariant checks of [`crate::check`]. On by
    /// default in debug builds; the CLI's `--validate` turns it on in
    /// release.
    pub validate: bool,
    /// Deterministic fault-injection plan (testing only): fires at stage
    /// boundaries, shared across every flow run using these options.
    pub fault: Option<FaultPlan>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            lib: corelib018(),
            placer: PlacerOptions::default(),
            route: RouteConfig::default(),
            timing: TimingConfig::default(),
            floorplan: None,
            target_utilization: 0.611,
            optimize: None,
            buffering: None,
            validate: cfg!(debug_assertions),
            fault: None,
        }
    }
}

/// Fires the fault plan (if any) at a stage boundary. `Ok(true)` means a
/// corrupt-intermediate fault fired and the caller must corrupt its
/// artifact; deadline faults become typed errors here; panic faults never
/// return (they raise inside [`FaultPlan::fire`]).
pub(crate) fn fire_fault(opts: &FlowOptions, stage: Stage) -> Result<bool, FlowError> {
    let Some(plan) = &opts.fault else { return Ok(false) };
    let fired = plan.fire(stage.name());
    if let Some(kind) = &fired {
        casyn_obs::trace::instant(
            "fault.injected",
            &[
                ("stage", casyn_obs::trace::AttrValue::Str(stage.name().into())),
                ("kind", casyn_obs::trace::AttrValue::Str(format!("{kind:?}").to_lowercase())),
            ],
        );
    }
    match fired {
        None => Ok(false),
        Some(FaultKind::Corrupt) => Ok(true),
        Some(FaultKind::Deadline) => Err(FlowError::new(
            stage,
            FlowErrorKind::Deadline,
            format!("injected fault: deadline at stage {stage}"),
        )),
        Some(FaultKind::Panic) => unreachable!("panic faults raise inside FaultPlan::fire"),
        // I/O fault kinds are injected through the durable/socket seams,
        // never at flow-stage boundaries; a plan scheduling one here is a
        // no-op, matching how unknown stage names never fire
        Some(FaultKind::TornWrite | FaultKind::DiskFull | FaultKind::ConnDrop) => Ok(false),
    }
}

/// The error for a corrupt fault scheduled at a stage with no corruptor.
pub(crate) fn unsupported_corrupt(stage: Stage) -> FlowError {
    FlowError::bad_input(
        stage,
        "corrupt fault is not supported at this stage (supported: place, map, route)",
    )
}

/// The shared front end: optimized network, subject graph, initial
/// placement and floorplan. The paper stresses that "the technology
/// independent netlist and its placement are generated only once" — reuse
/// one `Prepared` across every K.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The subject graph (NAND2/INV).
    pub graph: SubjectGraph,
    /// One position per subject vertex (the initial placement).
    pub positions: Vec<Point>,
    /// The floorplan all mappings are evaluated against.
    pub floorplan: Floorplan,
    /// Base-gate count (the paper's benchmark size metric).
    pub base_gates: usize,
    /// Per-stage telemetry of the front end (optimize, decompose,
    /// floorplan, place); cloned into every [`FlowResult`] built from
    /// this preparation.
    pub telemetry: FlowTelemetry,
}

/// The outcome of a full flow on one netlist.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The mapped netlist with legalized positions.
    pub netlist: MappedNetlist,
    /// The floorplan used.
    pub floorplan: Floorplan,
    /// Total cell area (µm²) — the tables' "Cell Area".
    pub cell_area: f64,
    /// Instance count — the tables' "No. of Cells".
    pub num_cells: usize,
    /// Cell area / die area × 100 — the tables' "Area Utilization%".
    pub utilization_pct: f64,
    /// Global-routing outcome; `route.violations` is the tables'
    /// "No. of Routing violations".
    pub route: RouteResult,
    /// Static timing analysis of the routed netlist.
    pub sta: StaResult,
    /// Mapper statistics.
    pub map_stats: MapStats,
    /// Per-stage telemetry for this run (front-end stages inherited from
    /// [`Prepared`], then map/legalize/route/sta).
    pub telemetry: FlowTelemetry,
}

/// Runs the front end: optional extraction, decomposition, floorplan
/// derivation and the initial placement of the unbound netlist.
/// Placement runs serially; use [`prepare_pool`] to fan its k-way
/// refinement out on a pool.
pub fn prepare(network: &Network, opts: &FlowOptions) -> Result<Prepared, FlowError> {
    prepare_pool(network, opts, &Pool::serial())
}

/// [`prepare`] with the placement stage's parallel refinement running on
/// `pool`. The result is bit-identical to [`prepare`] for any worker
/// count — the k-way placer's region-pair jobs are pure functions of a
/// per-round snapshot, applied in deterministic pair order (and the
/// bisection backend ignores the pool entirely).
pub fn prepare_pool(
    network: &Network,
    opts: &FlowOptions,
    pool: &Pool,
) -> Result<Prepared, FlowError> {
    let mut root = casyn_obs::trace::span("prepare");
    root.attr_num("network_nodes", network.num_nodes() as f64);
    let mut telemetry = FlowTelemetry::default();
    let mut network = network.clone();
    if let Some(eff) = &opts.optimize {
        let scope = StageScope::begin("optimize");
        optimize(&mut network, eff);
        scope.end(&mut telemetry);
        if fire_fault(opts, Stage::Optimize)? {
            return Err(unsupported_corrupt(Stage::Optimize));
        }
    }
    let scope = StageScope::begin("decompose");
    let dec = decompose(&network);
    let (graph, _) = dec.graph.sweep();
    let base_gates = graph.num_gates();
    scope.end(&mut telemetry);
    if fire_fault(opts, Stage::Decompose)? {
        return Err(unsupported_corrupt(Stage::Decompose));
    }
    if opts.validate {
        check::subject_dag(Stage::Decompose, &graph)?;
    }
    telemetry.observe_live_nodes(graph.num_vertices());
    let floorplan = match opts.floorplan {
        Some(fp) => fp,
        None => {
            let scope = StageScope::begin("floorplan");
            let fp = derive_floorplan(&graph, opts);
            scope.end(&mut telemetry);
            fp
        }
    };
    if fire_fault(opts, Stage::Floorplan)? {
        return Err(unsupported_corrupt(Stage::Floorplan));
    }
    let scope = StageScope::begin("place");
    let placed = place_subject_pool(&graph, &floorplan, &opts.placer, pool);
    scope.end(&mut telemetry);
    let mut positions = placed.map_err(|e| FlowError::invariant(Stage::Place, e.to_string()))?;
    if fire_fault(opts, Stage::Place)? && !positions.is_empty() {
        let i = opts.fault.as_ref().map_or(0, |p| p.seed()) as usize % positions.len();
        positions[i] = Point::new(f64::NAN, f64::NAN);
    }
    if opts.validate {
        check::placement_in_bounds(Stage::Place, &positions, &floorplan)?;
    }
    Ok(Prepared { graph, positions, floorplan, base_gates, telemetry })
}

/// Derives a floorplan by running a throwaway min-area mapping to learn
/// the cell area, then sizing a square die at the target utilization.
fn derive_floorplan(graph: &SubjectGraph, opts: &FlowOptions) -> Floorplan {
    let dummy = vec![Point::default(); graph.num_vertices()];
    let r = map(graph, &dummy, &opts.lib, &MapOptions::default());
    Floorplan::with_area(r.netlist.cell_area() / opts.target_utilization, 1.0)
}

/// Maps a prepared design with explicit mapper options and runs
/// legalization, routing and STA.
pub fn full_flow(
    prep: &Prepared,
    map_opts: &MapOptions,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let mut root = casyn_obs::trace::span("flow");
    root.attr_str("scheme", &format!("{:?}", map_opts.scheme));
    if let CostKind::AreaWire { k } = map_opts.cost {
        root.attr_num("k", k);
    }
    let mut telemetry = prep.telemetry.clone();
    telemetry.observe_live_nodes(prep.graph.num_vertices());
    if fire_fault(opts, Stage::Partition)? {
        return Err(unsupported_corrupt(Stage::Partition));
    }
    if opts.validate {
        // the mapper partitions internally; recompute the forest to check
        // the cover before trusting the covering it produces
        let forest = casyn_core::partition(&prep.graph, map_opts.scheme, &prep.positions);
        check::partition_covers(&prep.graph, &forest)?;
    }
    let scope = StageScope::begin("map");
    let r = map(&prep.graph, &prep.positions, &opts.lib, map_opts);
    scope.end(&mut telemetry);
    let mut nl = r.netlist;
    if fire_fault(opts, Stage::Map)? && nl.num_cells() > 0 {
        // corrupt the netlist with a combinational self-loop
        let i = opts.fault.as_ref().map_or(0, |p| p.seed()) as usize % nl.num_cells();
        if !nl.cells()[i].inputs.is_empty() {
            nl.cells_mut()[i].inputs[0] = SignalRef::Cell(i as u32);
        }
    }
    if opts.validate {
        check::mapped_netlist(Stage::Map, &nl)?;
    }
    let scope = StageScope::begin("legalize");
    if let Some(buf) = &opts.buffering {
        buffer_fanout(&mut nl, &opts.lib, buf);
    }
    assign_mapped_ports(&mut nl, &prep.floorplan);
    // legalize the centre-of-mass seeds into rows
    let desired: Vec<Point> = nl.cells().iter().map(|c| c.pos).collect();
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let legal = legalize_rows(&desired, &widths, &prep.floorplan);
    for (cell, p) in nl.cells_mut().iter_mut().zip(&legal.pos) {
        cell.pos = *p;
    }
    scope.end(&mut telemetry);
    if fire_fault(opts, Stage::Legalize)? {
        return Err(unsupported_corrupt(Stage::Legalize));
    }
    if opts.validate {
        let cell_pos: Vec<Point> = nl.cells().iter().map(|c| c.pos).collect();
        check::placement_in_bounds(Stage::Legalize, &cell_pos, &prep.floorplan)?;
        check::mapped_netlist(Stage::Legalize, &nl)?;
    }
    telemetry.observe_live_nodes(nl.num_cells());
    let scope = StageScope::begin("route");
    let routed = route_mapped(&nl, &prep.floorplan, &opts.route);
    scope.end(&mut telemetry);
    let mut route = routed?;
    if fire_fault(opts, Stage::Route)? {
        // corrupt the result: drop one net's routed length
        route.net_wirelength.pop();
    }
    if opts.validate {
        check::route_complete(nl.nets().len(), &route)?;
    }
    // STA sees the congestion of the achieved routing: every net uses its
    // measured routed length, so congested nets pay their detours
    let scope = StageScope::begin("sta");
    let sta = analyze_routed(&nl, &opts.lib, &opts.timing, &route.net_wirelength);
    scope.end(&mut telemetry);
    if fire_fault(opts, Stage::Sta)? {
        return Err(unsupported_corrupt(Stage::Sta));
    }
    Ok(FlowResult {
        cell_area: nl.cell_area(),
        num_cells: nl.num_cells(),
        utilization_pct: prep.floorplan.utilization_pct(nl.cell_area()),
        route,
        sta,
        map_stats: r.stats,
        floorplan: prep.floorplan,
        netlist: nl,
        telemetry,
    })
}

/// The paper's baseline: DAGON — multi-fanout tree partitioning, minimum
/// cell area, congestion-oblivious.
pub fn dagon_flow(network: &Network, opts: &FlowOptions) -> Result<FlowResult, FlowError> {
    let prep = prepare(network, opts)?;
    full_flow(
        &prep,
        &MapOptions { scheme: PartitionScheme::Dagon, cost: CostKind::Area, ..Default::default() },
        opts,
    )
}

/// The "SIS" flow: aggressive technology-independent extraction (maximum
/// sharing, minimum literals) followed by cone-partitioned minimum-area
/// mapping. Produces the smallest cell area and the worst congestion, as
/// in the paper's Tables 1 and 2.
pub fn sis_flow(network: &Network, opts: &FlowOptions) -> Result<FlowResult, FlowError> {
    let mut o = opts.clone();
    if o.optimize.is_none() {
        o.optimize = Some(OptimizeOptions::default());
    }
    let prep = prepare(network, &o)?;
    full_flow(
        &prep,
        &MapOptions { scheme: PartitionScheme::Cone, cost: CostKind::Area, ..Default::default() },
        &o,
    )
}

/// The paper's congestion-aware flow: placement-driven partitioning and
/// `AREA + K·WIRE` covering. `K = 0` degenerates to minimum-area
/// covering (the paper's "DAGON (K = 0.0)" baseline rows).
pub fn congestion_flow(
    network: &Network,
    k: f64,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let prep = prepare(network, opts)?;
    congestion_flow_prepared(&prep, k, opts)
}

/// [`congestion_flow`] over an already-prepared design; use this to share
/// the placement across a K sweep.
pub fn congestion_flow_prepared(
    prep: &Prepared,
    k: f64,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    full_flow(
        prep,
        &MapOptions {
            scheme: PartitionScheme::PlacementDriven,
            cost: CostKind::AreaWire { k },
            ..Default::default()
        },
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_net() -> Network {
        random_pla(&PlaGenConfig {
            inputs: 10,
            outputs: 6,
            terms: 40,
            min_literals: 3,
            max_literals: 6,
            mean_outputs_per_term: 1.4,
            seed: 42,
        })
        .to_network()
    }

    #[test]
    fn full_flow_produces_consistent_result() {
        let net = small_net();
        let opts = FlowOptions::default();
        let r = congestion_flow(&net, 0.001, &opts).unwrap();
        assert_eq!(r.num_cells, r.netlist.num_cells());
        assert!((r.cell_area - r.netlist.cell_area()).abs() < 1e-9);
        assert!(r.utilization_pct > 10.0 && r.utilization_pct < 100.0);
        assert!(r.sta.critical_arrival() > 0.0);
    }

    #[test]
    fn flows_preserve_function() {
        let net = small_net();
        let opts = FlowOptions::default();
        let lib = &opts.lib;
        let mut rng = StdRng::seed_from_u64(9);
        for r in [
            dagon_flow(&net, &opts).unwrap(),
            sis_flow(&net, &opts).unwrap(),
            congestion_flow(&net, 0.005, &opts).unwrap(),
        ] {
            for _ in 0..64 {
                let asg: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
                assert_eq!(
                    net.simulate_outputs(&asg),
                    r.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg),
                    "flow output mismatch"
                );
            }
        }
    }

    #[test]
    fn sis_flow_has_smaller_area_than_dagon() {
        let net = small_net();
        let opts = FlowOptions::default();
        let sis = sis_flow(&net, &opts).unwrap();
        let dagon = dagon_flow(&net, &opts).unwrap();
        assert!(
            sis.cell_area < dagon.cell_area,
            "extraction must reduce area: sis {} vs dagon {}",
            sis.cell_area,
            dagon.cell_area
        );
    }

    #[test]
    fn shared_prepared_reuses_placement() {
        let net = small_net();
        let opts = FlowOptions::default();
        let prep = prepare(&net, &opts).unwrap();
        let a = congestion_flow_prepared(&prep, 0.0, &opts).unwrap();
        let b = congestion_flow_prepared(&prep, 0.0, &opts).unwrap();
        assert_eq!(a.num_cells, b.num_cells);
        assert_eq!(a.route.violations, b.route.violations);
    }

    #[test]
    fn larger_k_does_not_decrease_area() {
        let net = small_net();
        let opts = FlowOptions::default();
        let prep = prepare(&net, &opts).unwrap();
        let a0 = congestion_flow_prepared(&prep, 0.0, &opts).unwrap().cell_area;
        let a1 = congestion_flow_prepared(&prep, 10.0, &opts).unwrap().cell_area;
        assert!(a1 >= a0, "huge K must trade area: {a1} vs {a0}");
    }

    #[test]
    fn buffering_bounds_fanout_and_preserves_function() {
        use casyn_core::max_fanout;
        let net = small_net();
        let opts = FlowOptions {
            buffering: Some(BufferOptions { max_fanout: 12, sinks_per_buffer: 6 }),
            ..Default::default()
        };
        let r = congestion_flow(&net, 0.1, &opts).unwrap();
        assert!(max_fanout(&r.netlist) <= 12);
        let lib = &opts.lib;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..32 {
            let asg: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
            assert_eq!(
                net.simulate_outputs(&asg),
                r.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg)
            );
        }
    }

    #[test]
    fn fixed_floorplan_is_respected() {
        let net = small_net();
        let fp = Floorplan::with_rows_and_area(40, 40.0 * 6.4 * 300.0);
        let opts = FlowOptions { floorplan: Some(fp), ..Default::default() };
        let r = dagon_flow(&net, &opts).unwrap();
        assert_eq!(r.floorplan, fp);
    }

    #[test]
    fn corrupt_place_fault_is_caught_by_validation() {
        let net = small_net();
        let opts = FlowOptions {
            validate: true,
            fault: Some(FaultPlan::parse("place:corrupt:1").unwrap()),
            ..Default::default()
        };
        let e = prepare(&net, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Place, FlowErrorKind::Invariant));
        assert!(e.detail.contains("finite"), "NaN position must be named: {e}");
    }

    #[test]
    fn corrupt_map_fault_is_caught_by_validation() {
        let net = small_net();
        let opts = FlowOptions {
            validate: true,
            fault: Some(FaultPlan::parse("map:corrupt:1").unwrap()),
            ..Default::default()
        };
        let e = congestion_flow(&net, 0.0, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Map, FlowErrorKind::Invariant));
    }

    #[test]
    fn corrupt_route_fault_is_caught_by_validation() {
        let net = small_net();
        let opts = FlowOptions {
            validate: true,
            fault: Some(FaultPlan::parse("route:corrupt:1").unwrap()),
            ..Default::default()
        };
        let e = congestion_flow(&net, 0.0, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Route, FlowErrorKind::Invariant));
        assert!(e.detail.contains("nets"));
    }

    #[test]
    fn deadline_fault_is_typed_not_a_panic() {
        let net = small_net();
        let opts = FlowOptions {
            fault: Some(FaultPlan::parse("decompose:deadline:1").unwrap()),
            ..Default::default()
        };
        let e = prepare(&net, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Decompose, FlowErrorKind::Deadline));
    }

    #[test]
    fn unsupported_corrupt_stage_reports_bad_input() {
        let net = small_net();
        let opts = FlowOptions {
            fault: Some(FaultPlan::parse("sta:corrupt:1").unwrap()),
            ..Default::default()
        };
        let e = congestion_flow(&net, 0.0, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Sta, FlowErrorKind::BadInput));
    }

    #[test]
    fn nth_occurrence_counts_across_runs_of_one_plan() {
        // the second flow sharing the plan trips the nth=2 fault; the
        // first passes — the retry semantics batch recovery relies on
        let net = small_net();
        let plan = FaultPlan::parse("route:deadline:2").unwrap();
        let opts = FlowOptions { fault: Some(plan), ..Default::default() };
        assert!(congestion_flow(&net, 0.0, &opts).is_ok());
        let e = congestion_flow(&net, 0.0, &opts).unwrap_err();
        assert_eq!(e.kind, FlowErrorKind::Deadline);
    }
}
