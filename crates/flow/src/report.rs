//! Table formatting mirroring the paper's layout.

use crate::flows::FlowResult;
use crate::sweep::KSweepEntry;
use crate::telemetry::FlowTelemetry;

/// Formats a K-sweep as the paper's Table 2/4 layout, extended with the
/// router's convergence columns:
/// `K | Cell Area (µm²) | No. of Cells | Area Utilization% | No. of
/// Routing violations | Route iters | Overflow | Ovfl edges`.
pub fn format_k_sweep_table(title: &str, rows: &[KSweepEntry]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>10}  {:>14}  {:>12}  {:>18}  {:>22}  {:>11}  {:>10}  {:>10}\n",
        "K",
        "Cell Area (um2)",
        "No. of Cells",
        "Area Utilization%",
        "No. of Routing viol.",
        "Route iters",
        "Overflow",
        "Ovfl edges"
    ));
    for row in rows {
        let r = &row.result;
        s.push_str(&format!(
            "{:>10}  {:>14.0}  {:>12}  {:>18.2}  {:>22}  {:>11}  {:>10.1}  {:>10}\n",
            trim_k(row.k),
            r.cell_area,
            r.num_cells,
            r.utilization_pct,
            r.route.violations,
            r.route.iterations,
            r.route.overflow,
            r.route.overflowed_edges
        ));
    }
    s
}

/// Formats named flow results as the paper's Table 1 layout, extended
/// with the router's convergence columns:
/// `flow | Cell Area | No. of Rows | Area Utilization% | Routing
/// violations | Route iters | Overflow | Ovfl edges`.
pub fn format_routing_table(title: &str, rows: &[(&str, &FlowResult)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8}  {:>14}  {:>12}  {:>18}  {:>22}  {:>11}  {:>10}  {:>10}\n",
        "",
        "Cell Area (um2)",
        "No. of Rows",
        "Area Utilization%",
        "No. of Routing viol.",
        "Route iters",
        "Overflow",
        "Ovfl edges"
    ));
    for (name, r) in rows {
        s.push_str(&format!(
            "{:>8}  {:>14.0}  {:>12}  {:>18.2}  {:>22}  {:>11}  {:>10.1}  {:>10}\n",
            name,
            r.cell_area,
            r.floorplan.num_rows,
            r.utilization_pct,
            r.route.violations,
            r.route.iterations,
            r.route.overflow,
            r.route.overflowed_edges
        ));
    }
    s
}

/// Formats per-stage telemetry as a table: one line per stage with its
/// wall clock, allocator traffic (allocated / peak live, in KiB; zeros
/// when the `alloc-track` feature is off or obs is disabled), and the
/// metrics it moved (`key=value`, space-separated).
pub fn format_telemetry_table(title: &str, t: &FlowTelemetry) -> String {
    let kib = |b: u64| b as f64 / 1024.0;
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>10}  {:>10}  {:>11}  {:>10}  metrics\n",
        "stage", "wall ms", "alloc KiB", "peak KiB"
    ));
    for stage in &t.stages {
        let metrics = stage
            .metrics
            .iter()
            .map(|(k, v)| format!("{k}={}", casyn_obs::json::fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(" ");
        s.push_str(&format!(
            "{:>10}  {:>10.3}  {:>11.1}  {:>10.1}  {}\n",
            stage.stage,
            stage.wall_ms,
            kib(stage.alloc_bytes),
            kib(stage.peak_bytes),
            metrics
        ));
    }
    s.push_str(&format!(
        "{:>10}  {:>10.3}  {:>11}  {:>10.1}  peak_live_nodes={}\n",
        "total",
        t.total_ms,
        "",
        kib(t.peak_alloc_bytes),
        t.peak_live_nodes
    ));
    s
}

/// Formats STA comparisons as the paper's Table 3/5 layout:
/// `flow | Critical Path + Arrival | Chip Area / rows`.
pub fn format_sta_table(title: &str, rows: &[(&str, &FlowResult)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8}  {:>34}  {:>14}  {:>20}\n",
        "", "Critical Path (arrival ns)", "Chip Area (um2)", "No. of rows"
    ));
    for (name, r) in rows {
        s.push_str(&format!(
            "{:>8}  {:>24} {:>9.2}  {:>14.0}  {:>20}\n",
            name,
            r.sta.critical_endpoints(),
            r.sta.critical_arrival(),
            r.floorplan.die_area(),
            r.floorplan.num_rows
        ));
    }
    s
}

fn trim_k(k: f64) -> String {
    if k == 0.0 {
        "0.0".to_string()
    } else {
        format!("{k}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{congestion_flow, FlowOptions};
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn one_result() -> FlowResult {
        let net = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 16,
            min_literals: 2,
            max_literals: 4,
            mean_outputs_per_term: 1.3,
            seed: 3,
        })
        .to_network();
        congestion_flow(&net, 0.001, &FlowOptions::default()).unwrap()
    }

    #[test]
    fn k_sweep_table_has_header_and_rows() {
        let r = one_result();
        let rows = vec![KSweepEntry { k: 0.001, result: r }];
        let s = format_k_sweep_table("Table 2. test", &rows);
        assert!(s.contains("Table 2. test"));
        assert!(s.contains("Cell Area"));
        assert!(s.lines().count() == 3);
        assert!(s.contains("0.001"));
    }

    #[test]
    fn routing_and_sta_tables_render() {
        let r = one_result();
        let t1 = format_routing_table("Table 1", &[("SIS", &r), ("DAGON", &r)]);
        assert!(t1.contains("SIS") && t1.contains("DAGON"));
        assert_eq!(t1.lines().count(), 4);
        let t3 = format_sta_table("Table 3", &[("0.0", &r)]);
        assert!(t3.contains("(in)") && t3.contains("(out)"));
    }

    #[test]
    fn telemetry_table_lists_stages_and_total() {
        let r = one_result();
        let s = format_telemetry_table("Telemetry", &r.telemetry);
        assert!(s.contains("Telemetry"));
        assert!(s.contains("wall ms"));
        assert!(s.contains("peak KiB"));
        for stage in ["decompose", "place", "map", "route", "sta"] {
            assert!(s.contains(stage), "missing stage {stage} in:\n{s}");
        }
        assert!(s.contains("peak_live_nodes="));
    }

    #[test]
    fn k_formatting() {
        assert_eq!(trim_k(0.0), "0.0");
        assert_eq!(trim_k(0.0001), "0.0001");
        assert_eq!(trim_k(1.0), "1");
    }
}
