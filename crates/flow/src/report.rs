//! Table formatting mirroring the paper's layout.

use crate::flows::FlowResult;
use crate::sweep::KSweepEntry;
use crate::telemetry::FlowTelemetry;
use casyn_obs::json::JsonValue;
use casyn_route::{CongestionMap, OverflowAudit, RouteConvergence};

/// Formats a K-sweep as the paper's Table 2/4 layout, extended with the
/// router's convergence columns:
/// `K | Cell Area (µm²) | No. of Cells | Area Utilization% | No. of
/// Routing violations | Route iters | Overflow | Ovfl edges`.
pub fn format_k_sweep_table(title: &str, rows: &[KSweepEntry]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>10}  {:>14}  {:>12}  {:>18}  {:>22}  {:>11}  {:>10}  {:>10}\n",
        "K",
        "Cell Area (um2)",
        "No. of Cells",
        "Area Utilization%",
        "No. of Routing viol.",
        "Route iters",
        "Overflow",
        "Ovfl edges"
    ));
    for row in rows {
        let r = &row.result;
        s.push_str(&format!(
            "{:>10}  {:>14.0}  {:>12}  {:>18.2}  {:>22}  {:>11}  {:>10.1}  {:>10}\n",
            trim_k(row.k),
            r.cell_area,
            r.num_cells,
            r.utilization_pct,
            r.route.violations,
            r.route.iterations,
            r.route.overflow,
            r.route.overflowed_edges
        ));
    }
    s
}

/// Formats named flow results as the paper's Table 1 layout, extended
/// with the router's convergence columns:
/// `flow | Cell Area | No. of Rows | Area Utilization% | Routing
/// violations | Route iters | Overflow | Ovfl edges`.
pub fn format_routing_table(title: &str, rows: &[(&str, &FlowResult)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8}  {:>14}  {:>12}  {:>18}  {:>22}  {:>11}  {:>10}  {:>10}\n",
        "",
        "Cell Area (um2)",
        "No. of Rows",
        "Area Utilization%",
        "No. of Routing viol.",
        "Route iters",
        "Overflow",
        "Ovfl edges"
    ));
    for (name, r) in rows {
        s.push_str(&format!(
            "{:>8}  {:>14.0}  {:>12}  {:>18.2}  {:>22}  {:>11}  {:>10.1}  {:>10}\n",
            name,
            r.cell_area,
            r.floorplan.num_rows,
            r.utilization_pct,
            r.route.violations,
            r.route.iterations,
            r.route.overflow,
            r.route.overflowed_edges
        ));
    }
    s
}

/// Formats per-stage telemetry as a table: one line per stage with its
/// wall clock, allocator traffic (allocated / peak live, in KiB; zeros
/// when the `alloc-track` feature is off or obs is disabled), and the
/// metrics it moved (`key=value`, space-separated).
pub fn format_telemetry_table(title: &str, t: &FlowTelemetry) -> String {
    let kib = |b: u64| b as f64 / 1024.0;
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>10}  {:>10}  {:>11}  {:>10}  metrics\n",
        "stage", "wall ms", "alloc KiB", "peak KiB"
    ));
    for stage in &t.stages {
        let metrics = stage
            .metrics
            .iter()
            .map(|(k, v)| format!("{k}={}", casyn_obs::json::fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(" ");
        s.push_str(&format!(
            "{:>10}  {:>10.3}  {:>11.1}  {:>10.1}  {}\n",
            stage.stage,
            stage.wall_ms,
            kib(stage.alloc_bytes),
            kib(stage.peak_bytes),
            metrics
        ));
    }
    s.push_str(&format!(
        "{:>10}  {:>10.3}  {:>11}  {:>10.1}  peak_live_nodes={}\n",
        "total",
        t.total_ms,
        "",
        kib(t.peak_alloc_bytes),
        t.peak_live_nodes
    ));
    s
}

/// Formats STA comparisons as the paper's Table 3/5 layout:
/// `flow | Critical Path + Arrival | Chip Area / rows`.
pub fn format_sta_table(title: &str, rows: &[(&str, &FlowResult)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8}  {:>34}  {:>14}  {:>20}\n",
        "", "Critical Path (arrival ns)", "Chip Area (um2)", "No. of rows"
    ));
    for (name, r) in rows {
        s.push_str(&format!(
            "{:>8}  {:>24} {:>9.2}  {:>14.0}  {:>20}\n",
            name,
            r.sta.critical_endpoints(),
            r.sta.critical_arrival(),
            r.floorplan.die_area(),
            r.floorplan.num_rows
        ));
    }
    s
}

/// Formats the overflow-attribution report as a table of the `top`
/// offender nets:
/// `net | driver | tree | demand | share% | boundaries | bbox`.
/// Returns a one-line all-clear when the audit is empty.
pub fn format_audit_table(title: &str, audit: &OverflowAudit, top: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    if audit.is_clean() {
        s.push_str("no overflowed boundaries\n");
        return s;
    }
    s.push_str(&format!(
        "overflow {:.1} track-segments over {} boundaries\n",
        audit.total_overflow,
        audit.boundaries.len()
    ));
    s.push_str(&format!(
        "{:>6}  {:>16}  {:>6}  {:>8}  {:>7}  {:>10}  bbox (gcells)\n",
        "net", "driver", "tree", "demand", "share%", "boundaries"
    ));
    for o in audit.offenders.iter().take(top) {
        let tree = o.tree.map_or("-".to_string(), |t| t.to_string());
        s.push_str(&format!(
            "{:>6}  {:>16}  {:>6}  {:>8.1}  {:>7.1}  {:>10}  ({}, {})-({}, {})\n",
            o.net,
            o.label,
            tree,
            o.demand,
            100.0 * o.share,
            o.boundaries,
            o.bbox.0,
            o.bbox.1,
            o.bbox.2,
            o.bbox.3
        ));
    }
    if audit.offenders.len() > top {
        s.push_str(&format!("... and {} more nets\n", audit.offenders.len() - top));
    }
    s
}

/// Renders the router's overflow trajectory as a one-line Unicode
/// sparkline (scaled to the series maximum) followed by a summary:
///
/// ```text
/// route convergence: █▆▅▃▂▁▁ (7 iters, overflow 42.0 -> 0.0)
/// ```
pub fn format_convergence_sparkline(conv: &RouteConvergence) -> String {
    let series = conv.overflow_series();
    if series.is_empty() {
        return "route convergence: (no iterations)\n".to_string();
    }
    format!(
        "route convergence: {} ({} iters, overflow {:.1} -> {:.1})\n",
        format_sparkline(&series),
        series.len(),
        series.first().copied().unwrap_or(0.0),
        series.last().copied().unwrap_or(0.0)
    )
}

/// Renders any numeric series as a one-line Unicode sparkline scaled to
/// the series maximum (an all-zero series renders as a flat baseline).
/// Shared by the convergence report above and the `casyn top` live
/// dashboard.
pub fn format_sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().fold(0.0f64, |a, &b| a.max(b));
    series
        .iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() || v <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a congestion map as a bordered ASCII heatmap with the legend
/// of [`CongestionMap`]'s `Display` impl (`.` < 50%, `-` < 80%, `+` <
/// 100%, `#` ≥ 100%), so the CLI can print the Fig. 3 artifact directly.
pub fn format_congestion_heatmap(title: &str, map: &CongestionMap) -> String {
    let body = format!("{map}");
    let width = map.nx();
    let mut s = String::new();
    s.push_str(&format!(
        "{title} ({}x{} gcells, max util {:.0}%, legend . <50% - <80% + <100% # >=100%)\n",
        map.nx(),
        map.ny(),
        100.0 * map.max_util()
    ));
    s.push_str(&format!("+{}+\n", "-".repeat(width)));
    for line in body.lines() {
        s.push_str(&format!("|{line}|\n"));
    }
    s.push_str(&format!("+{}+\n", "-".repeat(width)));
    s
}

/// Serializes one K-sweep row as the JSON shape shared by the CLI's
/// `casyn.batch.v1` reports and the serve job API: quality metrics plus
/// the row's stage telemetry.
pub fn k_row_json(e: &KSweepEntry) -> JsonValue {
    JsonValue::object(vec![
        ("k".into(), JsonValue::Number(e.k)),
        ("cell_area".into(), JsonValue::Number(e.result.cell_area)),
        ("num_cells".into(), JsonValue::Number(e.result.num_cells as f64)),
        ("utilization_pct".into(), JsonValue::Number(e.result.utilization_pct)),
        ("violations".into(), JsonValue::Number(e.result.route.violations as f64)),
        ("wirelength_um".into(), JsonValue::Number(e.result.route.total_wirelength)),
        ("critical_ns".into(), JsonValue::Number(e.result.sta.critical_arrival())),
        ("telemetry".into(), e.result.telemetry.to_json()),
    ])
}

fn trim_k(k: f64) -> String {
    if k == 0.0 {
        "0.0".to_string()
    } else {
        format!("{k}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{congestion_flow, FlowOptions};
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn one_result() -> FlowResult {
        let net = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 16,
            min_literals: 2,
            max_literals: 4,
            mean_outputs_per_term: 1.3,
            seed: 3,
        })
        .to_network();
        congestion_flow(&net, 0.001, &FlowOptions::default()).unwrap()
    }

    #[test]
    fn k_sweep_table_has_header_and_rows() {
        let r = one_result();
        let rows = vec![KSweepEntry { k: 0.001, result: r }];
        let s = format_k_sweep_table("Table 2. test", &rows);
        assert!(s.contains("Table 2. test"));
        assert!(s.contains("Cell Area"));
        assert!(s.lines().count() == 3);
        assert!(s.contains("0.001"));
    }

    #[test]
    fn routing_and_sta_tables_render() {
        let r = one_result();
        let t1 = format_routing_table("Table 1", &[("SIS", &r), ("DAGON", &r)]);
        assert!(t1.contains("SIS") && t1.contains("DAGON"));
        assert_eq!(t1.lines().count(), 4);
        let t3 = format_sta_table("Table 3", &[("0.0", &r)]);
        assert!(t3.contains("(in)") && t3.contains("(out)"));
    }

    #[test]
    fn telemetry_table_lists_stages_and_total() {
        let r = one_result();
        let s = format_telemetry_table("Telemetry", &r.telemetry);
        assert!(s.contains("Telemetry"));
        assert!(s.contains("wall ms"));
        assert!(s.contains("peak KiB"));
        for stage in ["decompose", "place", "map", "route", "sta"] {
            assert!(s.contains(stage), "missing stage {stage} in:\n{s}");
        }
        assert!(s.contains("peak_live_nodes="));
    }

    #[test]
    fn k_formatting() {
        assert_eq!(trim_k(0.0), "0.0");
        assert_eq!(trim_k(0.0001), "0.0001");
        assert_eq!(trim_k(1.0), "1");
    }

    #[test]
    fn audit_table_renders_offenders_or_all_clear() {
        let r = one_result();
        let s = format_audit_table("Audit", &r.route.audit, 8);
        assert!(s.starts_with("Audit\n"));
        if r.route.audit.is_clean() {
            assert!(s.contains("no overflowed boundaries"));
        } else {
            assert!(s.contains("driver") && s.contains("share%"));
        }
        // congested pin-set route: offenders must show up
        use casyn_netlist::Point;
        use casyn_route::{route_pin_sets, RouteConfig};
        let fp = casyn_place::Floorplan::with_rows_and_area(3, (3.0 * 6.4) * (8.0 * 6.4));
        let nets: Vec<Vec<Point>> = (0..40)
            .map(|i| {
                let y = 3.2 + 6.4 * ((i % 3) as f64);
                vec![Point::new(3.2, y), Point::new(3.2 + 6.4 * 6.0, y)]
            })
            .collect();
        let cfg = RouteConfig { max_iters: 10, ..Default::default() };
        let rr = route_pin_sets(&nets, &fp, &cfg).unwrap();
        let s = format_audit_table("Audit", &rr.audit, 4);
        assert!(s.contains("net0") || s.contains("net"), "{s}");
        assert!(s.contains("boundaries"));
        assert!(s.contains("... and"), "40 offenders truncated to 4:\n{s}");
    }

    #[test]
    fn sparkline_tracks_series_length() {
        let r = one_result();
        let s = format_convergence_sparkline(&r.route.convergence);
        assert!(s.contains("route convergence:"));
        assert!(s.contains(&format!("({} iters", r.route.iterations)));
        let empty = format_convergence_sparkline(&Default::default());
        assert!(empty.contains("no iterations"));
    }

    #[test]
    fn heatmap_frame_matches_grid_width() {
        let r = one_result();
        let s = format_congestion_heatmap("Congestion", &r.route.congestion);
        let nx = r.route.congestion.nx();
        assert!(s.contains("legend"));
        let border = format!("+{}+", "-".repeat(nx));
        assert_eq!(s.matches(&border).count(), 2, "{s}");
        assert_eq!(s.lines().count(), 3 + r.route.congestion.ny());
    }
}
