//! Durable file I/O: atomic replace, checksummed payloads and an
//! append-only NDJSON write-ahead log.
//!
//! Every casyn artifact that must survive a crash goes through this
//! module, with one discipline per shape:
//!
//! * **Whole files** ([`write_atomic`]) are written to a `.tmp` sibling,
//!   fsynced, then renamed over the target (and the directory fsynced
//!   best-effort), so a reader never observes a half-written file — the
//!   checkpoint writer, the run ledger and the serve disk cache all
//!   share this path.
//! * **Checksummed files** ([`write_checksummed`] / [`read_checksummed`])
//!   add an FNV-1a trailer line over the payload. The hash is the same
//!   `fnv1a64` that builds content keys, so a cache file's integrity
//!   check and its address derive from one canonical byte hash.
//! * **Journals** ([`Wal`]) are append-only NDJSON: each record is a
//!   JSON object carrying its own `sum` checksum field, appended with a
//!   single `write` + `fdatasync`. Rename-style atomicity is impossible
//!   for appends, so torn tails are *expected*: [`Wal::replay`]
//!   tolerates an unterminated (or checksum-failing) final line and
//!   replays cleanly to the previous record, while damage anywhere
//!   before the tail is a typed, line-numbered [`DurableError`] — never
//!   a panic, never a silently dropped record.
//!
//! Fault injection: writers accept an optional
//! [`casyn_exec::FaultPlan`] and arm it with a caller-chosen stage name
//! (`"wal"`, `"cache"`, ...). A scheduled `torn_write` cuts the write
//! short mid-record and wedges the journal (no further appends — the
//! file tail is in an unknown state, exactly like a real crash); a
//! `disk_full` fails the write cleanly. Both make crash-recovery paths
//! testable in-tree with zero wall-clock or randomness.

use crate::content_key::fnv1a64;
use casyn_exec::{FaultKind, FaultPlan};
use casyn_obs::json::JsonValue;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Schema tag of the write-ahead log header record.
pub const WAL_SCHEMA: &str = "casyn.wal.v1";

/// How durable I/O fails: plain I/O errors, or typed corruption that
/// names exactly where the damage is.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem error.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The failing operation's error.
        source: io::Error,
    },
    /// A journal line before the tail failed to parse or verify.
    BadRecord {
        /// 1-based line number of the damaged record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal's first record does not carry the expected schema.
    Schema {
        /// What the header actually said (empty when absent).
        found: String,
    },
    /// A checksummed file's trailer does not match its payload.
    Checksum {
        /// The file involved.
        path: PathBuf,
        /// Hash recorded in the trailer.
        expected: String,
        /// Hash of the payload as read.
        actual: String,
    },
    /// A checksummed file has no `#fnv1a` trailer line at all
    /// (truncated, or never written by this module).
    MissingTrailer {
        /// The file involved.
        path: PathBuf,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            DurableError::BadRecord { line, reason } => {
                write!(f, "journal line {line}: {reason}")
            }
            DurableError::Schema { found } if found.is_empty() => {
                write!(f, "journal has no {WAL_SCHEMA} header record")
            }
            DurableError::Schema { found } => {
                write!(f, "journal schema is {found:?}, expected {WAL_SCHEMA:?}")
            }
            DurableError::Checksum { path, expected, actual } => {
                write!(
                    f,
                    "{}: checksum mismatch (trailer {expected}, payload {actual})",
                    path.display()
                )
            }
            DurableError::MissingTrailer { path } => {
                write!(f, "{}: no #fnv1a trailer (truncated or foreign file)", path.display())
            }
        }
    }
}

impl std::error::Error for DurableError {}

fn io_err(path: &Path, source: io::Error) -> DurableError {
    DurableError::Io { path: path.to_path_buf(), source }
}

/// Arms `fault` at `stage` and translates a scheduled I/O kind into its
/// effect: `DiskFull` yields an error to return, `TornWrite` yields the
/// number of bytes to actually write (half the record, cut mid-byte
/// stream). Non-I/O kinds scheduled on an I/O stage are ignored.
fn armed_io_fault(
    fault: Option<(&FaultPlan, &str)>,
    len: usize,
) -> Result<Option<usize>, io::Error> {
    let Some((plan, stage)) = fault else { return Ok(None) };
    match plan.fire(stage) {
        Some(FaultKind::DiskFull) => {
            Err(io::Error::other(format!("injected disk_full at {stage}")))
        }
        Some(FaultKind::TornWrite) => Ok(Some(len / 2)),
        _ => Ok(None),
    }
}

/// Fsyncs `path`'s parent directory so a just-renamed entry survives a
/// crash. Best-effort: directory handles cannot be opened for sync on
/// every platform, and a failure here never outranks the completed
/// rename.
fn sync_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Atomically replaces `path` with `bytes`: write to a `.tmp` sibling,
/// fsync, rename over the target, fsync the directory. A reader (or a
/// crash at any point) sees either the old content or the new — never a
/// prefix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_faulted(path, bytes, None)
}

/// [`write_atomic`] with a fault-injection seam: a scheduled
/// `disk_full` fails before any bytes land; a scheduled `torn_write`
/// leaves a half-written `.tmp` sibling and fails *without renaming* —
/// which is exactly what a real mid-write crash leaves behind.
pub fn write_atomic_faulted(
    path: &Path,
    bytes: &[u8],
    fault: Option<(&FaultPlan, &str)>,
) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    let cut = armed_io_fault(fault, bytes.len())?;
    let mut f = File::create(&tmp)?;
    if let Some(n) = cut {
        let _ = f.write_all(&bytes[..n]);
        return Err(io::Error::other(format!(
            "injected torn_write after {n} of {} bytes",
            bytes.len()
        )));
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    sync_dir(path);
    Ok(())
}

/// The trailer-line prefix of a checksummed file.
const TRAILER_PREFIX: &str = "#fnv1a:";

/// Atomically writes `payload` plus an FNV-1a trailer line
/// (`#fnv1a:<16 hex>`), hashing exactly the payload bytes as written
/// (including the newline this function appends when the payload lacks
/// one).
pub fn write_checksummed(
    path: &Path,
    payload: &str,
    fault: Option<(&FaultPlan, &str)>,
) -> io::Result<()> {
    let mut bytes = payload.as_bytes().to_vec();
    if !bytes.ends_with(b"\n") {
        bytes.push(b'\n');
    }
    let sum = fnv1a64(&bytes);
    let trailer = format!("{TRAILER_PREFIX}{sum:016x}\n");
    bytes.extend_from_slice(trailer.as_bytes());
    write_atomic_faulted(path, &bytes, fault)
}

/// Reads a [`write_checksummed`] file back, verifying the trailer.
/// Returns the payload (with its trailing newline). A missing trailer
/// or a hash mismatch is a typed error — the caller decides whether to
/// quarantine, recompute, or abort; this function never returns
/// unverified bytes.
pub fn read_checksummed(path: &Path) -> Result<String, DurableError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let Some(trailer_at) = text.rfind(TRAILER_PREFIX) else {
        return Err(DurableError::MissingTrailer { path: path.to_path_buf() });
    };
    // the trailer must start a line of its own
    if trailer_at > 0 && text.as_bytes()[trailer_at - 1] != b'\n' {
        return Err(DurableError::MissingTrailer { path: path.to_path_buf() });
    }
    let payload = &text[..trailer_at];
    let expected = text[trailer_at + TRAILER_PREFIX.len()..].trim_end();
    let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
    if actual != expected {
        return Err(DurableError::Checksum {
            path: path.to_path_buf(),
            expected: expected.to_string(),
            actual,
        });
    }
    Ok(payload.to_string())
}

/// The checksum field appended to every journal record.
const SUM_FIELD: &str = "sum";

/// Serializes `rec` (without any `sum` field) and returns the line that
/// goes on disk: the compact object with a `sum` field appended, hashed
/// over the compact serialization *without* it.
fn seal_record(rec: &JsonValue) -> Result<String, String> {
    let JsonValue::Object(entries) = rec else {
        return Err("journal records must be JSON objects".into());
    };
    if entries.iter().any(|(k, _)| k == SUM_FIELD) {
        return Err(format!("journal records must not carry a {SUM_FIELD:?} field"));
    }
    let body = rec.to_string_compact();
    let sum = fnv1a64(body.as_bytes());
    let mut sealed = entries.clone();
    sealed.push((SUM_FIELD.into(), JsonValue::Str(format!("{sum:016x}"))));
    Ok(JsonValue::Object(sealed).to_string_compact())
}

/// Parses and verifies one journal line, returning the record without
/// its `sum` field. `Err` is the human-readable reason.
fn open_record(line: &str) -> Result<JsonValue, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let JsonValue::Object(mut entries) = doc else {
        return Err("record is not a JSON object".into());
    };
    let at = entries
        .iter()
        .position(|(k, _)| k == SUM_FIELD)
        .ok_or_else(|| format!("record has no {SUM_FIELD:?} field"))?;
    let (_, sum) = entries.remove(at);
    let expected = sum.as_str().ok_or_else(|| format!("{SUM_FIELD:?} is not a string"))?;
    let body = JsonValue::Object(entries.clone()).to_string_compact();
    let actual = format!("{:016x}", fnv1a64(body.as_bytes()));
    if actual != expected {
        return Err(format!("checksum mismatch (recorded {expected}, computed {actual})"));
    }
    Ok(JsonValue::Object(entries))
}

/// An append-only, checksummed NDJSON write-ahead log.
///
/// Opening creates the file (with a schema header record) when absent
/// and appends to it when present — a restarted server keeps journaling
/// into the same file it just replayed. Every append is a single write
/// followed by `fdatasync`; a failed append (real or injected) leaves
/// the tail in an unknown state, so the journal *wedges*: further
/// appends are refused and the next replay falls back to the last
/// intact record.
pub struct Wal {
    path: PathBuf,
    file: File,
    wedged: bool,
    fault: Option<FaultPlan>,
}

/// What [`Wal::replay`] recovered.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record after the schema header, in append order,
    /// `sum` fields stripped.
    pub records: Vec<JsonValue>,
    /// True when the file ended in a torn (unterminated or
    /// checksum-failing) final line that was dropped.
    pub torn_tail: bool,
}

impl Wal {
    /// Opens (or creates) the journal at `path` for appending. A fresh
    /// file gets a `casyn.wal.v1` header record immediately, so even an
    /// empty journal replays with a verified schema.
    pub fn open(path: &Path, fault: Option<FaultPlan>) -> Result<Wal, DurableError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        let fresh = !path.exists();
        let file =
            OpenOptions::new().create(true).append(true).open(path).map_err(|e| io_err(path, e))?;
        let mut wal = Wal { path: path.to_path_buf(), file, wedged: false, fault };
        if fresh {
            wal.write_header().map_err(|e| io_err(path, e))?;
        } else {
            wal.repair_tail().map_err(|e| io_err(path, e))?;
        }
        Ok(wal)
    }

    fn write_header(&mut self) -> io::Result<()> {
        let header = JsonValue::object(vec![("schema".into(), JsonValue::Str(WAL_SCHEMA.into()))]);
        // the header is never faulted: a journal that cannot even
        // record its schema is unusable, surface that immediately
        let line = seal_record(&header).expect("header is a plain object");
        self.append_line(&line, false)
    }

    /// Repairs the tail of an existing journal before appending to it.
    /// A crash can leave a torn final line; appending past it would turn
    /// a tail replay tolerates into fatal mid-file corruption. A damaged
    /// final line is truncated away; an intact-but-unterminated one (the
    /// crash cut exactly the newline) gets its newline back — replay
    /// counts that record, so it must not be dropped.
    fn repair_tail(&mut self) -> io::Result<()> {
        let bytes = fs::read(&self.path)?;
        if bytes.is_empty() {
            return self.write_header();
        }
        let terminated = bytes.last() == Some(&b'\n');
        let body_end = if terminated { bytes.len() - 1 } else { bytes.len() };
        let line_start =
            bytes[..body_end].iter().rposition(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
        let line = String::from_utf8_lossy(&bytes[line_start..body_end]).into_owned();
        match (open_record(&line).is_ok(), terminated) {
            (true, true) => Ok(()),
            (true, false) => {
                self.file.write_all(b"\n")?;
                self.file.sync_data()
            }
            (false, _) => {
                self.file.set_len(line_start as u64)?;
                self.file.sync_data()?;
                if line_start == 0 {
                    // the damaged line was the header: re-seed the
                    // journal so replay still finds its schema record
                    self.write_header()?;
                }
                Ok(())
            }
        }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True once a failed append has wedged the journal.
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// Appends one record (a JSON object; a `sum` checksum field is
    /// added on the way out) and fsyncs it. After any failure the
    /// journal is wedged and every later append fails fast — the file
    /// tail is in an unknown state and must not be appended past.
    pub fn append(&mut self, rec: &JsonValue) -> io::Result<()> {
        let line = seal_record(rec).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.append_line(&line, true)
    }

    fn append_line(&mut self, line: &str, faultable: bool) -> io::Result<()> {
        if self.wedged {
            return Err(io::Error::other("journal is wedged after a failed append"));
        }
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        let fault = if faultable { self.fault.as_ref().map(|p| (p, "wal")) } else { None };
        // disk_full propagates here without wedging: nothing was
        // written, the tail is still intact
        let cut = armed_io_fault(fault, bytes.len())?;
        if let Some(n) = cut {
            let _ = self.file.write_all(&bytes[..n]);
            let _ = self.file.sync_data();
            self.wedged = true;
            return Err(io::Error::other(format!(
                "injected torn_write after {n} of {} bytes",
                bytes.len()
            )));
        }
        if let Err(e) = self.file.write_all(&bytes).and_then(|()| self.file.sync_data()) {
            self.wedged = true;
            return Err(e);
        }
        Ok(())
    }

    /// Replays the journal at `path`. A missing file is an empty
    /// journal. The final line may be torn (crash mid-append) and is
    /// dropped; any damaged record *before* the tail is a typed,
    /// line-numbered error, because dropping it would silently rewrite
    /// history.
    pub fn replay(path: &Path) -> Result<WalReplay, DurableError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(WalReplay { records: Vec::new(), torn_tail: false })
            }
            Err(e) => return Err(io_err(path, e)),
        };
        let terminated = bytes.ends_with(b"\n");
        let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        // split() yields a trailing empty slice when the file ends in \n
        let n_lines = if terminated { lines.len() - 1 } else { lines.len() };
        let mut records = Vec::new();
        let mut torn_tail = false;
        let mut saw_header = false;
        for (i, raw) in lines.iter().take(n_lines).enumerate() {
            let last = i + 1 == n_lines;
            let parsed = std::str::from_utf8(raw)
                .map_err(|e| format!("not UTF-8: {e}"))
                .and_then(open_record);
            let rec = match parsed {
                Ok(rec) => rec,
                Err(_) if last && !terminated => {
                    // crash mid-append: the unterminated tail is expected
                    // damage, replay stops at the previous record
                    torn_tail = true;
                    break;
                }
                Err(reason) => return Err(DurableError::BadRecord { line: i + 1, reason }),
            };
            if !saw_header {
                let found = rec.get("schema").and_then(|v| v.as_str()).unwrap_or("");
                if found != WAL_SCHEMA {
                    return Err(DurableError::Schema { found: found.to_string() });
                }
                saw_header = true;
                continue;
            }
            records.push(rec);
        }
        if n_lines > 0 && !saw_header && !torn_tail {
            return Err(DurableError::Schema { found: String::new() });
        }
        Ok(WalReplay { records, torn_tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("casyn-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(t: &str, n: f64) -> JsonValue {
        JsonValue::object(vec![
            ("t".into(), JsonValue::Str(t.into())),
            ("n".into(), JsonValue::Number(n)),
        ])
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = tmpdir("atomic");
        let p = dir.join("x.json");
        write_atomic(&p, b"one").unwrap();
        write_atomic(&p, b"two").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "two");
        let n = fs::read_dir(&dir).unwrap().count();
        assert_eq!(n, 1, "no .tmp sibling left behind");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksummed_round_trip_and_corruption() {
        let dir = tmpdir("sum");
        let p = dir.join("c.json");
        write_checksummed(&p, "{\"k\": 1}", None).unwrap();
        assert_eq!(read_checksummed(&p).unwrap(), "{\"k\": 1}\n");
        // flip one payload byte: typed checksum error, payload withheld
        let mut bytes = fs::read(&p).unwrap();
        bytes[2] = b'x';
        fs::write(&p, &bytes).unwrap();
        match read_checksummed(&p).unwrap_err() {
            DurableError::Checksum { expected, actual, .. } => assert_ne!(expected, actual),
            other => panic!("expected Checksum, got {other}"),
        }
        // strip the trailer entirely: MissingTrailer
        fs::write(&p, "{\"k\": 1}\n").unwrap();
        assert!(matches!(read_checksummed(&p).unwrap_err(), DurableError::MissingTrailer { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_reopen_repairs_a_torn_tail_before_appending() {
        let dir = tmpdir("repair");
        let p = dir.join("j.wal");
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("a", 1.0)).unwrap();
        w.append(&rec("b", 2.0)).unwrap();
        drop(w);
        let full = fs::read(&p).unwrap();
        let last_start = full[..full.len() - 1].iter().rposition(|&b| b == b'\n').unwrap() + 1;

        // tail torn mid-record: reopen truncates it, appends land on a
        // clean boundary, and replay never sees mid-file corruption
        fs::write(&p, &full[..last_start + 7]).unwrap();
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("c", 3.0)).unwrap();
        drop(w);
        let r = Wal::replay(&p).unwrap();
        assert!(!r.torn_tail);
        let ts: Vec<&str> =
            r.records.iter().map(|x| x.get("t").unwrap().as_str().unwrap()).collect();
        assert_eq!(ts, ["a", "c"], "torn record dropped, append continues cleanly");

        // only the final newline cut: the intact record is re-terminated,
        // not dropped — replay already counted it
        fs::write(&p, &full[..full.len() - 1]).unwrap();
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("c", 3.0)).unwrap();
        drop(w);
        let r = Wal::replay(&p).unwrap();
        let ts: Vec<&str> =
            r.records.iter().map(|x| x.get("t").unwrap().as_str().unwrap()).collect();
        assert_eq!(ts, ["a", "b", "c"]);

        // a torn *header* (single damaged line) is re-seeded
        fs::write(&p, b"{\"schema\":\"casyn.w").unwrap();
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("d", 4.0)).unwrap();
        drop(w);
        let r = Wal::replay(&p).unwrap();
        assert_eq!(r.records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_round_trips_and_reopens() {
        let dir = tmpdir("wal");
        let p = dir.join("j.wal");
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("admitted", 0.0)).unwrap();
        w.append(&rec("done", 0.0)).unwrap();
        drop(w);
        // reopen appends past the existing records, no second header
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("admitted", 1.0)).unwrap();
        let r = Wal::replay(&p).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0].get("t").unwrap().as_str(), Some("admitted"));
        assert_eq!(r.records[2].get("n").unwrap().as_f64(), Some(1.0));
        assert!(r.records.iter().all(|x| x.get("sum").is_none()), "sum is stripped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_missing_file_is_empty() {
        let r = Wal::replay(Path::new("/nonexistent/casyn.wal")).unwrap();
        assert!(r.records.is_empty() && !r.torn_tail);
    }

    #[test]
    fn wal_rejects_foreign_schema() {
        let dir = tmpdir("schema");
        let p = dir.join("j.wal");
        let mut w =
            Wal { path: p.clone(), file: File::create(&p).unwrap(), wedged: false, fault: None };
        let header =
            JsonValue::object(vec![("schema".into(), JsonValue::Str("casyn.wal.v9".into()))]);
        w.append(&header).unwrap();
        assert!(
            matches!(Wal::replay(&p).unwrap_err(), DurableError::Schema { found } if found == "casyn.wal.v9")
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The satellite contract: a journal cut at *every* byte boundary of
    /// its last record either replays cleanly to the previous record or
    /// fails with a typed, line-numbered error — never a panic, never a
    /// silently dropped earlier record.
    #[test]
    fn wal_cut_at_every_byte_boundary() {
        let dir = tmpdir("cut");
        let p = dir.join("j.wal");
        let mut w = Wal::open(&p, None).unwrap();
        for i in 0..3 {
            w.append(&rec("job", i as f64)).unwrap();
        }
        drop(w);
        let full = fs::read(&p).unwrap();
        let full_replay = Wal::replay(&p).unwrap();
        assert_eq!(full_replay.records.len(), 3);
        // byte offsets where each record line ends (after its newline)
        let line_ends: Vec<usize> =
            full.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i + 1).collect();
        let last_line_start = line_ends[line_ends.len() - 2];
        for cut in 0..=full.len() {
            let q = dir.join(format!("cut-{cut}.wal"));
            fs::write(&q, &full[..cut]).unwrap();
            match Wal::replay(&q) {
                Ok(r) => {
                    // replay may only ever yield a prefix of the true history
                    assert!(r.records.len() <= 3, "cut {cut} invented records");
                    for (i, x) in r.records.iter().enumerate() {
                        assert_eq!(x.get("n").unwrap().as_f64(), Some(i as f64), "cut {cut}");
                    }
                    if cut >= full.len() - 1 {
                        // the full file — or all of it but the final
                        // newline, which still holds an intact record
                        assert_eq!(r.records.len(), 3);
                        assert!(!r.torn_tail);
                    } else if cut >= last_line_start {
                        // cutting inside the last record must keep all
                        // completed earlier records
                        assert_eq!(r.records.len(), 2, "cut {cut} dropped a completed record");
                        // a cut exactly on the previous newline is a clean
                        // shorter journal, not a torn one
                        assert_eq!(r.torn_tail, cut > last_line_start);
                    }
                }
                Err(DurableError::BadRecord { line, .. }) => {
                    assert!((1..=4).contains(&line), "cut {cut}: line {line} out of range");
                }
                Err(DurableError::Schema { .. }) => {
                    // cut inside the header line with a trailing newline
                    // from... not possible: header damage without newline is
                    // a torn tail. Reaching here means the cut emptied the
                    // header; acceptable only at cut 0 handled by Ok above.
                    panic!("cut {cut}: header schema error on a prefix cut");
                }
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
            }
            fs::remove_file(&q).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        /// Property form over random journals: any prefix cut replays to
        /// a strict prefix of the appended records or fails typed.
        #[test]
        fn wal_prefix_cuts_never_panic(nrecs in 1usize..6, cut_frac in 0.0f64..1.0) {
            let dir = tmpdir("prop");
            let p = dir.join("j.wal");
            let mut w = Wal::open(&p, None).unwrap();
            for i in 0..nrecs {
                w.append(&rec("r", i as f64)).unwrap();
            }
            drop(w);
            let full = fs::read(&p).unwrap();
            let cut = ((full.len() as f64) * cut_frac) as usize;
            let q = dir.join("cut.wal");
            fs::write(&q, &full[..cut]).unwrap();
            if let Ok(r) = Wal::replay(&q) {
                prop_assert!(r.records.len() <= nrecs);
                for (i, x) in r.records.iter().enumerate() {
                    prop_assert_eq!(x.get("n").unwrap().as_f64(), Some(i as f64));
                }
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn wal_mid_file_damage_is_a_line_numbered_error() {
        let dir = tmpdir("mid");
        let p = dir.join("j.wal");
        let mut w = Wal::open(&p, None).unwrap();
        w.append(&rec("a", 1.0)).unwrap();
        w.append(&rec("b", 2.0)).unwrap();
        drop(w);
        let text = fs::read_to_string(&p).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // damage record "a" (line 2) but keep it newline-terminated
        lines[1] = lines[1].replace("1", "7");
        fs::write(&p, lines.join("\n") + "\n").unwrap();
        match Wal::replay(&p).unwrap_err() {
            DurableError::BadRecord { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("checksum"), "got: {reason}");
            }
            other => panic!("expected BadRecord, got {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_wedges_and_tail_is_recoverable() {
        let dir = tmpdir("torn");
        let p = dir.join("j.wal");
        let plan = FaultPlan::parse("wal:torn_write:2,seed=7").unwrap();
        let mut w = Wal::open(&p, Some(plan)).unwrap();
        w.append(&rec("a", 1.0)).unwrap();
        let e = w.append(&rec("b", 2.0)).unwrap_err();
        assert!(e.to_string().contains("torn_write"), "got: {e}");
        assert!(w.wedged());
        assert!(w.append(&rec("c", 3.0)).is_err(), "wedged journal refuses appends");
        let r = Wal::replay(&p).unwrap();
        assert!(r.torn_tail, "the half-written record is a torn tail");
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].get("n").unwrap().as_f64(), Some(1.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_disk_full_fails_cleanly_without_wedging() {
        let dir = tmpdir("full");
        let p = dir.join("j.wal");
        let plan = FaultPlan::parse("wal:disk_full:1").unwrap();
        let mut w = Wal::open(&p, Some(plan)).unwrap();
        let e = w.append(&rec("a", 1.0)).unwrap_err();
        assert!(e.to_string().contains("disk_full"), "got: {e}");
        assert!(!w.wedged(), "nothing was written, the tail is intact");
        w.append(&rec("a", 1.0)).unwrap();
        let r = Wal::replay(&p).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_faults() {
        let dir = tmpdir("awf");
        let p = dir.join("x.json");
        write_atomic(&p, b"good").unwrap();
        let plan = FaultPlan::parse("cache:torn_write:1,cache:disk_full:2").unwrap();
        let e = write_atomic_faulted(&p, b"torn!", Some((&plan, "cache"))).unwrap_err();
        assert!(e.to_string().contains("torn_write"));
        assert_eq!(fs::read_to_string(&p).unwrap(), "good", "target untouched by a torn write");
        let e = write_atomic_faulted(&p, b"nope", Some((&plan, "cache"))).unwrap_err();
        assert!(e.to_string().contains("disk_full"));
        assert_eq!(fs::read_to_string(&p).unwrap(), "good");
        fs::remove_dir_all(&dir).unwrap();
    }
}
