//! The typed error spine of the flow: every failure anywhere in the
//! pipeline surfaces as a [`FlowError`] tagged with the [`Stage`] that
//! caused it and a machine-readable [`FlowErrorKind`], so batch reports,
//! crash bundles and telemetry can attribute failures without parsing
//! prose.

use casyn_exec::JobError;
use casyn_obs::json::JsonValue;
use casyn_route::RouteError;
use std::fmt;

/// Where in the pipeline an error originated. The first nine variants are
/// the paper's methodology stages in order; `Seq`, `Sweep` and `Batch`
/// tag the sequential wrapper and the drivers above the per-K flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Technology-independent optimization (the "SIS" phase).
    Optimize,
    /// NAND2/INV subject-graph decomposition.
    Decompose,
    /// Floorplan derivation.
    Floorplan,
    /// Initial placement of the unbound netlist.
    Place,
    /// Tree partitioning of the subject graph.
    Partition,
    /// Technology mapping (tree covering).
    Map,
    /// Fanout buffering, port assignment and row legalization.
    Legalize,
    /// Global routing.
    Route,
    /// Static timing analysis.
    Sta,
    /// Sequential wrapping (latch exposure, DFF insertion).
    Seq,
    /// The K-sweep / methodology driver above the per-K flows.
    Sweep,
    /// The batch runner above the jobs.
    Batch,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::Optimize,
        Stage::Decompose,
        Stage::Floorplan,
        Stage::Place,
        Stage::Partition,
        Stage::Map,
        Stage::Legalize,
        Stage::Route,
        Stage::Sta,
        Stage::Seq,
        Stage::Sweep,
        Stage::Batch,
    ];

    /// The stage's lowercase name — also the stage token fault plans and
    /// telemetry use.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Optimize => "optimize",
            Stage::Decompose => "decompose",
            Stage::Floorplan => "floorplan",
            Stage::Place => "place",
            Stage::Partition => "partition",
            Stage::Map => "map",
            Stage::Legalize => "legalize",
            Stage::Route => "route",
            Stage::Sta => "sta",
            Stage::Seq => "seq",
            Stage::Sweep => "sweep",
            Stage::Batch => "batch",
        }
    }

    /// Parses a stage name as produced by [`Stage::name`].
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The machine-readable failure class of a [`FlowError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowErrorKind {
    /// The stage's input was malformed (bad netlist, empty schedule, ...).
    BadInput,
    /// A stage-boundary invariant check failed — the stage produced
    /// corrupt state (see [`crate::check`]).
    Invariant,
    /// The library has no sequential master for a sequential design.
    MissingSeqMaster,
    /// Global routing could not complete (see
    /// [`casyn_route::RouteError`]).
    RouteFailed,
    /// The stage (or job) panicked; the payload message is preserved.
    Panicked,
    /// The job was cancelled before it ran.
    Cancelled,
    /// A deadline elapsed (job-level queuing deadline or an injected
    /// stage deadline).
    Deadline,
}

impl FlowErrorKind {
    /// The kind's snake_case name, as serialized into reports.
    pub fn name(self) -> &'static str {
        match self {
            FlowErrorKind::BadInput => "bad_input",
            FlowErrorKind::Invariant => "invariant",
            FlowErrorKind::MissingSeqMaster => "missing_seq_master",
            FlowErrorKind::RouteFailed => "route_failed",
            FlowErrorKind::Panicked => "panicked",
            FlowErrorKind::Cancelled => "cancelled",
            FlowErrorKind::Deadline => "deadline",
        }
    }
}

impl fmt::Display for FlowErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured, stage-tagged flow failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// The failure class.
    pub kind: FlowErrorKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl FlowError {
    /// Builds an error from its parts. When tracing is on, every typed
    /// failure (invariant-check trips, injected faults surfacing as
    /// errors, route failures) also drops a `flow.error` instant on the
    /// current thread's track, so failures are visible in the timeline
    /// next to the span they interrupted.
    pub fn new(stage: Stage, kind: FlowErrorKind, detail: impl Into<String>) -> FlowError {
        let e = FlowError { stage, kind, detail: detail.into() };
        casyn_obs::trace::instant(
            "flow.error",
            &[
                ("stage", casyn_obs::trace::AttrValue::Str(e.stage.name().into())),
                ("kind", casyn_obs::trace::AttrValue::Str(e.kind.name().into())),
            ],
        );
        e
    }

    /// An invariant-check failure at `stage`.
    pub fn invariant(stage: Stage, detail: impl Into<String>) -> FlowError {
        FlowError::new(stage, FlowErrorKind::Invariant, detail)
    }

    /// A bad-input failure at `stage`.
    pub fn bad_input(stage: Stage, detail: impl Into<String>) -> FlowError {
        FlowError::new(stage, FlowErrorKind::BadInput, detail)
    }

    /// Serializes as `{"stage": ..., "kind": ..., "detail": ...}` — the
    /// error object embedded in `casyn.batch.v1` reports and
    /// `casyn.crash.v1` bundles.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("stage".into(), JsonValue::Str(self.stage.name().into())),
            ("kind".into(), JsonValue::Str(self.kind.name().into())),
            ("detail".into(), JsonValue::Str(self.detail.clone())),
        ])
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.stage, self.kind, self.detail)
    }
}

impl std::error::Error for FlowError {}

impl From<JobError> for FlowError {
    /// Pool-level job failures are batch-stage errors: the flow never ran
    /// (or never finished), so no pipeline stage can be blamed. Injected
    /// stage panics still carry their stage in the panic message.
    fn from(e: JobError) -> FlowError {
        match e {
            JobError::Panicked(msg) => FlowError::new(Stage::Batch, FlowErrorKind::Panicked, msg),
            JobError::Cancelled => FlowError::new(
                Stage::Batch,
                FlowErrorKind::Cancelled,
                "job cancelled before it started",
            ),
            JobError::Deadline => FlowError::new(
                Stage::Batch,
                FlowErrorKind::Deadline,
                "job deadline elapsed before it started",
            ),
        }
    }
}

impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> FlowError {
        FlowError::new(Stage::Route, FlowErrorKind::RouteFailed, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        assert_eq!(Stage::parse("detailed_route"), None);
    }

    #[test]
    fn display_is_stage_tagged() {
        let e = FlowError::invariant(Stage::Place, "vertex 3 at NaN");
        assert_eq!(e.to_string(), "[place/invariant] vertex 3 at NaN");
    }

    #[test]
    fn json_shape() {
        let e = FlowError::bad_input(Stage::Sweep, "empty schedule");
        let s = e.to_json().to_string_pretty();
        assert!(s.contains("\"stage\": \"sweep\""));
        assert!(s.contains("\"kind\": \"bad_input\""));
        assert!(s.contains("\"detail\": \"empty schedule\""));
    }

    #[test]
    fn job_errors_map_to_batch_stage() {
        let e = FlowError::from(JobError::Panicked("boom".into()));
        assert_eq!((e.stage, e.kind), (Stage::Batch, FlowErrorKind::Panicked));
        assert_eq!(e.detail, "boom");
        assert_eq!(FlowError::from(JobError::Deadline).kind, FlowErrorKind::Deadline);
        assert_eq!(FlowError::from(JobError::Cancelled).kind, FlowErrorKind::Cancelled);
    }

    #[test]
    fn route_errors_map_to_route_stage() {
        let e = FlowError::from(RouteError::BadPin { net: 2, pin: 0, x: f64::NAN, y: 1.0 });
        assert_eq!((e.stage, e.kind), (Stage::Route, FlowErrorKind::RouteFailed));
        assert!(e.detail.contains("net 2"));
    }
}
