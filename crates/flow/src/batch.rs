//! Concurrent batch runner: many `{design, K-list, options}` jobs fanned
//! out over one [`Pool`], with per-job isolation and recovery.
//!
//! Each batch job prepares its design once (the front end of the paper's
//! methodology) and then sweeps its K list; parallelism is across jobs.
//! Jobs are independent, so the report rows are bit-identical regardless
//! of worker count. A job that fails — a typed [`FlowError`], a panic, a
//! missed deadline — fails *alone*: its slot in the [`BatchReport`]
//! carries the error while every sibling runs to completion. On top of
//! that isolation sit two recovery mechanisms, both controlled by
//! [`BatchOptions`]:
//!
//! * **retry** — a failed job is re-run up to `retries` more times in
//!   place (transient faults, e.g. an injected `nth`-occurrence fault,
//!   clear on a later attempt because the fault plan's occurrence
//!   counters are shared across attempts);
//! * **K escalation** — a job whose entire sweep ends unroutable gets
//!   one extra rung at `2 × max(ks)` appended and is reported with
//!   `degraded: true` instead of being declared a failure.

use crate::error::{FlowError, FlowErrorKind, Stage};
use crate::flows::{congestion_flow_prepared, prepare, FlowOptions};
use crate::sweep::{k_sweep_prepared, KSweepEntry};
use casyn_exec::{panic_message, CancelToken, JobOptions, Pool};
use casyn_netlist::network::Network;
use casyn_obs as obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One unit of batch work: a design, the K values to sweep, and the flow
/// options to sweep them under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (the CLI uses the design file stem).
    pub name: String,
    /// The design to synthesize.
    pub network: Network,
    /// K values to sweep (in order).
    pub ks: Vec<f64>,
    /// Flow options for every K of this job.
    pub opts: FlowOptions,
    /// Optional per-job deadline, measured from batch submission; a job
    /// that has not *started* in time fails with a deadline error.
    pub deadline: Option<Duration>,
}

/// Recovery policy for a batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// How many times to re-run a failed job before recording the
    /// failure (0 = fail on first error).
    pub retries: u32,
    /// When a job's whole sweep is unroutable, append one escalated rung
    /// at `2 × max(ks)` (or 1.0 if all ks are 0) and mark the job
    /// `degraded` instead of leaving only unroutable rows.
    pub escalate_k: bool,
    /// Cancels the whole batch: jobs that have not started when the
    /// token fires are skipped with a cancellation error (running jobs
    /// always finish). `casyn serve` uses this for fast drain on
    /// shutdown.
    pub cancel: Option<CancelToken>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { retries: 0, escalate_k: true, cancel: None }
    }
}

/// A completed job's payload.
#[derive(Debug, Clone)]
pub struct JobSuccess {
    /// Sweep rows, in K order (plus the escalated rung, when degraded).
    pub rows: Vec<KSweepEntry>,
    /// True when the job only completed through K escalation.
    pub degraded: bool,
}

/// The outcome of one batch job.
#[derive(Debug, Clone)]
pub struct BatchJobReport {
    /// The job's name.
    pub name: String,
    /// Sweep rows on success, or the typed failure of the last attempt.
    pub outcome: Result<JobSuccess, FlowError>,
    /// Wall-clock the job spent running (all attempts), in milliseconds
    /// (0 when the job never ran).
    pub wall_ms: f64,
    /// Attempts made (1 = no retry needed; 0 = never started).
    pub attempts: u32,
}

/// The outcome of a whole batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job reports, in manifest order.
    pub jobs: Vec<BatchJobReport>,
    /// Wall-clock of the whole batch, in milliseconds.
    pub wall_ms: f64,
    /// Worker count of the pool that ran the batch.
    pub workers: usize,
}

impl BatchReport {
    /// Number of jobs that completed (degraded ones included).
    pub fn num_ok(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// Number of jobs that failed every attempt.
    pub fn num_failed(&self) -> usize {
        self.jobs.len() - self.num_ok()
    }

    /// Number of jobs that completed only through K escalation.
    pub fn num_degraded(&self) -> usize {
        self.jobs.iter().filter(|j| matches!(&j.outcome, Ok(s) if s.degraded)).count()
    }
}

/// The default per-job runner: prepare the design once, sweep its K list
/// serially within the job (the batch parallelizes across jobs), and
/// escalate K per `bopts` when the whole sweep is unroutable.
pub fn run_batch_job(job: &BatchJob, bopts: &BatchOptions) -> Result<JobSuccess, FlowError> {
    let prep = prepare(&job.network, &job.opts)?;
    let mut rows = k_sweep_prepared(&prep, &job.ks, &job.opts)?;
    let mut degraded = false;
    let all_unroutable = !rows.is_empty() && rows.iter().all(|r| r.result.route.violations > 0);
    if bopts.escalate_k && all_unroutable {
        let k_max = job.ks.iter().cloned().fold(0.0_f64, f64::max);
        let k_esc = if k_max > 0.0 { 2.0 * k_max } else { 1.0 };
        obs::counter_add("retry.k_escalations", 1);
        obs::log::warn(&format!(
            "job {}: sweep fully unroutable, escalating to K = {k_esc}",
            job.name
        ));
        let result = congestion_flow_prepared(&prep, k_esc, &job.opts)?;
        rows.push(KSweepEntry { k: k_esc, result });
        degraded = true;
    }
    Ok(JobSuccess { rows, degraded })
}

/// Runs every job on the pool with [`run_batch_job`] under the default
/// recovery policy.
pub fn run_batch(jobs: &[BatchJob], pool: &Pool) -> BatchReport {
    run_batch_opts(jobs, pool, &BatchOptions::default())
}

/// [`run_batch`] with an explicit recovery policy.
pub fn run_batch_opts(jobs: &[BatchJob], pool: &Pool, bopts: &BatchOptions) -> BatchReport {
    run_batch_with(jobs, pool, bopts, |j| run_batch_job(j, bopts))
}

/// [`run_batch_opts`] with a custom per-job runner — the seam
/// fault-injection tests use to exercise the error paths. Retry wraps the
/// runner: a panic or error triggers up to `bopts.retries` re-runs.
pub fn run_batch_with<F>(
    jobs: &[BatchJob],
    pool: &Pool,
    bopts: &BatchOptions,
    runner: F,
) -> BatchReport
where
    F: Fn(&BatchJob) -> Result<JobSuccess, FlowError> + Sync,
{
    run_batch_observed(jobs, pool, bopts, runner, |_, _| {})
}

/// [`run_batch_with`] plus a completion callback: `on_done(index,
/// report)` runs as soon as job `index`'s outcome is known — on the
/// worker thread for jobs that ran, and in a final flush on the calling
/// thread for jobs that never started (pool-level cancellation or
/// deadline). The callback therefore fires exactly once per job, so a
/// checkpoint written from it is complete even when the batch is
/// cancelled mid-run and the remaining jobs are drained unstarted.
pub fn run_batch_observed<F, G>(
    jobs: &[BatchJob],
    pool: &Pool,
    bopts: &BatchOptions,
    runner: F,
    on_done: G,
) -> BatchReport
where
    F: Fn(&BatchJob) -> Result<JobSuccess, FlowError> + Sync,
    G: Fn(usize, &BatchJobReport) + Sync,
{
    let t0 = Instant::now();
    let indices: Vec<usize> = (0..jobs.len()).collect();
    let outcomes = pool.try_par_map_with(
        &indices,
        |i| JobOptions { deadline: jobs[i].deadline, cancel: bopts.cancel.clone() },
        |&i| {
            let job = &jobs[i];
            let t = Instant::now();
            let mut job_span = obs::trace::span("batch.job");
            job_span.attr_str("job", &job.name);
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                if attempts > 1 {
                    obs::counter_add("retry.attempts", 1);
                    obs::trace::instant(
                        "batch.retry",
                        &[
                            ("job", obs::trace::AttrValue::Str(job.name.clone())),
                            ("attempt", obs::trace::AttrValue::Num(attempts as f64)),
                        ],
                    );
                    obs::log::warn(&format!("job {}: retry attempt {attempts}", job.name));
                }
                let result = catch_unwind(AssertUnwindSafe(|| runner(job)));
                let err = match result {
                    Ok(Ok(success)) => break Ok(success),
                    Ok(Err(e)) => e,
                    Err(payload) => FlowError::new(
                        Stage::Batch,
                        FlowErrorKind::Panicked,
                        panic_message(payload.as_ref()),
                    ),
                };
                if attempts > bopts.retries {
                    break Err(err);
                }
            };
            job_span.attr_num("attempts", attempts as f64);
            drop(job_span);
            let report = BatchJobReport {
                name: job.name.clone(),
                outcome,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
                attempts,
            };
            on_done(i, &report);
            report
        },
    );
    let jobs = jobs
        .iter()
        .zip(outcomes)
        .enumerate()
        .map(|(i, (job, outcome))| match outcome {
            Ok(report) => report,
            Err(e) => {
                // final flush: jobs drained unstarted (cancelled or past
                // their deadline) still reach the callback, so an
                // incremental checkpoint covers every slot of the batch
                let report = BatchJobReport {
                    name: job.name.clone(),
                    outcome: Err(FlowError::from(e)),
                    wall_ms: 0.0,
                    attempts: 0,
                };
                on_done(i, &report);
                report
            }
        })
        .collect();
    BatchReport { jobs, wall_ms: t0.elapsed().as_secs_f64() * 1e3, workers: pool.workers() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_exec::FaultPlan;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn job(seed: u64, name: &str) -> BatchJob {
        let network = random_pla(&PlaGenConfig {
            inputs: 9,
            outputs: 5,
            terms: 28,
            min_literals: 3,
            max_literals: 5,
            mean_outputs_per_term: 1.3,
            seed,
        })
        .to_network();
        BatchJob {
            name: name.into(),
            network,
            ks: vec![0.0, 0.1],
            opts: FlowOptions::default(),
            deadline: None,
        }
    }

    #[test]
    fn batch_rows_match_direct_sweeps() {
        let jobs = [job(3, "a"), job(4, "b")];
        let report = run_batch(&jobs, &Pool::new(2));
        assert_eq!(report.num_ok(), 2);
        assert_eq!(report.workers, 2);
        let bopts = BatchOptions::default();
        for (j, r) in jobs.iter().zip(&report.jobs) {
            let direct = run_batch_job(j, &bopts).unwrap();
            let got = r.outcome.as_ref().unwrap();
            assert!(!got.degraded);
            assert_eq!(got.rows.len(), direct.rows.len());
            for (a, b) in got.rows.iter().zip(&direct.rows) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.result.cell_area, b.result.cell_area);
                assert_eq!(a.result.route.violations, b.result.route.violations);
            }
            assert!(r.wall_ms > 0.0);
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn panicking_job_fails_alone() {
        let jobs = [job(3, "ok-1"), job(4, "poisoned"), job(5, "ok-2")];
        let bopts = BatchOptions::default();
        let report = run_batch_with(&jobs, &Pool::new(2), &bopts, |j| {
            if j.name == "poisoned" {
                panic!("injected batch fault");
            }
            run_batch_job(j, &bopts)
        });
        assert_eq!(report.num_ok(), 2);
        assert_eq!(report.num_failed(), 1);
        let e = report.jobs[1].outcome.as_ref().unwrap_err();
        assert_eq!(e.kind, FlowErrorKind::Panicked);
        assert_eq!(e.detail, "injected batch fault");
        assert!(report.jobs[0].outcome.is_ok() && report.jobs[2].outcome.is_ok());
    }

    #[test]
    fn deadline_zero_fails_only_that_job() {
        let mut jobs = vec![job(3, "fast"), job(4, "doomed")];
        jobs[1].deadline = Some(Duration::ZERO);
        let report = run_batch(&jobs, &Pool::serial());
        assert!(report.jobs[0].outcome.is_ok());
        let e = report.jobs[1].outcome.as_ref().unwrap_err();
        assert_eq!(e.kind, FlowErrorKind::Deadline);
        assert_eq!(report.jobs[1].attempts, 0);
    }

    #[test]
    fn batch_is_deterministic_across_worker_counts() {
        let jobs = [job(7, "x"), job(8, "y"), job(9, "z")];
        let serial = run_batch(&jobs, &Pool::serial());
        let parallel = run_batch(&jobs, &Pool::new(4));
        for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
            let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            for (x, y) in ra.rows.iter().zip(&rb.rows) {
                assert_eq!(x.k, y.k);
                assert_eq!(x.result.cell_area, y.result.cell_area);
                assert_eq!(x.result.num_cells, y.result.num_cells);
                assert_eq!(x.result.route.total_wirelength, y.result.route.total_wirelength);
            }
        }
    }

    #[test]
    fn retry_recovers_from_transient_fault() {
        // nth=1 panic at map: attempt 1 trips it, attempt 2 runs clean
        // because the fault plan's occurrence counter is shared across
        // attempts
        let mut j = job(3, "flaky");
        j.opts.fault = Some(FaultPlan::parse("map:panic:1").unwrap());
        let bopts = BatchOptions { retries: 1, ..Default::default() };
        let report = run_batch_opts(&[j], &Pool::serial(), &bopts);
        assert_eq!(report.num_ok(), 1);
        assert_eq!(report.jobs[0].attempts, 2);
    }

    #[test]
    fn exhausted_retries_keep_the_last_error() {
        let mut j = job(3, "doomed");
        // trip on every early occurrence so both attempts fail
        j.opts.fault = Some(FaultPlan::parse("map:panic:1,map:panic:2").unwrap());
        let bopts = BatchOptions { retries: 1, ..Default::default() };
        let report = run_batch_opts(&[j], &Pool::serial(), &bopts);
        assert_eq!(report.num_failed(), 1);
        assert_eq!(report.jobs[0].attempts, 2);
        let e = report.jobs[0].outcome.as_ref().unwrap_err();
        assert_eq!(e.kind, FlowErrorKind::Panicked);
        assert!(e.detail.contains("injected fault"));
    }

    #[test]
    fn fully_unroutable_sweep_escalates_and_degrades() {
        let mut j = job(3, "tight");
        // starve the router so every K in the sweep overflows
        j.opts.route.capacity_scale = 0.02;
        let direct = run_batch_job(&j, &BatchOptions::default()).unwrap();
        assert!(direct.degraded, "whole sweep unroutable: must escalate");
        assert_eq!(direct.rows.len(), j.ks.len() + 1);
        assert_eq!(*direct.rows.last().map(|r| &r.k).unwrap(), 0.2);
        let report = run_batch(&[j.clone()], &Pool::serial());
        assert_eq!(report.num_degraded(), 1);
        // escalation off: the job still succeeds, just without the rung
        let plain =
            run_batch_job(&j, &BatchOptions { escalate_k: false, ..Default::default() }).unwrap();
        assert!(!plain.degraded);
        assert_eq!(plain.rows.len(), j.ks.len());
    }

    #[test]
    fn cancelled_batch_flushes_every_slot_and_resumes_cleanly() {
        use std::sync::Mutex;
        // the first job cancels the batch while it is running: with one
        // worker, jobs b..d are then drained unstarted. The checkpoint
        // callback must still see all four slots (the graceful-drain
        // contract), and re-running just the cancelled slots must merge
        // into the same rows a clean run produces.
        let jobs = [job(3, "a"), job(4, "b"), job(5, "c"), job(6, "d")];
        let token = CancelToken::new();
        let bopts = BatchOptions { cancel: Some(token.clone()), ..Default::default() };
        let checkpoint: Mutex<Vec<Option<bool>>> = Mutex::new(vec![None; jobs.len()]);
        let report = run_batch_observed(
            &jobs,
            &Pool::serial(),
            &bopts,
            |j| {
                if j.name == "a" {
                    token.cancel();
                }
                run_batch_job(j, &bopts)
            },
            |i, r| checkpoint.lock().unwrap()[i] = Some(r.outcome.is_ok()),
        );
        assert!(report.jobs[0].outcome.is_ok(), "the running job finishes");
        for r in &report.jobs[1..] {
            let e = r.outcome.as_ref().unwrap_err();
            assert_eq!(e.kind, FlowErrorKind::Cancelled, "{e}");
            assert_eq!(r.attempts, 0);
        }
        let flushed = checkpoint.into_inner().unwrap();
        assert_eq!(flushed, vec![Some(true), Some(false), Some(false), Some(false)]);

        // resume: run only the slots the checkpoint recorded as failed
        let todo: Vec<BatchJob> = report
            .jobs
            .iter()
            .zip(&jobs)
            .filter(|(r, _)| r.outcome.is_err())
            .map(|(_, j)| j.clone())
            .collect();
        let resumed = run_batch(&todo, &Pool::serial());
        assert_eq!(resumed.num_ok(), 3);
        let clean = run_batch(&jobs, &Pool::serial());
        for (r, c) in resumed.jobs.iter().zip(&clean.jobs[1..]) {
            let (rr, cc) = (r.outcome.as_ref().unwrap(), c.outcome.as_ref().unwrap());
            for (x, y) in rr.rows.iter().zip(&cc.rows) {
                assert_eq!(x.k, y.k);
                assert_eq!(x.result.cell_area, y.result.cell_area);
                assert_eq!(x.result.route.total_wirelength, y.result.route.total_wirelength);
            }
        }
    }

    #[test]
    fn on_done_fires_once_per_started_job() {
        use std::sync::Mutex;
        let jobs = [job(3, "a"), job(4, "b")];
        let bopts = BatchOptions::default();
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let report = run_batch_observed(
            &jobs,
            &Pool::new(2),
            &bopts,
            |j| run_batch_job(j, &bopts),
            |i, r| {
                assert!(r.outcome.is_ok());
                seen.lock().unwrap().push(i);
            },
        );
        assert_eq!(report.num_ok(), 2);
        let mut order = seen.into_inner().unwrap();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1]);
    }
}
